//! Workspace facade for the Castor reproduction of *Schema Independent
//! Relational Learning* (Picado et al., SIGMOD 2017).
//!
//! Each subsystem lives in its own crate; this crate re-exports them under
//! one roof so the root `tests/` and `examples/` can exercise the full
//! pipeline, and so downstream users can depend on a single crate.
//!
//! * [`relational`] — in-memory relational substrate (schemas, instances,
//!   per-attribute hash indexes, constraints).
//! * [`logic`] — Horn-clause machinery: terms, atoms, clauses, evaluation,
//!   θ-subsumption, lgg, minimization.
//! * [`engine`] — the compiled clause-evaluation and coverage subsystem:
//!   per-relation statistics, compiled join plans, a memoized coverage
//!   cache, and a persistent worker pool.
//! * [`transform`] — schema (de)composition transformations.
//! * [`learners`] — FOIL, Progol, Golem, ProGolem, and query-based LogAn-H.
//! * [`core`] — the Castor learner itself.
//! * [`datasets`] — synthetic UW-CSE / HIV / IMDb families.
//! * [`eval`] — cross-validated experiment harness and metrics.
//! * [`obs`] — dependency-free observability: lock-free metrics with
//!   Prometheus-style exposition, span tracing with Chrome-trace export.
//! * [`service`] — the multi-session serving facade: long-lived versioned
//!   engines over mutating databases behind a `Server → Session → Job` API.
//! * [`rpc`] — the network front end over `service`: a dependency-free
//!   std-TCP wire protocol (`RpcServer`/`RpcClient`) with admission
//!   control, typed error frames, and a negotiated v2 streaming mode.
//! * [`cluster`] — the sharded multi-server tier: a client-side router
//!   placing databases on members by consistent hashing, with live
//!   rebalancing on membership changes.
//! * `bench` ([`castor_bench`]) — table/figure reproduction harnesses.

pub use castor_bench as bench;
pub use castor_cluster as cluster;
pub use castor_core as core;
pub use castor_datasets as datasets;
pub use castor_engine as engine;
pub use castor_eval as eval;
pub use castor_learners as learners;
pub use castor_logic as logic;
pub use castor_obs as obs;
pub use castor_relational as relational;
pub use castor_rpc as rpc;
pub use castor_service as service;
pub use castor_transform as transform;
