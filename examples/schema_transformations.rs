//! Working with schema (de)compositions directly: build a 4NF schema,
//! decompose it, transform instances both ways, verify information
//! equivalence, and map a Horn definition through the decomposition.
//!
//! Run with `cargo run --example schema_transformations`.

use castor_logic::{definition_results, Atom, Clause, Definition, Term};
use castor_relational::{DatabaseInstance, RelationSymbol, Schema, Tuple};
use castor_transform::{
    map_definition_through_decomposition, verify_information_equivalence, TransformStep,
    Transformation,
};

fn main() {
    // The 4NF UW-CSE fragment of Table 1.
    let mut schema = Schema::new("uwcse-4nf");
    schema.add_relation(RelationSymbol::new("student", &["stud", "phase", "years"]));
    schema.add_relation(RelationSymbol::new("publication", &["title", "person"]));

    let mut db = DatabaseInstance::empty(&schema);
    for (s, phase, years) in [
        ("alice", "pre_quals", "2"),
        ("bob", "post_generals", "5"),
        ("carol", "post_quals", "4"),
    ] {
        db.insert("student", Tuple::from_strs(&[s, phase, years]))
            .unwrap();
    }
    db.insert("publication", Tuple::from_strs(&["p1", "alice"]))
        .unwrap();

    // Decompose student(stud, phase, years) into the Original-schema shape.
    let tau = Transformation::new(
        "4nf-to-original",
        vec![TransformStep::decompose(
            &schema,
            "student",
            &[
                ("student", &["stud"]),
                ("inPhase", &["stud", "phase"]),
                ("yearsInProgram", &["stud", "years"]),
            ],
        )],
    );

    println!("{tau}\n");
    let transformed_schema = tau.apply_schema(&schema);
    println!("Transformed schema:\n{transformed_schema}\n");

    // Instances map forwards and backwards without losing information.
    let report = verify_information_equivalence(&tau, &db).unwrap();
    println!(
        "Information equivalence: round-trip identity = {}, transformed instance valid = {}",
        report.round_trip_identity, report.transformed_valid
    );

    // A Horn definition over the 4NF schema maps to an equivalent one over
    // the decomposed schema (δτ of Proposition 3.7).
    let hard_working = Definition::new(
        "hardWorking",
        vec![Clause::new(
            Atom::vars("hardWorking", &["x"]),
            vec![Atom::new(
                "student",
                vec![
                    Term::var("x"),
                    Term::constant("post_generals"),
                    Term::constant("5"),
                ],
            )],
        )],
    );
    let mapped = map_definition_through_decomposition(&hard_working, &tau);
    println!("\nDefinition over 4NF:\n{hard_working}");
    println!("\nMapped definition over the decomposed schema:\n{mapped}");

    let transformed_db = tau.apply_instance(&db).unwrap();
    assert_eq!(
        definition_results(&hard_working, &db),
        definition_results(&mapped, &transformed_db)
    );
    println!("\nBoth definitions return the same answers over corresponding instances.");
}
