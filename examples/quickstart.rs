//! Quickstart: learn a Horn definition with Castor on a tiny database.
//!
//! Run with `cargo run --example quickstart`.

use castor_core::{Castor, CastorConfig};
use castor_learners::LearningTask;
use castor_relational::{DatabaseInstance, RelationSymbol, Schema, Tuple};

fn main() {
    // 1. Declare a schema and load a small database: who co-authored what.
    let mut schema = Schema::new("quickstart");
    schema.add_relation(RelationSymbol::new("publication", &["title", "person"]));
    schema.add_relation(RelationSymbol::new("professor", &["prof"]));
    let mut db = DatabaseInstance::empty(&schema);
    for (title, person) in [
        ("p1", "ann"),
        ("p1", "bob"),
        ("p2", "carol"),
        ("p2", "dan"),
        ("p3", "eve"),
        ("p4", "ann"),
    ] {
        db.insert("publication", Tuple::from_strs(&[title, person]))
            .unwrap();
    }
    for prof in ["bob", "dan"] {
        db.insert("professor", Tuple::from_strs(&[prof])).unwrap();
    }

    // 2. Describe the learning task: advisedBy(student, professor).
    let task = LearningTask::new(
        "advisedBy",
        2,
        vec![
            Tuple::from_strs(&["ann", "bob"]),
            Tuple::from_strs(&["carol", "dan"]),
        ],
        vec![
            Tuple::from_strs(&["ann", "dan"]),
            Tuple::from_strs(&["eve", "bob"]),
            Tuple::from_strs(&["carol", "bob"]),
        ],
    );

    // 3. Learn with Castor.
    let mut castor = Castor::new(CastorConfig::default());
    let outcome = castor.learn(&db, &task);

    println!("Learned definition for advisedBy:\n{}", outcome.definition);
    println!(
        "\n({} coverage tests, {:.1} ms)",
        outcome.coverage_tests,
        outcome.elapsed.as_secs_f64() * 1000.0
    );
}
