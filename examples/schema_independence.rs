//! Schema independence in action: the same UW-CSE data under the Original
//! and 4NF schemas, learned with a schema-dependent baseline (ProGolem) and
//! with Castor.
//!
//! This reproduces the qualitative story of Examples 1.1 / 6.5 / 7.6 of the
//! paper: baselines learn different definitions over the two schemas, while
//! Castor — by following the inclusion dependencies — learns equivalent
//! ones.
//!
//! Run with `cargo run --example schema_independence`.

use castor_core::{Castor, CastorConfig};
use castor_datasets::uwcse::{generate, UwCseConfig};
use castor_eval::evaluate_definition;
use castor_learners::{LearnerParams, ProGolem};

fn main() {
    let family = generate(&UwCseConfig {
        students: 40,
        professors: 10,
        courses: 12,
        ..Default::default()
    });

    println!("UW-CSE schema variants: {:?}\n", family.variant_names());

    for variant in &family.variants {
        let params = LearnerParams {
            constant_positions: variant.constant_positions.clone(),
            ..LearnerParams::uwcse()
        };

        // Baseline: ProGolem (schema dependent).
        let progolem_def = ProGolem::new().learn(&variant.db, &variant.task, &params);
        let progolem_eval = evaluate_definition(
            &progolem_def,
            &variant.db,
            &variant.task.positive,
            &variant.task.negative,
        );

        // Castor (schema independent).
        let mut config = CastorConfig::uwcse();
        config.params = params.clone();
        let castor_out = Castor::new(config).learn(&variant.db, &variant.task);
        let castor_eval = evaluate_definition(
            &castor_out.definition,
            &variant.db,
            &variant.task.positive,
            &variant.task.negative,
        );

        println!("=== Schema variant: {} ===", variant.name);
        println!(
            "ProGolem  P={:.2} R={:.2}   first clause: {}",
            progolem_eval.precision(),
            progolem_eval.recall(),
            progolem_def
                .clauses
                .first()
                .map(|c| c.to_string())
                .unwrap_or_else(|| "(none)".into())
        );
        println!(
            "Castor    P={:.2} R={:.2}   first clause: {}",
            castor_eval.precision(),
            castor_eval.recall(),
            castor_out
                .definition
                .clauses
                .first()
                .map(|c| c.to_string())
                .unwrap_or_else(|| "(none)".into())
        );
        println!();
    }
    println!(
        "Castor's precision/recall are identical across variants; the baseline's vary \
         with the schema."
    );
}
