//! A three-server Castor cluster on loopback: a client-side router
//! places databases on members by consistent hashing, proxies jobs to
//! the owning member, streams learn progress over protocol v2, and
//! rebalances live when the membership changes.
//!
//! Run with: `cargo run --example cluster`

use castor::cluster::{ClusterConfig, Router};
use castor::logic::{Atom, Clause};
use castor::relational::{DatabaseInstance, MutationBatch, RelationSymbol, Schema, Tuple};
use castor::rpc::{RpcConfig, RpcServer};
use castor::service::{LearnAlgorithm, Server, ServerConfig};
use castor_learners::{LearnerParams, LearningTask};
use std::sync::Arc;

fn demo_schema() -> Schema {
    let mut schema = Schema::new("demo");
    schema.add_relation(RelationSymbol::new("publication", &["title", "person"]));
    schema
}

fn demo_db() -> DatabaseInstance {
    let mut db = DatabaseInstance::empty(&demo_schema());
    for (t, p) in [
        ("p1", "ann"),
        ("p1", "bob"),
        ("p2", "carol"),
        ("p2", "dan"),
        ("p3", "eve"),
    ] {
        db.insert("publication", Tuple::from_strs(&[t, p]))
            .expect("demo tuples match the schema");
    }
    db
}

fn collaborated() -> Clause {
    Clause::new(
        Atom::vars("collaborated", &["x", "y"]),
        vec![
            Atom::vars("publication", &["p", "x"]),
            Atom::vars("publication", &["p", "y"]),
        ],
    )
}

/// One cluster member: an ordinary `RpcServer` with the database
/// schema-registered (empty). Members need no cluster awareness — the
/// router owns placement and content.
fn member(databases: &[&str]) -> RpcServer {
    let service = Arc::new(Server::new(ServerConfig::default().with_threads(2)));
    for db in databases {
        service
            .register(*db, Arc::new(DatabaseInstance::empty(&demo_schema())))
            .expect("register once per member");
    }
    RpcServer::bind(service, "127.0.0.1:0", RpcConfig::default()).expect("bind loopback")
}

fn main() {
    let databases: Vec<String> = (0..6).map(|i| format!("demo-{i}")).collect();
    let names: Vec<&str> = databases.iter().map(String::as_str).collect();

    // Three members; the router starts with two and adopts the third.
    let servers: Vec<RpcServer> = (0..3).map(|_| member(&names)).collect();
    println!("members:");
    for (i, s) in servers.iter().enumerate() {
        println!("  member-{i} on {}", s.local_addr());
    }

    let router = Router::new(
        (0..2).map(|i| (format!("member-{i}"), servers[i].local_addr())),
        ClusterConfig::default(),
    );
    for db in &names {
        router
            .register(db, &demo_db())
            .expect("replay to the owner");
    }
    println!("\nplacement over 2 members:");
    for db in &names {
        println!("  {db} -> {}", router.owner_of(db).unwrap());
    }

    // Jobs route to whichever member owns the database.
    let session = router.session("demo-0").expect("registered");
    let sets = session
        .covered_sets(
            vec![collaborated()],
            vec![
                Tuple::from_strs(&["ann", "bob"]),
                Tuple::from_strs(&["eve", "eve"]),
            ],
        )
        .expect("coverage over the cluster");
    println!(
        "\ncoverage on demo-0 via {}: {} of 2 examples covered",
        session.owner().unwrap(),
        sets[0].len()
    );

    // Mutations go to the owner and to the router's mirror (the replay
    // source for rebalancing).
    session
        .apply(MutationBatch::new().insert("publication", Tuple::from_strs(&["p3", "ann"])))
        .expect("acknowledged apply");

    // Learning streams per-round progress frames over protocol v2.
    let task = LearningTask::new(
        "collaborated",
        2,
        vec![
            Tuple::from_strs(&["ann", "bob"]),
            Tuple::from_strs(&["carol", "dan"]),
        ],
        vec![Tuple::from_strs(&["ann", "carol"])],
    );
    let algorithm = LearnAlgorithm::Progol(LearnerParams {
        allow_constants: false,
        ..LearnerParams::default()
    });
    let (definition, progress) = session
        .learn_with_progress(task, algorithm)
        .expect("learn over the cluster");
    println!(
        "\nlearned {} clause(s); {} streamed progress frame(s):",
        definition.len(),
        progress.len()
    );
    for p in &progress {
        println!(
            "  round {}: +{} -{} ({} uncovered left)  {}",
            p.round, p.covered_positive, p.covered_negative, p.uncovered_remaining, p.clause
        );
    }

    // Membership change: adopt member-2 and rebalance live. Moved
    // databases are drained, replayed, and flipped atomically.
    let report = router
        .add_member("member-2", servers[2].local_addr())
        .expect("rebalance");
    println!(
        "\nadded member-2: {} shard move(s), {} tuple(s) replayed, drained in {:.1}ms",
        report.moves,
        report.replayed_tuples,
        report.drain_ns as f64 / 1e6
    );
    println!("placement over 3 members:");
    for db in &names {
        println!("  {db} -> {}", router.owner_of(db).unwrap());
    }

    // Everything still answers after the move.
    let sets = router
        .session("demo-0")
        .unwrap()
        .covered_sets(
            vec![collaborated()],
            vec![Tuple::from_strs(&["ann", "eve"])],
        )
        .expect("coverage after rebalance");
    println!(
        "\npost-rebalance coverage on demo-0: ann/eve collaborated = {}",
        !sets[0].is_empty()
    );

    let metrics = router.metrics_text();
    println!("\nrouter metrics:");
    for line in metrics.lines().filter(|l| l.starts_with("castor_router")) {
        println!("  {line}");
    }
}
