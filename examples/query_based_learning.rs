//! Query-based learning (Section 8): the A2-style learner asks equivalence
//! and membership queries to an oracle and its query counts depend on how
//! decomposed the schema is.
//!
//! Run with `cargo run --example query_based_learning`.

use castor_datasets::synthetic::{random_definition, RandomDefinitionConfig};
use castor_datasets::uwcse;
use castor_learners::{LogAnH, Oracle};
use castor_transform::map_definition_through_decomposition;

fn main() {
    let original = uwcse::original_schema();
    let to_denorm2 = uwcse::to_denormalized2(&original);
    let denorm2 = to_denorm2.apply_schema(&original);

    // A random target definition over the most composed schema.
    let config = RandomDefinitionConfig {
        clauses: 2,
        variables_per_clause: 6,
        target_arity: 2,
        seed: 42,
    };
    let target_d2 = random_definition(&denorm2, "target", &config);
    println!("Random target over Denormalized-2:\n{target_d2}\n");

    // The same target over the Original schema (vertical decomposition of
    // every clause).
    let target_original = map_definition_through_decomposition(&target_d2, &to_denorm2.invert());
    println!("Same target over Original:\n{target_original}\n");

    for (name, schema, target) in [
        ("Denormalized-2", &denorm2, &target_d2),
        ("Original", &original, &target_original),
    ] {
        let mut oracle = Oracle::new(schema.clone(), target.clone());
        let (learned, stats) = LogAnH::new().learn(&mut oracle, "target");
        println!(
            "{name:<16} learned {} clause(s) with {} equivalence and {} membership queries",
            learned.len(),
            stats.equivalence_queries,
            stats.membership_queries
        );
    }
    println!(
        "\nThe more decomposed schema needs more membership queries — the effect measured \
         in Figure 3 of the paper."
    );
}
