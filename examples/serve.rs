//! Serve a database over the castor-rpc wire protocol and drive it with
//! TCP clients: coverage, scoring, learning, live mutations, and the
//! admission-control counters — the deployment shape where learners run
//! as a network service instead of a library.
//!
//! Run with: `cargo run --example serve`

use castor::logic::{Atom, Clause};
use castor::relational::{DatabaseInstance, MutationBatch, RelationSymbol, Schema, Tuple};
use castor::rpc::{RpcClient, RpcConfig, RpcServer};
use castor::service::{LearnAlgorithm, Server, ServerConfig};
use castor_learners::{LearnerParams, LearningTask};
use std::sync::Arc;

fn demo_db() -> DatabaseInstance {
    let mut schema = Schema::new("demo");
    schema.add_relation(RelationSymbol::new("publication", &["title", "person"]));
    let mut db = DatabaseInstance::empty(&schema);
    for (t, p) in [
        ("p1", "ann"),
        ("p1", "bob"),
        ("p2", "carol"),
        ("p2", "dan"),
        ("p3", "eve"),
    ] {
        db.insert("publication", Tuple::from_strs(&[t, p]))
            .expect("demo tuples match the schema");
    }
    db
}

fn collaborated() -> Clause {
    Clause::new(
        Atom::vars("collaborated", &["x", "y"]),
        vec![
            Atom::vars("publication", &["p", "x"]),
            Atom::vars("publication", &["p", "y"]),
        ],
    )
}

fn main() {
    // The serving stack: engines + queues in-process, admission limits on.
    let service = Arc::new(Server::new(
        ServerConfig::default()
            .with_threads(2)
            .with_max_sessions(8)
            .with_max_inflight(64),
    ));
    service
        .register("demo", Arc::new(demo_db()))
        .expect("register once");

    // The RPC front end: a real TCP listener (loopback here; any address
    // works).
    let rpc = RpcServer::bind(Arc::clone(&service), "127.0.0.1:0", RpcConfig::default())
        .expect("bind loopback");
    println!("castor-rpc serving `demo` on {}", rpc.local_addr());

    // A client connects and runs a coverage job over the socket.
    let mut client = RpcClient::connect(rpc.local_addr(), "demo").expect("connect");
    let examples = vec![
        Tuple::from_strs(&["ann", "bob"]),
        Tuple::from_strs(&["ann", "eve"]),
    ];
    let sets = client
        .covered_sets(vec![collaborated()], examples.clone())
        .expect("coverage over tcp");
    println!(
        "covered before mutation: {} of {}",
        sets[0].len(),
        examples.len()
    );

    // A mutation lands over the wire; the live engine sees it at once.
    let summary = client
        .apply(MutationBatch::new().insert("publication", Tuple::from_strs(&["p3", "ann"])))
        .expect("mutation over tcp");
    println!(
        "mutation applied: +{} tuples, changed {:?}",
        summary.inserted, summary.changed_relations
    );
    let sets = client
        .covered_sets(vec![collaborated()], examples.clone())
        .expect("coverage over tcp");
    println!(
        "covered after mutation:  {} of {}",
        sets[0].len(),
        examples.len()
    );

    // A second client learns a definition over the same live database.
    let mut learner = RpcClient::connect(rpc.local_addr(), "demo").expect("connect");
    let task = LearningTask::new(
        "collaborated",
        2,
        vec![
            Tuple::from_strs(&["ann", "bob"]),
            Tuple::from_strs(&["carol", "dan"]),
        ],
        vec![Tuple::from_strs(&["ann", "carol"])],
    );
    let definition = learner
        .learn(
            task,
            LearnAlgorithm::Progol(LearnerParams {
                allow_constants: false,
                ..LearnerParams::default()
            }),
        )
        .expect("learning over tcp");
    println!("learned over tcp:");
    for clause in definition.iter() {
        println!("  {clause}");
    }

    // Per-session deltas and server-wide counters, all fetched framed.
    let session_report = learner.report().expect("report over tcp");
    println!("learner session delta: {session_report}");
    let (engine_totals, server_report) = client.server_report().expect("server report over tcp");
    println!("engine totals:         {engine_totals}");
    println!("serving counters:      {server_report}");

    // Shutdown snapshot: the wire-served metric exposition (the same text
    // a Prometheus scrape of Request::Metrics would collect) plus the
    // slowest spans the server recorded — queue waits, engine evaluation,
    // reply writes, all correlated by trace id.
    println!("\n--- metrics snapshot (Request::Metrics over tcp) ---");
    let metrics = client.metrics().expect("metrics over tcp");
    for line in metrics.lines().filter(|l| !l.starts_with('#')) {
        // Elide the empty histogram buckets; keep counters and totals.
        if !line.contains("_bucket") || !line.trim_end().ends_with(" 0") {
            println!("{line}");
        }
    }

    println!("\n--- slowest spans ---");
    for span in service.obs().spans().slowest(5) {
        println!(
            "{:>10.3} ms  {:<20} trace={:#x}",
            span.dur_ns as f64 / 1e6,
            span.name,
            span.trace
        );
    }
}
