//! The shared cache arena for cross-schema-variant verdict reuse.
//!
//! Schema independence (the paper's thesis) makes coverage verdicts
//! transferable: if two databases are variants of one logical database —
//! images of a shared base under bijective (de)composition transformations
//! — then a clause evaluated on one variant and its δτ-image evaluated on
//! the other cover the *same* logical examples. A [`CacheArena`] exploits
//! this by keying one [`CoverageCache`] by the clauses' canonical-schema
//! image: every engine bound to the arena translates its (already
//! α-canonical) clauses through its variant's lens before probing, so
//! α-equivalent canonical images collide and a verdict proven on one
//! variant is served to all others.
//!
//! The lens is applied to cache *keys only*. Plans are still compiled and
//! executed against each engine's own schema — the lens image names
//! relations of the canonical schema, which the variant database does not
//! contain.
//!
//! Exhaustion verdicts do not transfer: a budget exhaustion is an artifact
//! of one variant's join order and node accounting, so the cache confines
//! `ExhaustedAt` entries to the variant that observed them (see the source
//! tagging in [`crate::cache`]).

use crate::cache::CoverageCache;
use castor_logic::Clause;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Maps an α-canonical clause of one variant's schema to its (again
/// α-canonical) canonical-schema image. Built from
/// `castor_transform::VariantLens` by callers; the engine only needs the
/// closure, which keeps `castor-engine` free of a transform dependency.
pub type ClauseLens = Arc<dyn Fn(&Clause) -> Clause + Send + Sync>;

/// Maps a set of variant-schema relation names to the canonical-schema
/// relations they can influence — the invalidation companion of
/// [`ClauseLens`]: cached keys name canonical relations, so invalidating
/// after a variant-side mutation must translate the dirty set.
pub type RelationLens = Arc<dyn Fn(&BTreeSet<String>) -> BTreeSet<String> + Send + Sync>;

/// One shared coverage-cache arena for all schema variants of a logical
/// database. Each engine gets a [`CacheBinding`] with a unique variant id;
/// the id tags written verdicts so cross-variant serves can be counted and
/// exhaustions confined.
#[derive(Debug)]
pub struct CacheArena {
    cache: Arc<CoverageCache>,
    next_variant: AtomicUsize,
}

impl CacheArena {
    /// Creates an arena whose shared cache holds at most `capacity`
    /// distinct canonical clauses.
    pub fn new(capacity: usize) -> Self {
        CacheArena {
            cache: Arc::new(CoverageCache::new(capacity)),
            next_variant: AtomicUsize::new(0),
        }
    }

    /// The shared cache (for inspection; engines go through bindings).
    pub fn cache(&self) -> &Arc<CoverageCache> {
        &self.cache
    }

    /// Binds the canonical variant itself: clauses are already in
    /// canonical-schema form, so no translation happens on probes.
    pub fn bind_canonical(&self) -> CacheBinding {
        CacheBinding {
            cache: Arc::clone(&self.cache),
            variant: self.issue_id(),
            lens: None,
            relations: None,
        }
    }

    /// Binds a non-canonical variant: `lens` maps its clauses into the
    /// canonical schema for keying, `relations` translates relation-level
    /// invalidation the same way.
    pub fn bind(&self, lens: ClauseLens, relations: RelationLens) -> CacheBinding {
        CacheBinding {
            cache: Arc::clone(&self.cache),
            variant: self.issue_id(),
            lens: Some(lens),
            relations: Some(relations),
        }
    }

    fn issue_id(&self) -> u16 {
        let id = self.next_variant.fetch_add(1, Ordering::Relaxed);
        u16::try_from(id).expect("more than u16::MAX variants bound to one arena")
    }
}

/// One engine's handle on a coverage cache: the cache itself, the engine's
/// variant id, and the (optional) lenses translating keys at the cache
/// boundary. An unshared engine uses [`CacheBinding::private`] — variant 0,
/// no translation — which behaves exactly like owning the cache directly.
#[derive(Clone)]
pub struct CacheBinding {
    cache: Arc<CoverageCache>,
    variant: u16,
    lens: Option<ClauseLens>,
    relations: Option<RelationLens>,
}

impl CacheBinding {
    /// A private, untranslated binding — the default for engines that do
    /// not share their cache with other schema variants.
    pub fn private(capacity: usize) -> Self {
        CacheBinding {
            cache: Arc::new(CoverageCache::new(capacity)),
            variant: 0,
            lens: None,
            relations: None,
        }
    }

    /// The underlying cache.
    pub fn cache(&self) -> &CoverageCache {
        &self.cache
    }

    /// The variant id verdicts written through this binding are tagged
    /// with.
    pub fn variant(&self) -> u16 {
        self.variant
    }

    /// Whether probes through this binding translate their keys (i.e. the
    /// binding belongs to a shared arena and is not the canonical variant).
    pub fn translates(&self) -> bool {
        self.lens.is_some()
    }

    /// The cache key for an α-canonical clause: the clause itself for an
    /// untranslated binding, its canonical-schema image otherwise.
    pub fn key_of(&self, canonical: &Clause) -> Option<Clause> {
        self.lens.as_ref().map(|lens| lens(canonical))
    }

    /// Translates a variant-schema dirty-relation set for invalidation.
    pub fn relations_of(&self, relations: &BTreeSet<String>) -> Option<BTreeSet<String>> {
        self.relations.as_ref().map(|f| f(relations))
    }
}

impl std::fmt::Debug for CacheBinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CacheBinding")
            .field("variant", &self.variant)
            .field("translates", &self.translates())
            .field("cached_clauses", &self.cache.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use castor_logic::{Atom, CoverageOutcome};
    use castor_relational::Tuple;

    #[test]
    fn arena_issues_distinct_variant_ids() {
        let arena = CacheArena::new(64);
        let a = arena.bind_canonical();
        let b = arena.bind(
            Arc::new(|c: &Clause| c.clone()),
            Arc::new(|r: &BTreeSet<String>| r.clone()),
        );
        assert_ne!(a.variant(), b.variant());
        assert!(!a.translates());
        assert!(b.translates());
    }

    #[test]
    fn bindings_share_one_cache() {
        let arena = CacheArena::new(64);
        let a = arena.bind_canonical();
        let b = arena.bind_canonical();
        let clause = Clause::new(Atom::vars("t", &["_0"]), vec![]);
        let e = Tuple::from_strs(&["x"]);
        a.cache().insert_many_from(
            &clause,
            [(e.clone(), CoverageOutcome::Covered)],
            None,
            a.variant(),
        );
        let (outcome, cross) = b.cache().get_from(&clause, &e, None, b.variant());
        assert_eq!(outcome, Some(CoverageOutcome::Covered));
        assert!(
            cross,
            "verdict proven by another variant must count as a cross hit"
        );
        let (_, same) = a.cache().get_from(&clause, &e, None, a.variant());
        assert!(!same, "own verdicts are ordinary hits");
    }

    #[test]
    fn exhaustions_stay_confined_to_their_variant() {
        let arena = CacheArena::new(64);
        let a = arena.bind_canonical();
        let b = arena.bind_canonical();
        let clause = Clause::new(Atom::vars("t", &["_0"]), vec![]);
        let e = Tuple::from_strs(&["x"]);
        a.cache().insert_many_from(
            &clause,
            [(e.clone(), CoverageOutcome::Exhausted)],
            Some(100),
            a.variant(),
        );
        // The owner is served under a smaller budget; the foreign variant
        // misses without striking the entry.
        for _ in 0..10 {
            let (foreign, _) = b.cache().get_from(&clause, &e, Some(10), b.variant());
            assert_eq!(foreign, None);
        }
        assert_eq!(b.cache().exhaustions_evicted(), 0);
        let (own, _) = a.cache().get_from(&clause, &e, Some(10), a.variant());
        assert_eq!(own, Some(CoverageOutcome::Exhausted));
    }

    #[test]
    fn private_binding_behaves_like_a_plain_cache() {
        let binding = CacheBinding::private(8);
        assert_eq!(binding.variant(), 0);
        assert!(binding
            .key_of(&Clause::new(Atom::vars("t", &["_0"]), vec![]))
            .is_none());
        assert!(binding.relations_of(&BTreeSet::new()).is_none());
    }
}
