//! A fast, non-cryptographic hasher for the engine's internal maps.
//!
//! The coverage cache is probed once per (clause, example) pair on the hot
//! path; with the default SipHash the probe costs more than the lookup
//! itself. This is the FxHash scheme used by rustc (multiply-rotate-xor
//! over word-sized chunks): not DoS-resistant, which is fine for maps keyed
//! by the engine's own canonical clauses and database tuples.

use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// FxHash hasher state.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(value: &T) -> u64 {
        FxBuildHasher::default().hash_one(value)
    }

    #[test]
    fn equal_values_hash_equal() {
        assert_eq!(hash_of(&"hello"), hash_of(&"hello"));
        assert_ne!(hash_of(&"hello"), hash_of(&"world"));
    }

    #[test]
    fn map_roundtrip() {
        let mut map: FxHashMap<String, usize> = FxHashMap::default();
        for i in 0..1000 {
            map.insert(format!("key-{i}"), i);
        }
        assert_eq!(map.len(), 1000);
        assert_eq!(map.get("key-500"), Some(&500));
    }
}
