//! Compiled clause plans: a join order chosen once per clause.
//!
//! The interpreted evaluator in `castor_logic::evaluation` re-ranks the
//! remaining body literals at every backtracking node (an O(body²) choice
//! per node). A [`ClausePlan`] makes that decision once, at compile time,
//! from the selectivity statistics gathered when the engine was built —
//! exactly the stored-procedure-style preparation the paper attributes
//! Castor's speed to (Section 7.5.2). The executor then walks the fixed
//! order with index lookups and never reconsiders it.

use crate::cost::{bound_positions, greedy_order, CostModel, CostModelKind, CostOverrides};
use crate::stats::DatabaseStatistics;
use castor_logic::{Clause, Term};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicUsize, Ordering};

/// One step of a compiled plan: which body literal to solve next, and which
/// of its argument positions are already bound (by the head binding, by a
/// constant, or by an earlier step) when the step runs.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanStep {
    /// Index of the literal in the clause body.
    pub literal: usize,
    /// Argument positions guaranteed to be bound when this step executes.
    pub bound_positions: Vec<usize>,
    /// Estimated candidate rows per invocation of this step — the number
    /// the feedback loop compares against observed rows.
    pub estimated_rows: f64,
}

/// A compiled evaluation plan for one clause, assuming the head variables
/// are bound to an example before execution (the coverage-test calling
/// convention).
///
/// The plan records the mutation epoch of every relation it was costed
/// against ([`ClausePlan::epochs`]); [`ClausePlan::is_current`] compares
/// them with the live statistics so a plan compiled before a mutation batch
/// is detected as stale on the very next fetch and re-planned — stale-plan
/// reuse is impossible by construction.
#[derive(Debug, Clone, PartialEq)]
pub struct ClausePlan {
    /// The body literal order to execute.
    pub steps: Vec<PlanStep>,
    /// Sum of estimated candidate counts along the chosen order (kept for
    /// introspection and tests; not used at execution time).
    pub estimated_cost: f64,
    /// `(relation, epoch)` for every body relation known to the statistics
    /// the plan was costed against, in name order.
    pub epochs: Vec<(String, u64)>,
}

impl ClausePlan {
    /// Whether the plan's costing is still current: every relation it was
    /// costed against sits at the same mutation epoch in `stats`.
    pub fn is_current(&self, stats: &DatabaseStatistics) -> bool {
        self.epochs
            .iter()
            .all(|(name, epoch)| stats.epoch_of(name) == Some(*epoch))
    }

    /// The `(relation, epoch)` stamps for every relation of `atoms` present
    /// in `stats`, deduplicated in name order. Shared with the batched trie
    /// planner in [`crate::batch`].
    pub(crate) fn stamp_epochs<'a, I>(atoms: I, stats: &DatabaseStatistics) -> Vec<(String, u64)>
    where
        I: IntoIterator<Item = &'a castor_logic::Atom>,
    {
        let names: BTreeSet<&str> = atoms.into_iter().map(|a| a.relation.as_str()).collect();
        names
            .into_iter()
            .filter_map(|name| stats.epoch_of(name).map(|e| (name.to_string(), e)))
            .collect()
    }

    /// Compiles a join order for `clause` with the uniform-selectivity
    /// baseline model and no feedback overrides (convenience wrapper over
    /// [`ClausePlan::compile_with`], kept for ablations and tests).
    pub fn compile(clause: &Clause, stats: &DatabaseStatistics) -> ClausePlan {
        ClausePlan::compile_with(
            clause,
            stats,
            CostModelKind::Uniform.model(),
            &CostOverrides::default(),
        )
    }

    /// Compiles a join order for `clause` using greedy cost estimation:
    /// starting from the bound set {head variables ∪ constants}, repeatedly
    /// pick the literal with the smallest estimated candidate count given
    /// the current bound set, then mark its variables bound. Estimates come
    /// from `model`, except that a matching entry of `overrides` (observed
    /// rows recorded by the feedback loop under the same access path) beats
    /// the model.
    pub fn compile_with(
        clause: &Clause,
        stats: &DatabaseStatistics,
        model: &dyn CostModel,
        overrides: &CostOverrides,
    ) -> ClausePlan {
        let mut bound: BTreeSet<String> = clause
            .head
            .terms
            .iter()
            .filter_map(Term::var_name)
            .map(str::to_string)
            .collect();
        let atoms: Vec<&castor_logic::Atom> = clause.body.iter().collect();
        let ordered = greedy_order(&atoms, &mut bound, |lit, atom, borrowed| {
            let observed = if overrides.is_empty() {
                None
            } else {
                overrides.lookup(lit, &bound_positions(atom, borrowed))
            };
            observed.unwrap_or_else(|| model.estimate_atom(atom, borrowed, stats))
        });
        let estimated_cost = ordered.iter().map(|o| o.estimated_rows).sum();
        let steps = ordered
            .into_iter()
            .map(|o| PlanStep {
                literal: o.index,
                bound_positions: o.bound_positions,
                estimated_rows: o.estimated_rows,
            })
            .collect();

        ClausePlan {
            steps,
            estimated_cost,
            epochs: ClausePlan::stamp_epochs(&clause.body, stats),
        }
    }
}

/// Execution feedback for one compiled plan, recorded by the executor with
/// relaxed atomics (worker threads share one instance per cached plan): how
/// many coverage tests the plan ran, and per step how many times it was
/// invoked and how many candidate rows its index probes actually produced.
/// The engine compares the observed per-invocation averages against the
/// plan's [`PlanStep::estimated_rows`] and recompiles — with the observed
/// numbers as [`CostOverrides`] — once they diverge past the configured
/// threshold.
#[derive(Debug)]
pub struct PlanFeedback {
    executions: AtomicUsize,
    invocations: Vec<AtomicUsize>,
    rows: Vec<AtomicUsize>,
    /// Execution count the next divergence check is due at — doubled by
    /// [`PlanFeedback::defer_check`] whenever a check passes, so a hot
    /// plan whose estimates hold pays one atomic load per fetch instead of
    /// a full divergence scan.
    next_check: AtomicUsize,
    /// Divergence checks passed so far; after the second passing check the
    /// feedback is *validated* ([`PlanFeedback::is_validated`]) and the
    /// engine stops handing it to executors — a hot, well-estimated plan
    /// pays no per-probe atomics at all.
    passes: AtomicUsize,
}

impl PlanFeedback {
    /// Fresh feedback for a plan with `steps` steps.
    pub fn new(steps: usize) -> Self {
        PlanFeedback {
            executions: AtomicUsize::new(0),
            invocations: (0..steps).map(|_| AtomicUsize::new(0)).collect(),
            rows: (0..steps).map(|_| AtomicUsize::new(0)).collect(),
            next_check: AtomicUsize::new(0),
            passes: AtomicUsize::new(0),
        }
    }

    /// Whether a divergence check is due: at least `after` executions have
    /// been recorded, and the previous check (if any) has been outgrown
    /// (exponential backoff via [`PlanFeedback::defer_check`]).
    pub fn check_due(&self, after: usize) -> bool {
        self.executions.load(Ordering::Relaxed)
            >= self.next_check.load(Ordering::Relaxed).max(after)
    }

    /// Defers the next divergence check to double the current execution
    /// count — called after a check found the estimates holding. The
    /// second passing check validates the feedback for good.
    pub fn defer_check(&self) {
        let executions = self.executions.load(Ordering::Relaxed);
        self.next_check.store(
            executions.saturating_mul(2).max(executions + 1),
            Ordering::Relaxed,
        );
        self.passes.fetch_add(1, Ordering::Relaxed);
    }

    /// Whether the plan's estimates have held through enough divergence
    /// checks (two, at exponentially spaced sample sizes) that recording
    /// can stop: the engine hands validated feedback to no further
    /// executors, removing the shared-atomic traffic from the hot path.
    /// Data changes recreate the plan entry (epoch invalidation) with
    /// fresh, unvalidated feedback.
    pub fn is_validated(&self) -> bool {
        self.passes.load(Ordering::Relaxed) >= 2
    }

    /// Counts one execution of the whole plan (one coverage test).
    pub fn record_execution(&self) {
        self.executions.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one invocation of step `step` that produced `rows` candidate
    /// rows.
    pub fn record_step(&self, step: usize, rows: usize) {
        if let (Some(inv), Some(total)) = (self.invocations.get(step), self.rows.get(step)) {
            inv.fetch_add(1, Ordering::Relaxed);
            total.fetch_add(rows, Ordering::Relaxed);
        }
    }

    /// Number of plan executions recorded so far.
    pub fn executions(&self) -> usize {
        self.executions.load(Ordering::Relaxed)
    }

    /// Observed average candidate rows per invocation for each step
    /// (`None` for steps that never ran).
    pub fn observed_rows(&self) -> Vec<Option<f64>> {
        self.invocations
            .iter()
            .zip(&self.rows)
            .map(|(inv, rows)| {
                let n = inv.load(Ordering::Relaxed);
                if n == 0 {
                    None
                } else {
                    Some(rows.load(Ordering::Relaxed) as f64 / n as f64)
                }
            })
            .collect()
    }

    /// The worst estimated-vs-observed divergence factor across the plan's
    /// steps (`max(observed/estimated, estimated/observed)`, both clamped
    /// to ≥ 1 row so empty probes do not divide by zero). 1.0 means the
    /// estimates were spot on; steps with no observations are skipped.
    /// Allocation-free: runs under the engine's plan-table lock.
    pub fn divergence(&self, plan: &ClausePlan) -> f64 {
        self.divergence_by(|step| plan.steps[step].estimated_rows)
    }

    /// [`PlanFeedback::divergence`] against arbitrary per-step estimates —
    /// the batch tries share this feedback type with per-step indices that
    /// are trie-node indices, so their estimates live on the trie nodes
    /// rather than on [`PlanStep`]s.
    pub fn divergence_by(&self, estimated_rows: impl Fn(usize) -> f64) -> f64 {
        let mut worst = 1.0f64;
        for (step, (inv, rows)) in self.invocations.iter().zip(&self.rows).enumerate() {
            let n = inv.load(Ordering::Relaxed);
            if n == 0 {
                continue;
            }
            let observed = (rows.load(Ordering::Relaxed) as f64 / n as f64).max(1.0);
            let estimated = estimated_rows(step).max(1.0);
            worst = worst.max((observed / estimated).max(estimated / observed));
        }
        worst
    }

    /// The observed averages as [`CostOverrides`] keyed to the plan's
    /// access paths — what recompilation consults in place of the model.
    pub fn overrides(&self, plan: &ClausePlan) -> CostOverrides {
        let mut overrides = CostOverrides::default();
        for (step, observed) in plan.steps.iter().zip(self.observed_rows()) {
            if let Some(rows) = observed {
                overrides.insert(step.literal, step.bound_positions.clone(), rows);
            }
        }
        overrides
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use castor_logic::Atom;
    use castor_relational::{DatabaseInstance, RelationSymbol, Schema, Tuple};

    fn stats() -> DatabaseStatistics {
        let mut schema = Schema::new("s");
        schema
            .add_relation(RelationSymbol::new("big", &["a", "b"]))
            .add_relation(RelationSymbol::new("small", &["a"]));
        let mut db = DatabaseInstance::empty(&schema);
        for i in 0..100 {
            db.insert(
                "big",
                Tuple::from_strs(&[&format!("k{}", i % 10), &i.to_string()]),
            )
            .unwrap();
        }
        db.insert("small", Tuple::from_strs(&["k1"])).unwrap();
        db.insert("small", Tuple::from_strs(&["k2"])).unwrap();
        DatabaseStatistics::gather(&db)
    }

    #[test]
    fn selective_literal_is_scheduled_first() {
        // t(x) ← big(x, y), small(x): both have x bound by the head, but
        // small has 2 expected matches vs big's 10, so small goes first.
        let clause = Clause::new(
            Atom::vars("t", &["x"]),
            vec![Atom::vars("big", &["x", "y"]), Atom::vars("small", &["x"])],
        );
        let plan = ClausePlan::compile(&clause, &stats());
        assert_eq!(plan.steps[0].literal, 1, "small(x) should be probed first");
        assert_eq!(plan.steps[0].bound_positions, vec![0]);
        // After solving small(x), big's position 0 is still the bound one.
        assert_eq!(plan.steps[1].literal, 0);
        assert_eq!(plan.steps[1].bound_positions, vec![0]);
    }

    #[test]
    fn unknown_relation_short_circuits_to_front() {
        let clause = Clause::new(
            Atom::vars("t", &["x"]),
            vec![
                Atom::vars("big", &["x", "y"]),
                Atom::vars("missing", &["x"]),
            ],
        );
        let plan = ClausePlan::compile(&clause, &stats());
        assert_eq!(plan.steps[0].literal, 1);
    }

    #[test]
    fn constants_count_as_bound() {
        // z is not a head variable, so only the constant position is bound.
        let clause = Clause::new(
            Atom::vars("t", &["y"]),
            vec![
                Atom::vars("small", &["y"]),
                Atom::new("big", vec![Term::constant("k1"), Term::var("z")]),
            ],
        );
        let plan = ClausePlan::compile(&clause, &stats());
        let big_step = plan.steps.iter().find(|s| s.literal == 1).unwrap();
        assert_eq!(big_step.bound_positions, vec![0]);
        assert!(plan.estimated_cost < 100.0);
    }

    #[test]
    fn empty_body_compiles_to_empty_plan() {
        let clause = Clause::fact(Atom::vars("t", &["x"]));
        let plan = ClausePlan::compile(&clause, &stats());
        assert!(plan.steps.is_empty());
        assert_eq!(plan.estimated_cost, 0.0);
        assert!(plan.epochs.is_empty());
    }

    #[test]
    fn plans_record_epochs_and_detect_staleness() {
        let mut schema = Schema::new("s");
        schema
            .add_relation(RelationSymbol::new("big", &["a", "b"]))
            .add_relation(RelationSymbol::new("small", &["a"]));
        let mut db = DatabaseInstance::empty(&schema);
        db.insert("big", Tuple::from_strs(&["k1", "1"])).unwrap();
        db.insert("small", Tuple::from_strs(&["k1"])).unwrap();
        let mut stats = DatabaseStatistics::gather(&db);
        let clause = Clause::new(
            Atom::vars("t", &["x"]),
            vec![Atom::vars("big", &["x", "y"]), Atom::vars("small", &["x"])],
        );
        let plan = ClausePlan::compile(&clause, &stats);
        assert_eq!(
            plan.epochs,
            vec![("big".to_string(), 1), ("small".to_string(), 1)]
        );
        assert!(plan.is_current(&stats));
        // Mutating a relation the plan was costed against makes it stale.
        db.insert("big", Tuple::from_strs(&["k2", "2"])).unwrap();
        stats.refresh(&db);
        assert!(!plan.is_current(&stats));
        let recompiled = ClausePlan::compile(&clause, &stats);
        assert!(recompiled.is_current(&stats));
    }

    #[test]
    fn unknown_relations_are_not_stamped() {
        let clause = Clause::new(
            Atom::vars("t", &["x"]),
            vec![Atom::vars("missing", &["x"]), Atom::vars("small", &["x"])],
        );
        let plan = ClausePlan::compile(&clause, &stats());
        assert_eq!(plan.epochs.len(), 1);
        assert_eq!(plan.epochs[0].0, "small");
        assert!(plan.is_current(&stats()));
    }

    /// `skewed` hides a hub under a high distinct count (uniform thinks it
    /// is cheap); `flat` really is 10 rows per key (the shared fixture in
    /// `crate::cost`).
    fn skewed_stats() -> DatabaseStatistics {
        DatabaseStatistics::gather(&crate::cost::skewed_hub_db("skewed", "flat"))
    }

    #[test]
    fn histogram_model_reorders_skewed_joins() {
        // t(x) ← skewed(x, y), flat(x, z): uniform sees 2.5 vs 10 expected
        // rows and schedules the skewed hub first; the histogram model sees
        // the frequency-weighted ~180 vs 10 and flips the order.
        let clause = Clause::new(
            Atom::vars("t", &["x"]),
            vec![
                Atom::vars("skewed", &["x", "y"]),
                Atom::vars("flat", &["x", "z"]),
            ],
        );
        let stats = skewed_stats();
        let uniform = ClausePlan::compile_with(
            &clause,
            &stats,
            CostModelKind::Uniform.model(),
            &CostOverrides::default(),
        );
        assert_eq!(uniform.steps[0].literal, 0, "uniform should pick skewed");
        let hist = ClausePlan::compile_with(
            &clause,
            &stats,
            CostModelKind::Histogram.model(),
            &CostOverrides::default(),
        );
        assert_eq!(hist.steps[0].literal, 1, "histogram should pick flat");
        assert!(hist.steps[0].estimated_rows < hist.steps[1].estimated_rows);
    }

    #[test]
    fn overrides_beat_the_model_during_recompilation() {
        let clause = Clause::new(
            Atom::vars("t", &["x"]),
            vec![
                Atom::vars("skewed", &["x", "y"]),
                Atom::vars("flat", &["x", "z"]),
            ],
        );
        let stats = skewed_stats();
        // Observed reality: the skewed probe produced ~300 rows under the
        // access path [0]; recompiling with the override flips the order
        // even under the uniform model.
        let mut overrides = CostOverrides::default();
        overrides.insert(0, vec![0], 300.0);
        let plan =
            ClausePlan::compile_with(&clause, &stats, CostModelKind::Uniform.model(), &overrides);
        assert_eq!(plan.steps[0].literal, 1);
    }

    #[test]
    fn feedback_records_divergence_and_builds_overrides() {
        let clause = Clause::new(
            Atom::vars("t", &["x"]),
            vec![
                Atom::vars("skewed", &["x", "y"]),
                Atom::vars("flat", &["x", "z"]),
            ],
        );
        let stats = skewed_stats();
        let plan = ClausePlan::compile_with(
            &clause,
            &stats,
            CostModelKind::Uniform.model(),
            &CostOverrides::default(),
        );
        let feedback = PlanFeedback::new(plan.steps.len());
        assert_eq!(feedback.executions(), 0);
        assert!((feedback.divergence(&plan) - 1.0).abs() < 1e-9);
        for _ in 0..10 {
            feedback.record_execution();
            feedback.record_step(0, 300); // estimated ~2.5, observed 300
            feedback.record_step(1, 10);
        }
        assert_eq!(feedback.executions(), 10);
        assert!(
            feedback.divergence(&plan) > 50.0,
            "divergence {} should flag the skewed step",
            feedback.divergence(&plan)
        );
        let overrides = feedback.overrides(&plan);
        let replanned =
            ClausePlan::compile_with(&clause, &stats, CostModelKind::Uniform.model(), &overrides);
        assert_eq!(replanned.steps[0].literal, 1, "recosted plan must flip");
        // Out-of-range step records are ignored, not a panic.
        feedback.record_step(99, 1);
    }

    #[test]
    fn divergence_checks_back_off_and_validate() {
        let feedback = PlanFeedback::new(2);
        assert!(!feedback.check_due(4), "no executions yet");
        for _ in 0..4 {
            feedback.record_execution();
        }
        assert!(feedback.check_due(4));
        assert!(!feedback.is_validated());
        // A passing check defers the next one to double the executions.
        feedback.defer_check();
        assert!(!feedback.check_due(4));
        for _ in 0..4 {
            feedback.record_execution();
        }
        assert!(feedback.check_due(4));
        // The second passing check validates for good.
        feedback.defer_check();
        assert!(feedback.is_validated());
    }
}
