//! Compiled clause plans: a join order chosen once per clause.
//!
//! The interpreted evaluator in `castor_logic::evaluation` re-ranks the
//! remaining body literals at every backtracking node (an O(body²) choice
//! per node). A [`ClausePlan`] makes that decision once, at compile time,
//! from the selectivity statistics gathered when the engine was built —
//! exactly the stored-procedure-style preparation the paper attributes
//! Castor's speed to (Section 7.5.2). The executor then walks the fixed
//! order with index lookups and never reconsiders it.

use crate::stats::DatabaseStatistics;
use castor_logic::{Clause, Term};
use std::collections::BTreeSet;

/// One step of a compiled plan: which body literal to solve next, and which
/// of its argument positions are already bound (by the head binding, by a
/// constant, or by an earlier step) when the step runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanStep {
    /// Index of the literal in the clause body.
    pub literal: usize,
    /// Argument positions guaranteed to be bound when this step executes.
    pub bound_positions: Vec<usize>,
}

/// A compiled evaluation plan for one clause, assuming the head variables
/// are bound to an example before execution (the coverage-test calling
/// convention).
///
/// The plan records the mutation epoch of every relation it was costed
/// against ([`ClausePlan::epochs`]); [`ClausePlan::is_current`] compares
/// them with the live statistics so a plan compiled before a mutation batch
/// is detected as stale on the very next fetch and re-planned — stale-plan
/// reuse is impossible by construction.
#[derive(Debug, Clone, PartialEq)]
pub struct ClausePlan {
    /// The body literal order to execute.
    pub steps: Vec<PlanStep>,
    /// Sum of estimated candidate counts along the chosen order (kept for
    /// introspection and tests; not used at execution time).
    pub estimated_cost: f64,
    /// `(relation, epoch)` for every body relation known to the statistics
    /// the plan was costed against, in name order.
    pub epochs: Vec<(String, u64)>,
}

impl ClausePlan {
    /// Whether the plan's costing is still current: every relation it was
    /// costed against sits at the same mutation epoch in `stats`.
    pub fn is_current(&self, stats: &DatabaseStatistics) -> bool {
        self.epochs
            .iter()
            .all(|(name, epoch)| stats.epoch_of(name) == Some(*epoch))
    }

    /// The `(relation, epoch)` stamps for every relation of `atoms` present
    /// in `stats`, deduplicated in name order. Shared with the batched trie
    /// planner in [`crate::batch`].
    pub(crate) fn stamp_epochs<'a, I>(atoms: I, stats: &DatabaseStatistics) -> Vec<(String, u64)>
    where
        I: IntoIterator<Item = &'a castor_logic::Atom>,
    {
        let names: BTreeSet<&str> = atoms.into_iter().map(|a| a.relation.as_str()).collect();
        names
            .into_iter()
            .filter_map(|name| stats.epoch_of(name).map(|e| (name.to_string(), e)))
            .collect()
    }

    /// Compiles a join order for `clause` using greedy cost estimation:
    /// starting from the bound set {head variables ∪ constants}, repeatedly
    /// pick the literal with the smallest estimated candidate count given
    /// the current bound set, then mark its variables bound.
    pub fn compile(clause: &Clause, stats: &DatabaseStatistics) -> ClausePlan {
        let mut bound: BTreeSet<&str> = clause
            .head
            .terms
            .iter()
            .filter_map(Term::var_name)
            .collect();
        let mut remaining: Vec<usize> = (0..clause.body.len()).collect();
        let mut steps = Vec::with_capacity(clause.body.len());
        let mut estimated_cost = 0.0;

        while !remaining.is_empty() {
            let mut best: Option<(usize, f64)> = None;
            for (slot, &lit) in remaining.iter().enumerate() {
                let cost = estimate(clause, lit, &bound, stats);
                let better = match best {
                    None => true,
                    Some((_, best_cost)) => cost < best_cost,
                };
                if better {
                    best = Some((slot, cost));
                }
            }
            let (slot, cost) = best.expect("remaining is non-empty");
            let lit = remaining.remove(slot);
            estimated_cost += cost;
            let atom = &clause.body[lit];
            let bound_positions: Vec<usize> = atom
                .terms
                .iter()
                .enumerate()
                .filter(|(_, term)| match term {
                    Term::Const(_) => true,
                    Term::Var(name) => bound.contains(name.as_str()),
                })
                .map(|(i, _)| i)
                .collect();
            bound.extend(atom.terms.iter().filter_map(Term::var_name));
            steps.push(PlanStep {
                literal: lit,
                bound_positions,
            });
        }

        ClausePlan {
            steps,
            estimated_cost,
            epochs: ClausePlan::stamp_epochs(&clause.body, stats),
        }
    }
}

/// Estimated number of candidate tuples for solving body literal `lit`
/// given the currently bound variables.
fn estimate(
    clause: &Clause,
    lit: usize,
    bound: &BTreeSet<&str>,
    stats: &DatabaseStatistics,
) -> f64 {
    estimate_atom(&clause.body[lit], bound, stats)
}

/// Estimated number of candidate tuples for solving `atom` given the
/// currently bound variables: the smallest expected posting-list size over
/// its bound positions, or the full relation cardinality when no position
/// is bound. Unknown relations cost 0 — probing them first fails the whole
/// body immediately, which is the cheapest possible outcome. Shared with
/// the batched trie planner in [`crate::batch`].
pub(crate) fn estimate_atom(
    atom: &castor_logic::Atom,
    bound: &BTreeSet<&str>,
    stats: &DatabaseStatistics,
) -> f64 {
    let Some(rel) = stats.relation(&atom.relation) else {
        return 0.0;
    };
    let mut best: Option<f64> = None;
    for (pos, term) in atom.terms.iter().enumerate() {
        let is_bound = match term {
            Term::Const(_) => true,
            Term::Var(name) => bound.contains(name.as_str()),
        };
        if is_bound {
            let expected = rel.expected_matches(pos);
            if best.is_none_or(|b| expected < b) {
                best = Some(expected);
            }
        }
    }
    best.unwrap_or(rel.cardinality as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use castor_logic::Atom;
    use castor_relational::{DatabaseInstance, RelationSymbol, Schema, Tuple};

    fn stats() -> DatabaseStatistics {
        let mut schema = Schema::new("s");
        schema
            .add_relation(RelationSymbol::new("big", &["a", "b"]))
            .add_relation(RelationSymbol::new("small", &["a"]));
        let mut db = DatabaseInstance::empty(&schema);
        for i in 0..100 {
            db.insert(
                "big",
                Tuple::from_strs(&[&format!("k{}", i % 10), &i.to_string()]),
            )
            .unwrap();
        }
        db.insert("small", Tuple::from_strs(&["k1"])).unwrap();
        db.insert("small", Tuple::from_strs(&["k2"])).unwrap();
        DatabaseStatistics::gather(&db)
    }

    #[test]
    fn selective_literal_is_scheduled_first() {
        // t(x) ← big(x, y), small(x): both have x bound by the head, but
        // small has 2 expected matches vs big's 10, so small goes first.
        let clause = Clause::new(
            Atom::vars("t", &["x"]),
            vec![Atom::vars("big", &["x", "y"]), Atom::vars("small", &["x"])],
        );
        let plan = ClausePlan::compile(&clause, &stats());
        assert_eq!(plan.steps[0].literal, 1, "small(x) should be probed first");
        assert_eq!(plan.steps[0].bound_positions, vec![0]);
        // After solving small(x), big's position 0 is still the bound one.
        assert_eq!(plan.steps[1].literal, 0);
        assert_eq!(plan.steps[1].bound_positions, vec![0]);
    }

    #[test]
    fn unknown_relation_short_circuits_to_front() {
        let clause = Clause::new(
            Atom::vars("t", &["x"]),
            vec![
                Atom::vars("big", &["x", "y"]),
                Atom::vars("missing", &["x"]),
            ],
        );
        let plan = ClausePlan::compile(&clause, &stats());
        assert_eq!(plan.steps[0].literal, 1);
    }

    #[test]
    fn constants_count_as_bound() {
        // z is not a head variable, so only the constant position is bound.
        let clause = Clause::new(
            Atom::vars("t", &["y"]),
            vec![
                Atom::vars("small", &["y"]),
                Atom::new("big", vec![Term::constant("k1"), Term::var("z")]),
            ],
        );
        let plan = ClausePlan::compile(&clause, &stats());
        let big_step = plan.steps.iter().find(|s| s.literal == 1).unwrap();
        assert_eq!(big_step.bound_positions, vec![0]);
        assert!(plan.estimated_cost < 100.0);
    }

    #[test]
    fn empty_body_compiles_to_empty_plan() {
        let clause = Clause::fact(Atom::vars("t", &["x"]));
        let plan = ClausePlan::compile(&clause, &stats());
        assert!(plan.steps.is_empty());
        assert_eq!(plan.estimated_cost, 0.0);
        assert!(plan.epochs.is_empty());
    }

    #[test]
    fn plans_record_epochs_and_detect_staleness() {
        let mut schema = Schema::new("s");
        schema
            .add_relation(RelationSymbol::new("big", &["a", "b"]))
            .add_relation(RelationSymbol::new("small", &["a"]));
        let mut db = DatabaseInstance::empty(&schema);
        db.insert("big", Tuple::from_strs(&["k1", "1"])).unwrap();
        db.insert("small", Tuple::from_strs(&["k1"])).unwrap();
        let mut stats = DatabaseStatistics::gather(&db);
        let clause = Clause::new(
            Atom::vars("t", &["x"]),
            vec![Atom::vars("big", &["x", "y"]), Atom::vars("small", &["x"])],
        );
        let plan = ClausePlan::compile(&clause, &stats);
        assert_eq!(
            plan.epochs,
            vec![("big".to_string(), 1), ("small".to_string(), 1)]
        );
        assert!(plan.is_current(&stats));
        // Mutating a relation the plan was costed against makes it stale.
        db.insert("big", Tuple::from_strs(&["k2", "2"])).unwrap();
        stats.refresh(&db);
        assert!(!plan.is_current(&stats));
        let recompiled = ClausePlan::compile(&clause, &stats);
        assert!(recompiled.is_current(&stats));
    }

    #[test]
    fn unknown_relations_are_not_stamped() {
        let clause = Clause::new(
            Atom::vars("t", &["x"]),
            vec![Atom::vars("missing", &["x"]), Atom::vars("small", &["x"])],
        );
        let plan = ClausePlan::compile(&clause, &stats());
        assert_eq!(plan.epochs.len(), 1);
        assert_eq!(plan.epochs[0].0, "small");
        assert!(plan.is_current(&stats()));
    }
}
