//! A persistent worker pool for parallel coverage testing.
//!
//! The original implementation spawned a fresh `std::thread::scope` per
//! `covered_set` call and split the examples into fixed per-thread chunks.
//! A covering run performs thousands of such calls, so thread creation
//! dominated at small batch sizes and a single slow chunk (one example with
//! a pathological subsumption test) idled every other worker. This pool is
//! created once per engine and reused; batches are distributed by an atomic
//! cursor, so workers *steal* the next pending example as soon as they
//! finish the previous one — the Figure 2 parallelism ablation runs against
//! this executor.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Lifetime counters of one [`WorkerPool`], updated by the workers and read
/// by the observability scrape path. Always on: the cost is one relaxed add
/// per claimed item plus two clock reads per dispatched pool job — far
/// below the work either represents.
#[derive(Debug, Default)]
pub struct PoolStats {
    steals: AtomicU64,
    idle_ns: AtomicU64,
}

impl PoolStats {
    /// Work items claimed off the shared cursor by pool workers. The
    /// distribution is steal-based — a worker takes the next pending index
    /// the moment it finishes the previous one — so this counts how much
    /// work actually ran on the pool (an inline pool stays at 0).
    pub fn steals(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }

    /// Total nanoseconds workers spent parked waiting for a job.
    pub fn idle_ns(&self) -> u64 {
        self.idle_ns.load(Ordering::Relaxed)
    }
}

/// A fixed-size pool of worker threads living as long as the pool value.
///
/// A pool of size 0 or 1 runs everything inline on the calling thread and
/// spawns no threads at all.
#[derive(Debug)]
pub struct WorkerPool {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    size: usize,
    stats: Arc<PoolStats>,
}

impl WorkerPool {
    /// Creates a pool with `size` workers (0 and 1 both mean "inline").
    pub fn new(size: usize) -> Self {
        let stats = Arc::new(PoolStats::default());
        if size <= 1 {
            return WorkerPool {
                sender: None,
                workers: Vec::new(),
                size: 1,
                stats,
            };
        }
        let (sender, receiver) = channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..size)
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                let stats = Arc::clone(&stats);
                std::thread::Builder::new()
                    .name(format!("castor-engine-worker-{i}"))
                    .spawn(move || loop {
                        let parked = Instant::now();
                        let job = {
                            let guard = receiver.lock().unwrap_or_else(|e| e.into_inner());
                            guard.recv()
                        };
                        stats
                            .idle_ns
                            .fetch_add(parked.elapsed().as_nanos() as u64, Ordering::Relaxed);
                        match job {
                            // A panicking job must not take the worker down:
                            // later batches would deadlock waiting for it.
                            Ok(job) => {
                                let _ = catch_unwind(AssertUnwindSafe(job));
                            }
                            Err(_) => return, // pool dropped
                        }
                    })
                    .expect("failed to spawn worker thread")
            })
            .collect();
        WorkerPool {
            sender: Some(sender),
            workers,
            size,
            stats,
        }
    }

    /// Number of worker threads (1 for an inline pool).
    pub fn size(&self) -> usize {
        self.size
    }

    /// The pool's lifetime steal/idle counters.
    pub fn stats(&self) -> &Arc<PoolStats> {
        &self.stats
    }

    /// Applies `f` to every index in `0..count`, in parallel, returning the
    /// results in index order. Work is distributed by an atomic cursor:
    /// each worker repeatedly claims the next unprocessed index, so uneven
    /// per-item costs do not idle the other workers.
    ///
    /// Panics if a worker panicked while processing an item.
    pub fn map_indices<R, F>(&self, count: usize, f: F) -> Vec<R>
    where
        R: Send + 'static,
        F: Fn(usize) -> R + Send + Sync + 'static,
    {
        if self.size <= 1 || count <= 1 {
            return (0..count).map(f).collect();
        }
        let f = Arc::new(f);
        let cursor = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = channel::<(usize, R)>();
        let workers = self.size.min(count);
        for _ in 0..workers {
            let f = Arc::clone(&f);
            let cursor = Arc::clone(&cursor);
            let tx = tx.clone();
            let stats = Arc::clone(&self.stats);
            self.submit(Box::new(move || {
                // Claimed indices accumulate locally; one relaxed add per
                // worker job keeps the shared counter off the steal loop.
                let mut claimed = 0u64;
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= count {
                        break;
                    }
                    claimed += 1;
                    if tx.send((i, f(i))).is_err() {
                        break;
                    }
                }
                stats.steals.fetch_add(claimed, Ordering::Relaxed);
            }));
        }
        drop(tx); // the channel closes once every worker job finishes
        let mut slots: Vec<Option<R>> = (0..count).map(|_| None).collect();
        let mut received = 0;
        for (i, r) in rx {
            slots[i] = Some(r);
            received += 1;
        }
        assert!(
            received == count,
            "worker panicked: {received}/{count} results produced"
        );
        slots.into_iter().map(|s| s.expect("slot filled")).collect()
    }

    /// Applies `f` to every cell of a `rows × cols` grid, in parallel,
    /// returning results in row-major order. This is the batched-evaluation
    /// work distribution: rows are trie subtrees, columns are example
    /// chunks, and the atomic cursor of [`WorkerPool::map_indices`] lets
    /// workers steal cells across both dimensions — a pathological subtree
    /// on one example cannot idle the rest of the grid.
    pub fn map_grid<R, F>(&self, rows: usize, cols: usize, f: F) -> Vec<R>
    where
        R: Send + 'static,
        F: Fn(usize, usize) -> R + Send + Sync + 'static,
    {
        if cols == 0 {
            return Vec::new();
        }
        self.map_indices(rows * cols, move |i| f(i / cols, i % cols))
    }

    fn submit(&self, job: Job) {
        self.sender
            .as_ref()
            .expect("submit called on inline pool")
            .send(job)
            .expect("worker threads outlive the pool");
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        drop(self.sender.take()); // closes the channel; workers drain and exit
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_pool_spawns_no_threads() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.size(), 1);
        assert_eq!(pool.map_indices(4, |i| i * 2), vec![0, 2, 4, 6]);
    }

    #[test]
    fn parallel_map_preserves_index_order() {
        let pool = WorkerPool::new(4);
        let out = pool.map_indices(100, |i| i + 1);
        assert_eq!(out, (1..=100).collect::<Vec<_>>());
        // Every index was claimed off the shared cursor exactly once.
        assert_eq!(pool.stats().steals(), 100);
    }

    #[test]
    fn inline_pool_records_no_steals() {
        let pool = WorkerPool::new(1);
        pool.map_indices(8, |i| i);
        assert_eq!(pool.stats().steals(), 0);
        assert_eq!(pool.stats().idle_ns(), 0);
    }

    #[test]
    fn pool_survives_across_batches() {
        let pool = WorkerPool::new(3);
        for round in 0..10 {
            let out = pool.map_indices(17, move |i| i * round);
            assert_eq!(out.len(), 17);
        }
    }

    #[test]
    fn uneven_workloads_complete() {
        let pool = WorkerPool::new(4);
        let out = pool.map_indices(32, |i| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            i
        });
        assert_eq!(out.len(), 32);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let pool = WorkerPool::new(2);
        let out: Vec<usize> = pool.map_indices(0, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn grid_map_is_row_major_and_complete() {
        for threads in [1, 4] {
            let pool = WorkerPool::new(threads);
            let out = pool.map_grid(3, 5, |r, c| (r, c));
            assert_eq!(out.len(), 15);
            assert_eq!(out[0], (0, 0));
            assert_eq!(out[7], (1, 2));
            assert_eq!(out[14], (2, 4));
        }
    }

    #[test]
    fn degenerate_grids_are_empty() {
        let pool = WorkerPool::new(2);
        assert!(pool.map_grid(0, 4, |r, _| r).is_empty());
        assert!(pool.map_grid(4, 0, |r, _| r).is_empty());
    }
}
