//! Plan execution: a backtracking index-nested-loop join over a compiled
//! [`ClausePlan`].
//!
//! Unlike the interpreted evaluator, the executor never reconsiders literal
//! order: each step's access path (the index positions to probe) was fixed
//! at compile time, so the per-node work is one index lookup plus
//! unification. Bindings are undone through a trail rather than cloning the
//! substitution per candidate.

use crate::plan::{ClausePlan, PlanFeedback};
use castor_logic::evaluation::{bind_head, unify_with_tuple};
use castor_logic::{Clause, CoverageOutcome, EvalBudget, Substitution, Term};
use castor_relational::{DatabaseInstance, Tuple, Value};

/// Whether `clause` covers `example` over `db`, following `plan`.
///
/// Semantics match [`castor_logic::covers_example_budgeted`]: the head is
/// bound to the example, then the body is searched for one satisfying
/// assignment within the node budget.
pub fn covers_with_plan(
    clause: &Clause,
    plan: &ClausePlan,
    db: &DatabaseInstance,
    example: &Tuple,
    budget: &mut EvalBudget,
) -> CoverageOutcome {
    covers_with_plan_observed(clause, plan, db, example, budget, None)
}

/// [`covers_with_plan`] with execution feedback: when `feedback` is given,
/// the executor records one plan execution plus, per step invocation, the
/// number of candidate rows the index probe actually produced — the
/// observations the engine's feedback re-planning compares against the
/// plan's estimates.
pub fn covers_with_plan_observed(
    clause: &Clause,
    plan: &ClausePlan,
    db: &DatabaseInstance,
    example: &Tuple,
    budget: &mut EvalBudget,
    feedback: Option<&PlanFeedback>,
) -> CoverageOutcome {
    debug_assert_eq!(plan.steps.len(), clause.body.len(), "plan/clause mismatch");
    let Some(mut theta) = bind_head(clause, example) else {
        return CoverageOutcome::NotCovered;
    };
    if let Some(feedback) = feedback {
        feedback.record_execution();
    }
    let mut trail: Vec<String> = Vec::new();
    let found = solve(
        clause, plan, db, 0, &mut theta, &mut trail, budget, feedback,
    );
    if found {
        CoverageOutcome::Covered
    } else if budget.was_exhausted() {
        CoverageOutcome::Exhausted
    } else {
        CoverageOutcome::NotCovered
    }
}

#[allow(clippy::too_many_arguments)]
fn solve(
    clause: &Clause,
    plan: &ClausePlan,
    db: &DatabaseInstance,
    step_idx: usize,
    theta: &mut Substitution,
    trail: &mut Vec<String>,
    budget: &mut EvalBudget,
    feedback: Option<&PlanFeedback>,
) -> bool {
    let Some(step) = plan.steps.get(step_idx) else {
        return true; // every literal solved
    };
    let atom = &clause.body[step.literal];
    let Some(instance) = db.relation(&atom.relation) else {
        return false; // unknown relation ⇒ body unsatisfiable
    };

    let candidates: Vec<&Tuple> = if step.bound_positions.is_empty() {
        instance.iter().collect()
    } else {
        let key: Vec<Value> = step
            .bound_positions
            .iter()
            .map(|&pos| match &atom.terms[pos] {
                Term::Const(v) => v.clone(),
                Term::Var(name) => match theta.get(name) {
                    Some(Term::Const(v)) => v.clone(),
                    // The planner guarantees the variable is bound here; a
                    // miss would be a plan/execution mismatch.
                    _ => unreachable!("planned-bound variable {name} unbound at execution"),
                },
            })
            .collect();
        instance.select_on_positions(&step.bound_positions, &key)
    };
    if let Some(feedback) = feedback {
        feedback.record_step(step_idx, candidates.len());
    }

    for tuple in candidates {
        if !budget.consume() {
            return false;
        }
        let mark = trail.len();
        if unify_with_tuple(atom, tuple, theta, trail)
            && solve(
                clause,
                plan,
                db,
                step_idx + 1,
                theta,
                trail,
                budget,
                feedback,
            )
        {
            return true;
        }
        for name in trail.drain(mark..) {
            theta.unbind(&name);
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::DatabaseStatistics;
    use castor_logic::Atom;
    use castor_relational::{RelationSymbol, Schema};

    fn db() -> DatabaseInstance {
        let mut schema = Schema::new("t");
        schema
            .add_relation(RelationSymbol::new("publication", &["title", "person"]))
            .add_relation(RelationSymbol::new("professor", &["prof"]));
        let mut db = DatabaseInstance::empty(&schema);
        for (t, p) in [("p1", "ann"), ("p1", "bob"), ("p2", "carol")] {
            db.insert("publication", Tuple::from_strs(&[t, p])).unwrap();
        }
        db.insert("professor", Tuple::from_strs(&["ann"])).unwrap();
        db
    }

    fn plan_for(clause: &Clause, db: &DatabaseInstance) -> ClausePlan {
        ClausePlan::compile(clause, &DatabaseStatistics::gather(db))
    }

    #[test]
    fn executor_agrees_with_reference_semantics() {
        let db = db();
        let clause = Clause::new(
            Atom::vars("collaborated", &["x", "y"]),
            vec![
                Atom::vars("publication", &["p", "x"]),
                Atom::vars("publication", &["p", "y"]),
            ],
        );
        let plan = plan_for(&clause, &db);
        for example in [
            Tuple::from_strs(&["ann", "bob"]),
            Tuple::from_strs(&["ann", "carol"]),
            Tuple::from_strs(&["carol", "carol"]),
            Tuple::from_strs(&["nobody", "ann"]),
        ] {
            let mut budget = EvalBudget::default();
            let planned = covers_with_plan(&clause, &plan, &db, &example, &mut budget);
            let reference = castor_logic::covers_example(&clause, &db, &example);
            assert_eq!(planned.is_covered(), reference, "example {example}");
        }
    }

    #[test]
    fn zero_budget_reports_exhaustion() {
        let db = db();
        let clause = Clause::new(
            Atom::vars("t", &["x"]),
            vec![Atom::vars("professor", &["x"])],
        );
        let plan = plan_for(&clause, &db);
        let mut budget = EvalBudget::new(0);
        assert_eq!(
            covers_with_plan(
                &clause,
                &plan,
                &db,
                &Tuple::from_strs(&["ann"]),
                &mut budget
            ),
            CoverageOutcome::Exhausted
        );
    }

    #[test]
    fn empty_body_covers_iff_head_binds() {
        let db = db();
        let clause = Clause::fact(Atom::vars("t", &["x"]));
        let plan = plan_for(&clause, &db);
        let mut budget = EvalBudget::default();
        assert_eq!(
            covers_with_plan(
                &clause,
                &plan,
                &db,
                &Tuple::from_strs(&["anything"]),
                &mut budget
            ),
            CoverageOutcome::Covered
        );
    }
}
