//! Pluggable plan-costing models.
//!
//! Join orders used to be chosen from a single hard-coded estimate:
//! `cardinality / distinct`, the classic uniform-selectivity assumption.
//! That estimate is *worst* exactly where the paper's schema-independence
//! guarantee makes it matter most — decomposed schemas concentrate skew
//! into link relations, where one hub value can hold thousands of rows
//! while the distinct count stays high. The [`CostModel`] trait makes the
//! estimate a pluggable decision consulted by both [`crate::ClausePlan`]
//! literal ordering and [`crate::BatchPlan`] child/prefix ordering:
//!
//! * [`UniformCost`] — the old model, kept as the ablation baseline;
//! * [`HistogramCost`] — the default: consults the per-position
//!   most-common-value lists and equi-depth histograms maintained by
//!   `castor-relational`, so hub-heavy access paths are priced at their
//!   frequency-weighted expected fan-out instead of the uniform average.
//!
//! [`CostOverrides`] carries *observed* per-literal candidate counts back
//! into compilation — the feedback re-planning loop: when the executor
//! reports that a plan's estimates diverged from reality, the engine
//! recompiles the plan with the observed numbers taking precedence over
//! any model.

use crate::stats::DatabaseStatistics;
use castor_logic::{Atom, Term};
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// A plan-costing model: estimates candidate rows for solving one body
/// literal given the currently bound variables.
pub trait CostModel: fmt::Debug + Send + Sync {
    /// Estimated number of candidate tuples for solving `atom` given the
    /// bound variables `bound`. Unknown relations must cost 0 — probing
    /// them first fails the whole body immediately, which is the cheapest
    /// possible outcome.
    fn estimate_atom(&self, atom: &Atom, bound: &BTreeSet<&str>, stats: &DatabaseStatistics)
        -> f64;

    /// Short model name for reports and bench labels.
    fn name(&self) -> &'static str;
}

/// Which [`CostModel`] an engine consults (configuration-friendly handle).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CostModelKind {
    /// `cardinality / distinct` per bound position (the ablation baseline).
    Uniform,
    /// MCV + equi-depth-histogram estimates (skew-aware; the default).
    #[default]
    Histogram,
}

impl CostModelKind {
    /// The model instance behind the handle.
    pub fn model(self) -> &'static dyn CostModel {
        match self {
            CostModelKind::Uniform => &UniformCost,
            CostModelKind::Histogram => &HistogramCost,
        }
    }
}

/// The argument positions of `atom` that are bound under `bound` (constants
/// and already-bound variables) — the access path an index probe would use.
pub fn bound_positions(atom: &Atom, bound: &BTreeSet<&str>) -> Vec<usize> {
    atom.terms
        .iter()
        .enumerate()
        .filter(|(_, term)| match term {
            Term::Const(_) => true,
            Term::Var(name) => bound.contains(name.as_str()),
        })
        .map(|(i, _)| i)
        .collect()
}

/// One literal scheduled by [`greedy_order`]: its index in the caller's
/// input, the access path it executes with, and its estimated candidate
/// rows at that position.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderedLiteral {
    /// Index into the caller's atom list.
    pub index: usize,
    /// Bound argument positions at execution time.
    pub bound_positions: Vec<usize>,
    /// Estimated candidate rows per invocation.
    pub estimated_rows: f64,
}

/// The greedy cheapest-bindable-literal schedule shared by
/// [`crate::ClausePlan::compile_with`] and the batch trie's shared-prefix
/// reordering: starting from `bound`, repeatedly pick the atom with the
/// smallest `cost(index, atom, bound)` — first wins ties — record its
/// access path, then mark its variables bound. `bound` is left holding
/// every scheduled atom's variables. Access paths are computed once per
/// *chosen* literal (a cost closure that needs them for losing candidates,
/// e.g. for an override lookup, computes its own).
pub fn greedy_order(
    atoms: &[&Atom],
    bound: &mut BTreeSet<String>,
    mut cost: impl FnMut(usize, &Atom, &BTreeSet<&str>) -> f64,
) -> Vec<OrderedLiteral> {
    let mut remaining: Vec<usize> = (0..atoms.len()).collect();
    let mut ordered = Vec::with_capacity(atoms.len());
    while !remaining.is_empty() {
        let borrowed: BTreeSet<&str> = bound.iter().map(String::as_str).collect();
        let mut best: Option<(usize, f64)> = None;
        for (slot, &idx) in remaining.iter().enumerate() {
            let estimate = cost(idx, atoms[idx], &borrowed);
            if best.is_none_or(|(_, b)| estimate < b) {
                best = Some((slot, estimate));
            }
        }
        let (slot, estimated_rows) = best.expect("remaining is non-empty");
        let index = remaining.remove(slot);
        let positions = bound_positions(atoms[index], &borrowed);
        drop(borrowed);
        bound.extend(
            atoms[index]
                .terms
                .iter()
                .filter_map(Term::var_name)
                .map(str::to_string),
        );
        ordered.push(OrderedLiteral {
            index,
            bound_positions: positions,
            estimated_rows,
        });
    }
    ordered
}

/// The classic uniform-selectivity model: the smallest expected
/// posting-list size (`cardinality / distinct`) over the bound positions,
/// or the full relation cardinality when no position is bound.
#[derive(Debug, Clone, Copy, Default)]
pub struct UniformCost;

impl CostModel for UniformCost {
    fn estimate_atom(
        &self,
        atom: &Atom,
        bound: &BTreeSet<&str>,
        stats: &DatabaseStatistics,
    ) -> f64 {
        let Some(rel) = stats.relation(&atom.relation) else {
            return 0.0;
        };
        let mut best: Option<f64> = None;
        for (pos, term) in atom.terms.iter().enumerate() {
            let is_bound = match term {
                Term::Const(_) => true,
                Term::Var(name) => bound.contains(name.as_str()),
            };
            if is_bound {
                let expected = rel.expected_matches(pos);
                if best.is_none_or(|b| expected < b) {
                    best = Some(expected);
                }
            }
        }
        best.unwrap_or(rel.cardinality as f64)
    }

    fn name(&self) -> &'static str {
        "uniform"
    }
}

/// The skew-aware model: constants are priced from the most-common-value
/// list (exact counts for hubs, histogram average otherwise) and bound
/// variables from the frequency-weighted expected fan-out — a variable
/// bound by a join (or by an example drawn from the data) hits a hub value
/// exactly as often as the hub occurs in the data, which the equi-depth
/// histogram approximation of `Σ count² / n` captures and the uniform
/// average hides.
#[derive(Debug, Clone, Copy, Default)]
pub struct HistogramCost;

impl CostModel for HistogramCost {
    fn estimate_atom(
        &self,
        atom: &Atom,
        bound: &BTreeSet<&str>,
        stats: &DatabaseStatistics,
    ) -> f64 {
        let Some(rel) = stats.relation(&atom.relation) else {
            return 0.0;
        };
        let mut best: Option<f64> = None;
        for (pos, term) in atom.terms.iter().enumerate() {
            let expected = match term {
                Term::Const(value) => match rel.column(pos) {
                    Some(col) => match col.mcv_count(value) {
                        // A hub constant costs its exact posting size.
                        Some(count) => count as f64,
                        // Known-absent or average non-MCV value.
                        None => col.non_mcv_expected(),
                    },
                    None => rel.expected_matches(pos),
                },
                Term::Var(name) if bound.contains(name.as_str()) => match rel.column(pos) {
                    Some(col) => col.expected_matches_weighted(rel.cardinality),
                    None => rel.expected_matches(pos),
                },
                Term::Var(_) => continue,
            };
            if best.is_none_or(|b| expected < b) {
                best = Some(expected);
            }
        }
        best.unwrap_or(rel.cardinality as f64)
    }

    fn name(&self) -> &'static str {
        "histogram"
    }
}

/// Observed-row overrides for one clause, fed back by the executor:
/// literal index → (the bound positions it executed under, average
/// candidate rows actually produced). During recompilation an override
/// beats any model estimate, but only while the literal's candidate access
/// path matches the one the observation was made under — with a different
/// bound set the observation does not transfer.
#[derive(Debug, Clone, Default)]
pub struct CostOverrides {
    by_literal: HashMap<usize, (Vec<usize>, f64)>,
}

impl CostOverrides {
    /// Records the observed average candidate rows for a literal under the
    /// given access path.
    pub fn insert(&mut self, literal: usize, positions: Vec<usize>, rows: f64) {
        self.by_literal.insert(literal, (positions, rows));
    }

    /// The observed rows for `literal` if the candidate access path matches
    /// the observation's.
    pub fn lookup(&self, literal: usize, positions: &[usize]) -> Option<f64> {
        self.by_literal
            .get(&literal)
            .filter(|(observed, _)| observed == positions)
            .map(|(_, rows)| *rows)
    }

    /// Whether no overrides are recorded.
    pub fn is_empty(&self) -> bool {
        self.by_literal.is_empty()
    }
}

/// Shared unit-test fixture (also used by the plan tests): a skewed
/// relation named `rel0` hiding a hub value behind 200 singleton keys
/// (uniform estimate ~2.5 rows/probe, frequency-weighted ~180) and a
/// genuinely uniform relation `rel1` (10 rows per key).
#[cfg(test)]
pub(crate) fn skewed_hub_db(rel0: &str, rel1: &str) -> castor_relational::DatabaseInstance {
    use castor_relational::{DatabaseInstance, RelationSymbol, Schema, Tuple};
    let mut schema = Schema::new("s");
    schema
        .add_relation(RelationSymbol::new(rel0, &["a", "b"]))
        .add_relation(RelationSymbol::new(rel1, &["a", "b"]));
    let mut db = DatabaseInstance::empty(&schema);
    for i in 0..300 {
        db.insert(rel0, Tuple::from_strs(&["hub", &format!("v{i}")]))
            .unwrap();
    }
    for i in 0..200 {
        db.insert(
            rel0,
            Tuple::from_strs(&[&format!("k{i}"), &format!("w{i}")]),
        )
        .unwrap();
    }
    for i in 0..500 {
        db.insert(
            rel1,
            Tuple::from_strs(&[&format!("f{}", i % 50), &format!("x{i}")]),
        )
        .unwrap();
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skewed_stats() -> DatabaseStatistics {
        DatabaseStatistics::gather(&skewed_hub_db("link", "flat"))
    }

    #[test]
    fn histogram_prices_skew_that_uniform_hides() {
        let stats = skewed_stats();
        let atom = Atom::vars("link", &["x", "y"]);
        let bound: BTreeSet<&str> = ["x"].into_iter().collect();
        // Uniform: 500 rows / 201 distinct ≈ 2.5 — skew invisible.
        let uniform = UniformCost.estimate_atom(&atom, &bound, &stats);
        assert!(uniform < 3.0, "uniform estimate {uniform}");
        // Histogram: frequency-weighted ≈ (300² + 200) / 500 ≈ 180.
        let hist = HistogramCost.estimate_atom(&atom, &bound, &stats);
        assert!(hist > 100.0, "histogram estimate {hist} should see the hub");
        // On the flat relation the two models agree (10 rows per key).
        let flat = Atom::vars("flat", &["x", "y"]);
        let u = UniformCost.estimate_atom(&flat, &bound, &stats);
        let h = HistogramCost.estimate_atom(&flat, &bound, &stats);
        assert!((u - 10.0).abs() < 1e-9);
        assert!((h - 10.0).abs() < 1.0, "flat histogram estimate {h}");
    }

    #[test]
    fn constants_use_exact_mcv_counts() {
        let stats = skewed_stats();
        let bound = BTreeSet::new();
        let hub = Atom::new("link", vec![Term::constant("hub"), Term::var("y")]);
        assert!((HistogramCost.estimate_atom(&hub, &bound, &stats) - 300.0).abs() < 1e-9);
        let rare = Atom::new("link", vec![Term::constant("k5"), Term::var("y")]);
        let est = HistogramCost.estimate_atom(&rare, &bound, &stats);
        assert!(est < 2.0, "non-MCV constant estimate {est}");
        // Uniform prices both identically.
        let u = UniformCost.estimate_atom(&hub, &bound, &stats);
        assert!((u - UniformCost.estimate_atom(&rare, &bound, &stats)).abs() < 1e-9);
    }

    #[test]
    fn both_models_zero_unknown_relations_and_scan_unbound() {
        let stats = skewed_stats();
        let bound = BTreeSet::new();
        let missing = Atom::vars("missing", &["x"]);
        assert_eq!(UniformCost.estimate_atom(&missing, &bound, &stats), 0.0);
        assert_eq!(HistogramCost.estimate_atom(&missing, &bound, &stats), 0.0);
        let unbound = Atom::vars("link", &["x", "y"]);
        assert_eq!(UniformCost.estimate_atom(&unbound, &bound, &stats), 500.0);
        assert_eq!(HistogramCost.estimate_atom(&unbound, &bound, &stats), 500.0);
    }

    #[test]
    fn overrides_apply_only_on_matching_access_paths() {
        let mut overrides = CostOverrides::default();
        assert!(overrides.is_empty());
        overrides.insert(2, vec![0], 123.0);
        assert_eq!(overrides.lookup(2, &[0]), Some(123.0));
        assert_eq!(overrides.lookup(2, &[0, 1]), None);
        assert_eq!(overrides.lookup(1, &[0]), None);
        assert!(!overrides.is_empty());
    }
}
