//! Database-wide selectivity statistics and engine counters.
//!
//! The statistics are read off the per-attribute hash indexes the database
//! already maintains and drive clause-plan compilation: join orders are
//! chosen from estimated access-path costs instead of being re-derived at
//! every backtracking node. Each relation's entry is stamped with the
//! *mutation epoch* it was read at, so after a mutation batch
//! [`DatabaseStatistics::refresh`] re-reads only the relations whose epoch
//! advanced — incremental maintenance instead of a full re-gather — and
//! compiled plans can compare the epochs they were costed against with the
//! current ones to detect staleness. The counters mirror what the paper's
//! implementation reports for its ablations: number of coverage tests,
//! cache behavior, and — new in this reproduction — how many tests ended by
//! budget exhaustion rather than a definite verdict, plus plan/cache
//! invalidation traffic caused by mutations.

use castor_relational::{DatabaseInstance, RelationStatistics};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Per-relation selectivity statistics for a whole database instance, each
/// entry stamped with the relation's mutation epoch at read time.
#[derive(Debug, Clone, Default)]
pub struct DatabaseStatistics {
    relations: HashMap<String, (RelationStatistics, u64)>,
}

impl DatabaseStatistics {
    /// Snapshots statistics for every relation of `db`.
    pub fn gather(db: &DatabaseInstance) -> Self {
        DatabaseStatistics {
            relations: db
                .relations()
                .map(|r| (r.name().to_string(), (r.statistics(), r.epoch())))
                .collect(),
        }
    }

    /// Re-reads statistics for exactly the relations whose mutation epoch
    /// advanced since this snapshot was taken, returning their names. This
    /// is the incremental-maintenance entry point a serving layer calls
    /// after applying a mutation batch.
    pub fn refresh(&mut self, db: &DatabaseInstance) -> Vec<String> {
        let mut changed = Vec::new();
        for r in db.relations() {
            let epoch = r.epoch();
            match self.relations.get(r.name()) {
                Some((_, stamped)) if *stamped == epoch => {}
                _ => {
                    self.relations
                        .insert(r.name().to_string(), (r.statistics(), epoch));
                    changed.push(r.name().to_string());
                }
            }
        }
        changed
    }

    /// Statistics for one relation, if it exists.
    pub fn relation(&self, name: &str) -> Option<&RelationStatistics> {
        self.relations.get(name).map(|(stats, _)| stats)
    }

    /// The mutation epoch one relation's statistics were read at.
    pub fn epoch_of(&self, name: &str) -> Option<u64> {
        self.relations.get(name).map(|(_, epoch)| *epoch)
    }

    /// Number of relations covered by the snapshot.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// Whether the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }
}

/// Monotonic engine counters, updated atomically from every worker thread.
#[derive(Debug, Default)]
pub struct EngineStats {
    /// Coverage tests actually evaluated (cache misses included, hits not).
    pub coverage_tests: AtomicUsize,
    /// Tests answered from the memoized coverage cache.
    pub cache_hits: AtomicUsize,
    /// Tests that had to be evaluated and were then cached.
    pub cache_misses: AtomicUsize,
    /// Cache hits whose verdict was proven by a *different* schema variant
    /// sharing the cache arena (a subset of `cache_hits` plus the covered
    /// subsets served by the generality order).
    pub cross_variant_hits: AtomicUsize,
    /// Clause keys translated through a variant lens before a cache probe
    /// or insert (the per-variant boundary cost of cross-variant reuse).
    pub cross_variant_translations: AtomicUsize,
    /// Tests skipped through the generality order (a generalization covers
    /// everything its parent covered).
    pub generality_skips: AtomicUsize,
    /// Tests whose node budget ran out before a definite verdict.
    pub budget_exhausted: AtomicUsize,
    /// Clause plans compiled (one per distinct canonical clause).
    pub plans_compiled: AtomicUsize,
    /// Plan lookups answered from the plan cache.
    pub plan_cache_hits: AtomicUsize,
    /// Cached plans discarded because a relation they were costed against
    /// mutated (the epoch check on plan fetch failed); each is followed by
    /// a recompilation against fresh statistics.
    pub plans_invalidated: AtomicUsize,
    /// Cached plans discarded by *feedback re-planning*: their estimated
    /// candidate rows diverged from the observed rows past the configured
    /// threshold, and they were recompiled with the observed numbers.
    pub plans_recosted: AtomicUsize,
    /// Cached-coverage clauses dropped because they reference a mutated
    /// relation.
    pub cache_clauses_invalidated: AtomicUsize,
    /// Mutation batches applied to the engine's live database.
    pub mutation_batches: AtomicUsize,
    /// Batched evaluations executed through a shared-prefix trie.
    pub batches: AtomicUsize,
    /// Candidate clauses submitted through the batch API.
    pub batch_clauses: AtomicUsize,
    /// Index probes at shared trie nodes that fed more than one candidate
    /// clause: for a probe serving `k` live candidates, `k - 1` per-clause
    /// probes were saved.
    pub batch_prefix_hits: AtomicUsize,
    /// Per-candidate suffix evaluations forked off a materialized shared
    /// binding (descents beyond the first live child of a trie node).
    pub batch_suffix_forks: AtomicUsize,
    /// Shared-prefix tries compiled (batch-plan cache misses).
    pub batch_plans_compiled: AtomicUsize,
    /// Batch evaluations served a cached trie from a previous round.
    pub batch_plan_cache_hits: AtomicUsize,
    /// Cached tries discarded because a relation they were costed against
    /// mutated (the epoch check on fetch failed).
    pub batch_plans_invalidated: AtomicUsize,
}

impl EngineStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        EngineStats::default()
    }

    /// Atomically increments a counter (shared with the subsumption-based
    /// coverage engine in `castor-core`).
    pub fn bump(counter: &AtomicUsize) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Atomically adds `n` to a counter.
    pub fn add(counter: &AtomicUsize, n: usize) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// A consistent-enough snapshot of every counter.
    pub fn snapshot(&self) -> EngineReport {
        EngineReport {
            coverage_tests: self.coverage_tests.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            cross_variant_hits: self.cross_variant_hits.load(Ordering::Relaxed),
            cross_variant_translations: self.cross_variant_translations.load(Ordering::Relaxed),
            generality_skips: self.generality_skips.load(Ordering::Relaxed),
            budget_exhausted: self.budget_exhausted.load(Ordering::Relaxed),
            // Owned by the coverage cache, not these counters; the runtime
            // patches the live number into its reports.
            exhaustions_evicted: 0,
            plans_compiled: self.plans_compiled.load(Ordering::Relaxed),
            plan_cache_hits: self.plan_cache_hits.load(Ordering::Relaxed),
            plans_invalidated: self.plans_invalidated.load(Ordering::Relaxed),
            plans_recosted: self.plans_recosted.load(Ordering::Relaxed),
            cache_clauses_invalidated: self.cache_clauses_invalidated.load(Ordering::Relaxed),
            mutation_batches: self.mutation_batches.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batch_clauses: self.batch_clauses.load(Ordering::Relaxed),
            batch_prefix_hits: self.batch_prefix_hits.load(Ordering::Relaxed),
            batch_suffix_forks: self.batch_suffix_forks.load(Ordering::Relaxed),
            batch_plans_compiled: self.batch_plans_compiled.load(Ordering::Relaxed),
            batch_plan_cache_hits: self.batch_plan_cache_hits.load(Ordering::Relaxed),
            batch_plans_invalidated: self.batch_plans_invalidated.load(Ordering::Relaxed),
        }
    }
}

/// A plain-data snapshot of [`EngineStats`], reported by the experiment
/// harnesses alongside timing numbers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineReport {
    /// Coverage tests actually evaluated.
    pub coverage_tests: usize,
    /// Tests answered from the coverage cache.
    pub cache_hits: usize,
    /// Tests evaluated and cached.
    pub cache_misses: usize,
    /// Cache serves whose verdict was proven by a different schema variant
    /// sharing the cache arena.
    pub cross_variant_hits: usize,
    /// Clause keys translated through a variant lens at the cache boundary.
    pub cross_variant_translations: usize,
    /// Tests skipped through the generality order.
    pub generality_skips: usize,
    /// Tests that ended by budget exhaustion (approximate "not covered").
    pub budget_exhausted: usize,
    /// Cached exhaustion entries dropped by the budget-tier eviction policy
    /// (three consecutive failed serves to larger budgets).
    pub exhaustions_evicted: usize,
    /// Distinct clause plans compiled.
    pub plans_compiled: usize,
    /// Plan lookups served from cache.
    pub plan_cache_hits: usize,
    /// Cached plans discarded by the epoch check after a mutation.
    pub plans_invalidated: usize,
    /// Cached plans discarded by feedback re-planning (estimates diverged
    /// from observed rows) and recompiled with observed numbers.
    pub plans_recosted: usize,
    /// Cached-coverage clauses dropped because a referenced relation mutated.
    pub cache_clauses_invalidated: usize,
    /// Mutation batches applied to the live database.
    pub mutation_batches: usize,
    /// Batched (shared-prefix trie) evaluations executed.
    pub batches: usize,
    /// Candidate clauses submitted through the batch API.
    pub batch_clauses: usize,
    /// Per-clause index probes saved by shared trie-prefix probes.
    pub batch_prefix_hits: usize,
    /// Per-candidate suffix forks off materialized shared bindings.
    pub batch_suffix_forks: usize,
    /// Shared-prefix tries compiled (batch-plan cache misses).
    pub batch_plans_compiled: usize,
    /// Batch evaluations served a cached trie from a previous round.
    pub batch_plan_cache_hits: usize,
    /// Cached tries discarded by the epoch check after a mutation.
    pub batch_plans_invalidated: usize,
}

impl EngineReport {
    /// Element-wise sum of two reports (used to aggregate the subsumption
    /// coverage engine and the ARMG evaluation engine of one learner run).
    pub fn combined(&self, other: &EngineReport) -> EngineReport {
        EngineReport {
            coverage_tests: self.coverage_tests + other.coverage_tests,
            cache_hits: self.cache_hits + other.cache_hits,
            cache_misses: self.cache_misses + other.cache_misses,
            cross_variant_hits: self.cross_variant_hits + other.cross_variant_hits,
            cross_variant_translations: self.cross_variant_translations
                + other.cross_variant_translations,
            generality_skips: self.generality_skips + other.generality_skips,
            budget_exhausted: self.budget_exhausted + other.budget_exhausted,
            exhaustions_evicted: self.exhaustions_evicted + other.exhaustions_evicted,
            plans_compiled: self.plans_compiled + other.plans_compiled,
            plan_cache_hits: self.plan_cache_hits + other.plan_cache_hits,
            plans_invalidated: self.plans_invalidated + other.plans_invalidated,
            plans_recosted: self.plans_recosted + other.plans_recosted,
            cache_clauses_invalidated: self.cache_clauses_invalidated
                + other.cache_clauses_invalidated,
            mutation_batches: self.mutation_batches + other.mutation_batches,
            batches: self.batches + other.batches,
            batch_clauses: self.batch_clauses + other.batch_clauses,
            batch_prefix_hits: self.batch_prefix_hits + other.batch_prefix_hits,
            batch_suffix_forks: self.batch_suffix_forks + other.batch_suffix_forks,
            batch_plans_compiled: self.batch_plans_compiled + other.batch_plans_compiled,
            batch_plan_cache_hits: self.batch_plan_cache_hits + other.batch_plan_cache_hits,
            batch_plans_invalidated: self.batch_plans_invalidated + other.batch_plans_invalidated,
        }
    }

    /// Element-wise difference against an earlier snapshot of the *same*
    /// counters (saturating, since relaxed atomics may be read mid-update).
    /// Serving sessions use this to attribute shared-engine activity to the
    /// session whose job produced it.
    pub fn delta_since(&self, baseline: &EngineReport) -> EngineReport {
        EngineReport {
            coverage_tests: self.coverage_tests.saturating_sub(baseline.coverage_tests),
            cache_hits: self.cache_hits.saturating_sub(baseline.cache_hits),
            cache_misses: self.cache_misses.saturating_sub(baseline.cache_misses),
            cross_variant_hits: self
                .cross_variant_hits
                .saturating_sub(baseline.cross_variant_hits),
            cross_variant_translations: self
                .cross_variant_translations
                .saturating_sub(baseline.cross_variant_translations),
            generality_skips: self
                .generality_skips
                .saturating_sub(baseline.generality_skips),
            budget_exhausted: self
                .budget_exhausted
                .saturating_sub(baseline.budget_exhausted),
            exhaustions_evicted: self
                .exhaustions_evicted
                .saturating_sub(baseline.exhaustions_evicted),
            plans_compiled: self.plans_compiled.saturating_sub(baseline.plans_compiled),
            plan_cache_hits: self
                .plan_cache_hits
                .saturating_sub(baseline.plan_cache_hits),
            plans_invalidated: self
                .plans_invalidated
                .saturating_sub(baseline.plans_invalidated),
            plans_recosted: self.plans_recosted.saturating_sub(baseline.plans_recosted),
            cache_clauses_invalidated: self
                .cache_clauses_invalidated
                .saturating_sub(baseline.cache_clauses_invalidated),
            mutation_batches: self
                .mutation_batches
                .saturating_sub(baseline.mutation_batches),
            batches: self.batches.saturating_sub(baseline.batches),
            batch_clauses: self.batch_clauses.saturating_sub(baseline.batch_clauses),
            batch_prefix_hits: self
                .batch_prefix_hits
                .saturating_sub(baseline.batch_prefix_hits),
            batch_suffix_forks: self
                .batch_suffix_forks
                .saturating_sub(baseline.batch_suffix_forks),
            batch_plans_compiled: self
                .batch_plans_compiled
                .saturating_sub(baseline.batch_plans_compiled),
            batch_plan_cache_hits: self
                .batch_plan_cache_hits
                .saturating_sub(baseline.batch_plan_cache_hits),
            batch_plans_invalidated: self
                .batch_plans_invalidated
                .saturating_sub(baseline.batch_plans_invalidated),
        }
    }

    /// Fraction of lookups answered from the cache (0 when nothing ran).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

impl fmt::Display for EngineReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tests={} cache={}/{} ({:.0}% hit) cross-variant={}hits/{}xl \
             generality-skips={} budget-exhausted={} \
             exhaustions-evicted={} \
             plans={} (+{} reused, {} recosted) \
             batches={}/{} clauses (prefix-hits={} suffix-forks={}) \
             batch-plans={} (+{} reused) \
             mutations={} (plans-invalidated={} batch-plans-invalidated={} \
             cache-clauses-invalidated={})",
            self.coverage_tests,
            self.cache_hits,
            self.cache_hits + self.cache_misses,
            100.0 * self.cache_hit_rate(),
            self.cross_variant_hits,
            self.cross_variant_translations,
            self.generality_skips,
            self.budget_exhausted,
            self.exhaustions_evicted,
            self.plans_compiled,
            self.plan_cache_hits,
            self.plans_recosted,
            self.batches,
            self.batch_clauses,
            self.batch_prefix_hits,
            self.batch_suffix_forks,
            self.batch_plans_compiled,
            self.batch_plan_cache_hits,
            self.mutation_batches,
            self.plans_invalidated,
            self.batch_plans_invalidated,
            self.cache_clauses_invalidated,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use castor_relational::{RelationSymbol, Schema, Tuple};

    #[test]
    fn gather_reads_every_relation() {
        let mut schema = Schema::new("s");
        schema
            .add_relation(RelationSymbol::new("a", &["x", "y"]))
            .add_relation(RelationSymbol::new("b", &["z"]));
        let mut db = DatabaseInstance::empty(&schema);
        db.insert("a", Tuple::from_strs(&["1", "2"])).unwrap();
        db.insert("a", Tuple::from_strs(&["1", "3"])).unwrap();
        let stats = DatabaseStatistics::gather(&db);
        assert_eq!(stats.len(), 2);
        let a = stats.relation("a").unwrap();
        assert_eq!(a.cardinality, 2);
        assert_eq!(a.distinct_per_position, vec![1, 2]);
        assert_eq!(stats.relation("b").unwrap().cardinality, 0);
        assert!(stats.relation("missing").is_none());
    }

    #[test]
    fn report_formats_and_computes_hit_rate() {
        let stats = EngineStats::new();
        EngineStats::bump(&stats.cache_hits);
        EngineStats::bump(&stats.cache_hits);
        EngineStats::bump(&stats.cache_misses);
        EngineStats::bump(&stats.coverage_tests);
        let report = stats.snapshot();
        assert!((report.cache_hit_rate() - 2.0 / 3.0).abs() < 1e-9);
        let text = report.to_string();
        assert!(text.contains("tests=1"));
        assert!(text.contains("cache=2/3"));
    }

    #[test]
    fn batch_counters_aggregate_and_render() {
        let stats = EngineStats::new();
        EngineStats::bump(&stats.batches);
        EngineStats::add(&stats.batch_clauses, 6);
        EngineStats::add(&stats.batch_prefix_hits, 10);
        EngineStats::add(&stats.batch_suffix_forks, 4);
        let report = stats.snapshot();
        assert_eq!(report.batches, 1);
        assert_eq!(report.batch_clauses, 6);
        let doubled = report.combined(&report);
        assert_eq!(doubled.batch_prefix_hits, 20);
        assert_eq!(doubled.batch_suffix_forks, 8);
        assert!(report.to_string().contains("batches=1/6 clauses"));
    }

    #[test]
    fn refresh_rereads_only_mutated_relations() {
        let mut schema = Schema::new("s");
        schema
            .add_relation(RelationSymbol::new("a", &["x"]))
            .add_relation(RelationSymbol::new("b", &["y"]));
        let mut db = DatabaseInstance::empty(&schema);
        db.insert("a", Tuple::from_strs(&["1"])).unwrap();
        let mut stats = DatabaseStatistics::gather(&db);
        assert_eq!(stats.epoch_of("a"), Some(1));
        assert_eq!(stats.refresh(&db), Vec::<String>::new());
        db.insert("a", Tuple::from_strs(&["2"])).unwrap();
        db.remove("a", &Tuple::from_strs(&["1"])).unwrap();
        assert_eq!(stats.refresh(&db), vec!["a".to_string()]);
        assert_eq!(stats.relation("a").unwrap().cardinality, 1);
        assert_eq!(stats.epoch_of("a"), Some(3));
        assert_eq!(stats.epoch_of("b"), Some(0));
    }

    #[test]
    fn delta_since_isolates_new_activity() {
        let stats = EngineStats::new();
        EngineStats::add(&stats.coverage_tests, 5);
        let baseline = stats.snapshot();
        EngineStats::add(&stats.coverage_tests, 3);
        EngineStats::bump(&stats.mutation_batches);
        let delta = stats.snapshot().delta_since(&baseline);
        assert_eq!(delta.coverage_tests, 3);
        assert_eq!(delta.mutation_batches, 1);
        assert_eq!(delta.cache_hits, 0);
        assert!(delta.to_string().contains("mutations=1"));
    }
}
