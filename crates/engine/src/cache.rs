//! Memoized coverage results keyed by canonical (variable-renamed) clauses.
//!
//! The covering loop re-scores near-identical candidates constantly: beam
//! search re-evaluates surviving clauses, ARMG produces the same
//! generalization from different parents, and negative reduction tests
//! prefixes that earlier iterations already tested. Clauses that differ
//! only in variable names have identical coverage, so results are cached
//! under a canonical renaming: variables are numbered in first-occurrence
//! order (head first, then body), making any two α-equivalent clauses
//! collide on purpose.
//!
//! The cache also records enough to make the generality order an engine
//! invariant (Section 7.5.4): when a caller declares that clause `C`
//! generalizes clause `P`, every example cached as covered by `P` is
//! covered by `C` without a test.
//!
//! Eviction is LRU over canonical clauses: at capacity the least recently
//! *touched* clause is dropped (reads count as touches), so the hot
//! candidates a covering loop re-scores across iterations survive instead
//! of being wiped by the old clear-at-capacity policy.

use crate::fx::FxHashMap;
use castor_logic::{Clause, CoverageOutcome, Term};
use castor_relational::Tuple;
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};

/// Renames the clause's variables to `_0, _1, ...` in first-occurrence
/// order (head first, then body literals in clause order). α-equivalent
/// clauses map to the same canonical clause; the renaming is a bijection,
/// so equal canonical forms imply isomorphic clauses and therefore equal
/// coverage.
pub fn canonicalize(clause: &Clause) -> Clause {
    let mut names: HashMap<String, String> = HashMap::new();
    let mut rename = |atom: &castor_logic::Atom| castor_logic::Atom {
        relation: atom.relation.clone(),
        terms: atom
            .terms
            .iter()
            .map(|t| match t {
                Term::Var(name) => {
                    let next = names.len();
                    Term::Var(
                        names
                            .entry(name.clone())
                            .or_insert_with(|| format!("_{next}"))
                            .clone(),
                    )
                }
                Term::Const(_) => t.clone(),
            })
            .collect(),
    };
    let head = rename(&clause.head);
    let body = clause.body.iter().map(&mut rename).collect();
    Clause { head, body }
}

/// One cached clause: its per-example outcomes plus the recency stamp the
/// LRU order is kept under.
#[derive(Debug, Default)]
struct CacheSlot {
    outcomes: FxHashMap<Tuple, CoverageOutcome>,
    stamp: u64,
}

/// The lock-guarded cache state: clause slots plus a recency index mapping
/// stamps back to clauses (stamps are unique, so the index is a total LRU
/// order with O(log n) touches and evictions). Keys are `Arc`-shared
/// between the two maps, so a touch on the hot read path moves a pointer —
/// it never deep-clones a clause while holding the lock.
#[derive(Debug, Default)]
struct CacheInner {
    slots: FxHashMap<Arc<Clause>, CacheSlot>,
    recency: BTreeMap<u64, Arc<Clause>>,
    clock: u64,
}

impl CacheInner {
    /// Marks `canonical` as most recently used (no-op when absent).
    fn touch(&mut self, canonical: &Clause) {
        let Some((key, slot)) = self.slots.get_key_value(canonical) else {
            return;
        };
        let key = Arc::clone(key);
        let old_stamp = slot.stamp;
        self.recency.remove(&old_stamp);
        self.clock += 1;
        let stamp = self.clock;
        self.recency.insert(stamp, key);
        if let Some(slot) = self.slots.get_mut(canonical) {
            slot.stamp = stamp;
        }
    }

    /// Evicts least-recently-used clauses until at most `capacity` remain.
    fn evict_to(&mut self, capacity: usize) {
        while self.slots.len() > capacity {
            let Some((_, oldest)) = self.recency.pop_first() else {
                break;
            };
            self.slots.remove(oldest.as_ref());
        }
    }
}

/// A thread-safe memo table from (canonical clause, example) to the cached
/// coverage outcome. Bounded: at capacity the least-recently-used clause is
/// evicted, so candidates that keep being re-scored across covering
/// iterations stay resident while one-shot candidates age out.
#[derive(Debug)]
pub struct CoverageCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
}

impl CoverageCache {
    /// Creates a cache holding at most `capacity` distinct clauses.
    pub fn new(capacity: usize) -> Self {
        CoverageCache {
            inner: Mutex::new(CacheInner::default()),
            capacity: capacity.max(1),
        }
    }

    /// The cached outcome for `(canonical, example)`, if any. A hit counts
    /// as a use in the LRU order.
    pub fn get(&self, canonical: &Clause, example: &Tuple) -> Option<CoverageOutcome> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let outcome = inner
            .slots
            .get(canonical)
            .and_then(|slot| slot.outcomes.get(example))
            .copied();
        if outcome.is_some() {
            inner.touch(canonical);
        }
        outcome
    }

    /// Records an outcome for `(canonical, example)`.
    pub fn insert(&self, canonical: &Clause, example: &Tuple, outcome: CoverageOutcome) {
        self.insert_many(canonical, std::iter::once((example.clone(), outcome)));
    }

    /// Records a batch of outcomes for one clause under a single lock.
    ///
    /// [`CoverageOutcome::Exhausted`] verdicts are *not* memoized: an
    /// exhaustion is a property of the (clause, example, **budget**) triple,
    /// and the budget varies — serving sessions override it per job and
    /// cancellation aborts searches as exhaustions — so caching one would
    /// serve an approximate verdict to a caller with a larger budget.
    pub fn insert_many<I>(&self, canonical: &Clause, outcomes: I)
    where
        I: IntoIterator<Item = (Tuple, CoverageOutcome)>,
    {
        let outcomes = outcomes
            .into_iter()
            .filter(|(_, outcome)| !outcome.is_exhausted());
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        match inner.slots.get_mut(canonical) {
            Some(slot) => slot.outcomes.extend(outcomes),
            None => {
                // The only place a clause key is ever cloned: first insert.
                let mut slot = CacheSlot::default();
                slot.outcomes.extend(outcomes);
                if slot.outcomes.is_empty() {
                    return;
                }
                inner.slots.insert(Arc::new(canonical.clone()), slot);
            }
        }
        inner.touch(canonical);
        // The just-inserted clause holds the freshest stamp, so it can never
        // evict itself.
        inner.evict_to(self.capacity);
    }

    /// Cached outcomes for a whole batch of examples under one lock (and
    /// one hashing of the clause key) — the covering loop re-scores the
    /// same candidate over many examples, so per-example locking dominates
    /// the hit path otherwise.
    pub fn get_batch(
        &self,
        canonical: &Clause,
        examples: &[Tuple],
    ) -> Vec<Option<CoverageOutcome>> {
        self.get_batch_multi(std::slice::from_ref(canonical), examples)
            .pop()
            .expect("one clause in, one row out")
    }

    /// Cached outcomes for a whole batch of clauses × examples under a
    /// single lock — the beam-evaluation entry point: one memo probe per
    /// beam instead of one per candidate.
    pub fn get_batch_multi(
        &self,
        canonicals: &[Clause],
        examples: &[Tuple],
    ) -> Vec<Vec<Option<CoverageOutcome>>> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        canonicals
            .iter()
            .map(|canonical| match inner.slots.get(canonical) {
                None => vec![None; examples.len()],
                Some(slot) => {
                    let row: Vec<Option<CoverageOutcome>> = examples
                        .iter()
                        .map(|e| slot.outcomes.get(e).copied())
                        .collect();
                    if row.iter().any(Option::is_some) {
                        inner.touch(canonical);
                    }
                    row
                }
            })
            .collect()
    }

    /// The examples from `examples` cached as covered by `canonical` —
    /// the generality-order shortcut: callers pass a *parent* clause here
    /// and skip testing these examples on its generalizations.
    pub fn covered_subset(&self, canonical: &Clause, examples: &[Tuple]) -> Vec<Tuple> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let Some(slot) = inner.slots.get(canonical) else {
            return Vec::new();
        };
        let covered: Vec<Tuple> = examples
            .iter()
            .filter(|e| slot.outcomes.get(*e).copied() == Some(CoverageOutcome::Covered))
            .cloned()
            .collect();
        if !covered.is_empty() {
            inner.touch(canonical);
        }
        covered
    }

    /// Drops every cached clause that references one of `relations` (in its
    /// head or body), returning how many clauses were dropped. This is the
    /// mutation-invalidation hook: after a batch changes a relation's
    /// contents, only coverage results of clauses that actually read that
    /// relation are stale — everything else stays resident.
    pub fn invalidate_relations(&self, relations: &std::collections::BTreeSet<String>) -> usize {
        if relations.is_empty() {
            return 0;
        }
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let stale: Vec<Arc<Clause>> = inner
            .slots
            .keys()
            .filter(|clause| {
                relations.contains(&clause.head.relation)
                    || clause
                        .body
                        .iter()
                        .any(|atom| relations.contains(&atom.relation))
            })
            .cloned()
            .collect();
        for key in &stale {
            if let Some(slot) = inner.slots.remove(key.as_ref()) {
                inner.recency.remove(&slot.stamp);
            }
        }
        stale.len()
    }

    /// Drops every cached result (administrative reset).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.slots.clear();
        inner.recency.clear();
    }

    /// Number of distinct clauses currently cached.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .slots
            .len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for CoverageCache {
    fn default() -> Self {
        CoverageCache::new(16_384)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use castor_logic::Atom;

    fn clause(x: &str, y: &str, p: &str) -> Clause {
        Clause::new(
            Atom::vars("collaborated", &[x, y]),
            vec![
                Atom::vars("publication", &[p, x]),
                Atom::vars("publication", &[p, y]),
            ],
        )
    }

    #[test]
    fn alpha_equivalent_clauses_share_a_key() {
        let a = canonicalize(&clause("x", "y", "p"));
        let b = canonicalize(&clause("u", "v", "w"));
        assert_eq!(a, b);
    }

    #[test]
    fn different_structure_keeps_distinct_keys() {
        let a = canonicalize(&clause("x", "y", "p"));
        // Same variable in both head positions is a different clause.
        let b = canonicalize(&clause("x", "x", "p"));
        assert_ne!(a, b);
    }

    #[test]
    fn constants_survive_canonicalization() {
        let c = Clause::new(
            Atom::vars("t", &["x"]),
            vec![Atom::new("r", vec![Term::var("x"), Term::constant("k")])],
        );
        let canon = canonicalize(&c);
        assert_eq!(canon.body[0].terms[1], Term::constant("k"));
    }

    #[test]
    fn cache_roundtrip_and_covered_subset() {
        let cache = CoverageCache::default();
        let key = canonicalize(&clause("x", "y", "p"));
        let e1 = Tuple::from_strs(&["ann", "bob"]);
        let e2 = Tuple::from_strs(&["ann", "carol"]);
        cache.insert(&key, &e1, CoverageOutcome::Covered);
        cache.insert(&key, &e2, CoverageOutcome::NotCovered);
        assert_eq!(cache.get(&key, &e1), Some(CoverageOutcome::Covered));
        assert_eq!(cache.get(&key, &e2), Some(CoverageOutcome::NotCovered));
        assert_eq!(
            cache.covered_subset(&key, &[e1.clone(), e2.clone()]),
            vec![e1]
        );
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn capacity_overflow_evicts_instead_of_growing() {
        let cache = CoverageCache::new(2);
        let e = Tuple::from_strs(&["a", "b"]);
        for i in 0..5 {
            let key = canonicalize(&Clause::new(
                Atom::vars(format!("t{i}"), &["x", "y"]),
                vec![],
            ));
            cache.insert(&key, &e, CoverageOutcome::Covered);
        }
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn lru_eviction_keeps_hot_clauses() {
        let cache = CoverageCache::new(2);
        let e = Tuple::from_strs(&["a", "b"]);
        let key_of = |name: &str| canonicalize(&Clause::new(Atom::vars(name, &["x", "y"]), vec![]));
        let hot = key_of("hot");
        cache.insert(&hot, &e, CoverageOutcome::Covered);
        // Keep touching the hot clause while cold clauses stream through.
        for i in 0..6 {
            cache.insert(
                &key_of(&format!("cold{i}")),
                &e,
                CoverageOutcome::NotCovered,
            );
            assert_eq!(
                cache.get(&hot, &e),
                Some(CoverageOutcome::Covered),
                "hot clause evicted after cold{i}"
            );
        }
        // The most recent cold clause survived; earlier ones were evicted.
        assert_eq!(
            cache.get(&key_of("cold5"), &e),
            Some(CoverageOutcome::NotCovered)
        );
        assert_eq!(cache.get(&key_of("cold0"), &e), None);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn exhausted_verdicts_are_never_memoized() {
        let cache = CoverageCache::default();
        let key = canonicalize(&clause("x", "y", "p"));
        let e1 = Tuple::from_strs(&["ann", "bob"]);
        let e2 = Tuple::from_strs(&["ann", "carol"]);
        cache.insert(&key, &e1, CoverageOutcome::Exhausted);
        // An all-exhausted first insert must not even create the slot.
        assert!(cache.is_empty());
        cache.insert_many(
            &key,
            [
                (e1.clone(), CoverageOutcome::Covered),
                (e2.clone(), CoverageOutcome::Exhausted),
            ],
        );
        assert_eq!(cache.get(&key, &e1), Some(CoverageOutcome::Covered));
        assert_eq!(cache.get(&key, &e2), None);
    }

    #[test]
    fn invalidation_targets_only_clauses_reading_the_relation() {
        let cache = CoverageCache::default();
        let e = Tuple::from_strs(&["ann", "bob"]);
        let pub_clause = canonicalize(&clause("x", "y", "p"));
        let other = canonicalize(&Clause::new(
            Atom::vars("t", &["x"]),
            vec![Atom::vars("unrelated", &["x"])],
        ));
        cache.insert(&pub_clause, &e, CoverageOutcome::Covered);
        cache.insert(&other, &e, CoverageOutcome::Covered);
        let mutated: std::collections::BTreeSet<String> =
            ["publication".to_string()].into_iter().collect();
        assert_eq!(cache.invalidate_relations(&mutated), 1);
        assert_eq!(cache.get(&pub_clause, &e), None);
        assert_eq!(cache.get(&other, &e), Some(CoverageOutcome::Covered));
        // Dropped clauses leave no recency residue: filling to capacity
        // still evicts correctly.
        assert_eq!(cache.invalidate_relations(&mutated), 0);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn batch_reads_touch_the_lru_order() {
        let cache = CoverageCache::new(2);
        let e = Tuple::from_strs(&["a", "b"]);
        let key_of = |name: &str| canonicalize(&Clause::new(Atom::vars(name, &["x", "y"]), vec![]));
        let (a, b) = (key_of("a"), key_of("b"));
        cache.insert(&a, &e, CoverageOutcome::Covered);
        cache.insert(&b, &e, CoverageOutcome::Covered);
        // Touch `a` through the multi-clause read path, then overflow: `b`
        // must be the eviction victim.
        let rows = cache.get_batch_multi(std::slice::from_ref(&a), std::slice::from_ref(&e));
        assert_eq!(rows[0][0], Some(CoverageOutcome::Covered));
        cache.insert(&key_of("c"), &e, CoverageOutcome::Covered);
        assert!(cache.get(&a, &e).is_some());
        assert!(cache.get(&b, &e).is_none());
    }
}
