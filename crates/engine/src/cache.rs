//! Memoized coverage results keyed by canonical (variable-renamed) clauses.
//!
//! The covering loop re-scores near-identical candidates constantly: beam
//! search re-evaluates surviving clauses, ARMG produces the same
//! generalization from different parents, and negative reduction tests
//! prefixes that earlier iterations already tested. Clauses that differ
//! only in variable names have identical coverage, so results are cached
//! under a canonical renaming: variables are numbered in first-occurrence
//! order (head first, then body), making any two α-equivalent clauses
//! collide on purpose.
//!
//! The cache also records enough to make the generality order an engine
//! invariant (Section 7.5.4): when a caller declares that clause `C`
//! generalizes clause `P`, every example cached as covered by `P` is
//! covered by `C` without a test.
//!
//! Eviction is LRU over canonical clauses: at capacity the least recently
//! *touched* clause is dropped (reads count as touches), so the hot
//! candidates a covering loop re-scores across iterations survive instead
//! of being wiped by the old clear-at-capacity policy.
//!
//! [`CoverageOutcome::Exhausted`] verdicts get a *budget-aware tier*: an
//! exhaustion is a property of the (clause, example, **budget**) triple, so
//! it is memoized together with the node budget it was observed under and
//! served only to probes running with an equal-or-smaller budget (a search
//! that ran out of `B` nodes certainly runs out of `B' ≤ B`). Probes with a
//! larger budget treat the entry as a miss and re-evaluate; definite
//! verdicts always beat exhaustions on write-back.
//!
//! Exhaustion entries also *expire*: an entry that loses
//! [`EXHAUSTION_STRIKE_LIMIT`] consecutive serve attempts to larger budgets
//! is dropped (counted in [`CoverageCache::exhaustions_evicted`]). A
//! workload that permanently grows its budget would otherwise leave dead
//! `ExhaustedAt` entries behind until whole-clause LRU eviction; any
//! successful serve or write-back refresh resets the strike count.
//!
//! This module also hosts the [`BatchPlanCache`]: compiled [`BatchPlan`]
//! tries keyed by canonical (head, body-set), re-validated against the
//! statistics' `(relation, epoch)` stamps on every fetch — consecutive beam
//! rounds re-score near-identical sibling groups, and this cache lets them
//! reuse the trie instead of recompiling it per call. Each cached trie
//! carries its own [`TrieExhaustions`] tier: trie-produced exhaustions are
//! not node-comparable with per-clause-plan ones (shared-prefix probes are
//! charged to every live candidate), so they are memoized *per trie* —
//! keyed by (canonical body-set, budget) through the owning entry — under
//! the same budget-narrowing and strike-eviction rules as the clause tier.

use crate::batch::BatchPlan;
use crate::fx::FxHashMap;
use crate::stats::DatabaseStatistics;
use castor_logic::{Atom, Clause, CoverageOutcome, Term};
use castor_relational::Tuple;
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};

/// Renames the clause's variables to `_0, _1, ...` in first-occurrence
/// order (head first, then body literals in clause order). α-equivalent
/// clauses map to the same canonical clause; the renaming is a bijection,
/// so equal canonical forms imply isomorphic clauses and therefore equal
/// coverage.
pub fn canonicalize(clause: &Clause) -> Clause {
    let mut names: HashMap<String, String> = HashMap::new();
    let mut rename = |atom: &castor_logic::Atom| castor_logic::Atom {
        relation: atom.relation.clone(),
        terms: atom
            .terms
            .iter()
            .map(|t| match t {
                Term::Var(name) => {
                    let next = names.len();
                    Term::Var(
                        names
                            .entry(name.clone())
                            .or_insert_with(|| format!("_{next}"))
                            .clone(),
                    )
                }
                Term::Const(_) => t.clone(),
            })
            .collect(),
    };
    let head = rename(&clause.head);
    let body = clause.body.iter().map(&mut rename).collect();
    Clause { head, body }
}

/// Consecutive failed serve attempts (probes with a larger budget) after
/// which an exhaustion entry is dropped — the ROADMAP budget-tier eviction
/// policy. A successful serve or a write-back refresh resets the count.
pub const EXHAUSTION_STRIKE_LIMIT: u8 = 3;

/// One memoized verdict. Definite verdicts are budget-independent;
/// exhaustions remember the node budget they were observed under plus how
/// many consecutive probes they failed to answer (the eviction strikes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CachedVerdict {
    /// The clause covers the example (budget-independent).
    Covered,
    /// The clause does not cover the example (budget-independent).
    NotCovered,
    /// The search exhausted a budget of `budget` nodes; servable to any
    /// probe with an equal-or-smaller budget. `strikes` counts consecutive
    /// failed serves to larger budgets (see [`EXHAUSTION_STRIKE_LIMIT`]).
    ExhaustedAt { budget: usize, strikes: u8 },
}

impl CachedVerdict {
    /// The verdict to store for `outcome`, or `None` when it must not be
    /// memoized (an exhaustion with no comparable budget scope — e.g. a
    /// cancellation-driven abort).
    fn admit(outcome: CoverageOutcome, scope: Option<usize>) -> Option<CachedVerdict> {
        match outcome {
            CoverageOutcome::Covered => Some(CachedVerdict::Covered),
            CoverageOutcome::NotCovered => Some(CachedVerdict::NotCovered),
            CoverageOutcome::Exhausted => {
                scope.map(|budget| CachedVerdict::ExhaustedAt { budget, strikes: 0 })
            }
        }
    }
}

/// A memoized verdict together with the schema variant that proved it.
/// Variant ids are issued by the engine's cache arena; a cache used by a
/// single engine runs entirely at variant 0. Definite verdicts are schema-
/// invariant (the arena keys clauses by their canonical-schema image, and
/// coverage is preserved by the definition mapping δτ), so they are served
/// across variants; exhaustions are artifacts of one variant's plan and
/// node accounting, so they are confined to the variant that observed them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Stored {
    verdict: CachedVerdict,
    source: u16,
}

/// What one cache probe produced: the servable outcome, whether a dead
/// exhaustion entry was struck out, and whether the serve crossed schema
/// variants (a definite verdict proven by a different variant).
struct Served {
    outcome: Option<CoverageOutcome>,
    evicted: bool,
    cross: bool,
}

/// One cached clause: its per-example outcomes plus the recency stamp the
/// LRU order is kept under.
#[derive(Debug, Default)]
struct CacheSlot {
    outcomes: FxHashMap<Tuple, Stored>,
    stamp: u64,
}

impl CacheSlot {
    /// Merges one observed verdict into the slot. Definite verdicts always
    /// win over exhaustions and are never downgraded (the first definite
    /// prover keeps the credit). Of two same-variant exhaustions the larger
    /// observed budget is kept (it answers more probes) and the refresh
    /// resets the eviction strikes; an exhaustion observed by a *different*
    /// variant replaces the entry outright — budgets under different
    /// variants' plans are not comparable, so the latest writer wins.
    fn absorb(&mut self, example: Tuple, verdict: CachedVerdict, source: u16) {
        match self.outcomes.entry(example) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let stored = e.get_mut();
                match (stored.verdict, verdict) {
                    (
                        CachedVerdict::ExhaustedAt { budget: old, .. },
                        CachedVerdict::ExhaustedAt { budget: new, .. },
                    ) => {
                        if stored.source == source {
                            stored.verdict = CachedVerdict::ExhaustedAt {
                                budget: old.max(new),
                                strikes: 0,
                            };
                        } else {
                            *stored = Stored { verdict, source };
                        }
                    }
                    (CachedVerdict::ExhaustedAt { .. }, definite) => {
                        *stored = Stored {
                            verdict: definite,
                            source,
                        };
                    }
                    // A definite verdict is never downgraded.
                    (_, _) => {}
                }
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(Stored { verdict, source });
            }
        }
    }

    /// Serves one example's verdict to a probe from `variant` under its
    /// exhaustion `scope`, applying the budget-tier eviction policy: a
    /// same-variant probe with a larger budget than a cached exhaustion is
    /// a *strike*, and an entry that collects [`EXHAUSTION_STRIKE_LIMIT`]
    /// consecutive strikes is removed on the spot. Probes with no
    /// comparable budget (`scope == None`) neither serve nor strike
    /// exhaustions; neither do probes from a different variant (a foreign
    /// exhaustion is a plain miss — the entry stays for its owner).
    fn serve_tracked(&mut self, example: &Tuple, scope: Option<usize>, variant: u16) -> Served {
        let miss = Served {
            outcome: None,
            evicted: false,
            cross: false,
        };
        let Some(stored) = self.outcomes.get_mut(example) else {
            return miss;
        };
        let cross = stored.source != variant;
        match &mut stored.verdict {
            CachedVerdict::Covered => Served {
                outcome: Some(CoverageOutcome::Covered),
                evicted: false,
                cross,
            },
            CachedVerdict::NotCovered => Served {
                outcome: Some(CoverageOutcome::NotCovered),
                evicted: false,
                cross,
            },
            CachedVerdict::ExhaustedAt { .. } if cross => miss,
            CachedVerdict::ExhaustedAt { budget, strikes } => match scope {
                Some(probe) if probe <= *budget => {
                    *strikes = 0;
                    Served {
                        outcome: Some(CoverageOutcome::Exhausted),
                        evicted: false,
                        cross: false,
                    }
                }
                Some(_) => {
                    *strikes += 1;
                    if *strikes >= EXHAUSTION_STRIKE_LIMIT {
                        self.outcomes.remove(example);
                        Served {
                            outcome: None,
                            evicted: true,
                            cross: false,
                        }
                    } else {
                        miss
                    }
                }
                None => miss,
            },
        }
    }
}

/// The lock-guarded cache state: clause slots plus a recency index mapping
/// stamps back to clauses (stamps are unique, so the index is a total LRU
/// order with O(log n) touches and evictions). Keys are `Arc`-shared
/// between the two maps, so a touch on the hot read path moves a pointer —
/// it never deep-clones a clause while holding the lock.
#[derive(Debug, Default)]
struct CacheInner {
    slots: FxHashMap<Arc<Clause>, CacheSlot>,
    recency: BTreeMap<u64, Arc<Clause>>,
    clock: u64,
}

impl CacheInner {
    /// Marks `canonical` as most recently used (no-op when absent).
    fn touch(&mut self, canonical: &Clause) {
        let Some((key, slot)) = self.slots.get_key_value(canonical) else {
            return;
        };
        let key = Arc::clone(key);
        let old_stamp = slot.stamp;
        self.recency.remove(&old_stamp);
        self.clock += 1;
        let stamp = self.clock;
        self.recency.insert(stamp, key);
        if let Some(slot) = self.slots.get_mut(canonical) {
            slot.stamp = stamp;
        }
    }

    /// Evicts least-recently-used clauses until at most `capacity` remain.
    fn evict_to(&mut self, capacity: usize) {
        while self.slots.len() > capacity {
            let Some((_, oldest)) = self.recency.pop_first() else {
                break;
            };
            self.slots.remove(oldest.as_ref());
        }
    }
}

/// A thread-safe memo table from (canonical clause, example) to the cached
/// coverage outcome. Bounded: at capacity the least-recently-used clause is
/// evicted, so candidates that keep being re-scored across covering
/// iterations stay resident while one-shot candidates age out.
#[derive(Debug)]
pub struct CoverageCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
    /// Exhaustion entries dropped by the budget-tier eviction policy.
    evicted: std::sync::atomic::AtomicUsize,
}

impl CoverageCache {
    /// Creates a cache holding at most `capacity` distinct clauses.
    pub fn new(capacity: usize) -> Self {
        CoverageCache {
            inner: Mutex::new(CacheInner::default()),
            capacity: capacity.max(1),
            evicted: std::sync::atomic::AtomicUsize::new(0),
        }
    }

    /// Exhaustion entries dropped so far because they lost
    /// [`EXHAUSTION_STRIKE_LIMIT`] consecutive serve attempts to
    /// larger-budget probes.
    pub fn exhaustions_evicted(&self) -> usize {
        self.evicted.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Removes `canonical`'s slot entirely when serving emptied it (its
    /// last exhaustion entry was struck out), keeping the recency index in
    /// lock-step; otherwise touches it when `served` answered something.
    fn settle_slot(&self, inner: &mut CacheInner, canonical: &Clause, served: bool) {
        let Some(slot) = inner.slots.get(canonical) else {
            return;
        };
        if slot.outcomes.is_empty() {
            let stamp = slot.stamp;
            inner.slots.remove(canonical);
            inner.recency.remove(&stamp);
        } else if served {
            inner.touch(canonical);
        }
    }

    /// The cached outcome for `(canonical, example)` servable under the
    /// probe's exhaustion `scope` (its node budget, or `None` when
    /// exhaustions are not comparable — see the module docs), if any. A hit
    /// counts as a use in the LRU order; a failed serve of an exhaustion to
    /// a larger budget counts an eviction strike.
    pub fn get(
        &self,
        canonical: &Clause,
        example: &Tuple,
        scope: Option<usize>,
    ) -> Option<CoverageOutcome> {
        self.get_from(canonical, example, scope, 0).0
    }

    /// [`CoverageCache::get`] for a probe from schema variant `variant`:
    /// returns the outcome plus whether the serve crossed variants (a
    /// definite verdict proven by a different variant — the cross-variant
    /// reuse the arena keying exists for). Exhaustions are never served
    /// across variants and foreign probes never strike them.
    pub fn get_from(
        &self,
        canonical: &Clause,
        example: &Tuple,
        scope: Option<usize>,
        variant: u16,
    ) -> (Option<CoverageOutcome>, bool) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let Some(slot) = inner.slots.get_mut(canonical) else {
            return (None, false);
        };
        let served = slot.serve_tracked(example, scope, variant);
        if served.evicted {
            self.evicted
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
        self.settle_slot(&mut inner, canonical, served.outcome.is_some());
        (served.outcome, served.cross && served.outcome.is_some())
    }

    /// Records an outcome for `(canonical, example)` observed under the
    /// exhaustion `scope`.
    pub fn insert(
        &self,
        canonical: &Clause,
        example: &Tuple,
        outcome: CoverageOutcome,
        scope: Option<usize>,
    ) {
        self.insert_many(
            canonical,
            std::iter::once((example.clone(), outcome)),
            scope,
        );
    }

    /// Records a batch of outcomes for one clause under a single lock.
    ///
    /// Definite verdicts are memoized unconditionally.
    /// [`CoverageOutcome::Exhausted`] verdicts are memoized *keyed by the
    /// budget they were observed under* (`scope`) and later served only to
    /// probes with an equal-or-smaller budget; with `scope = None` (no
    /// comparable budget — e.g. a cancellation token is installed, which
    /// aborts searches through the exhaustion path) they are dropped, so
    /// cancellation pollution stays impossible.
    pub fn insert_many<I>(&self, canonical: &Clause, outcomes: I, scope: Option<usize>)
    where
        I: IntoIterator<Item = (Tuple, CoverageOutcome)>,
    {
        self.insert_many_from(canonical, outcomes, scope, 0);
    }

    /// [`CoverageCache::insert_many`] with the writing schema variant
    /// recorded as each verdict's source alongside the stored outcome.
    pub fn insert_many_from<I>(
        &self,
        canonical: &Clause,
        outcomes: I,
        scope: Option<usize>,
        variant: u16,
    ) where
        I: IntoIterator<Item = (Tuple, CoverageOutcome)>,
    {
        let verdicts: Vec<(Tuple, CachedVerdict)> = outcomes
            .into_iter()
            .filter_map(|(example, outcome)| {
                CachedVerdict::admit(outcome, scope).map(|v| (example, v))
            })
            .collect();
        if verdicts.is_empty() {
            return;
        }
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        match inner.slots.get_mut(canonical) {
            Some(slot) => {
                for (example, verdict) in verdicts {
                    slot.absorb(example, verdict, variant);
                }
            }
            None => {
                // The only place a clause key is ever cloned: first insert.
                let mut slot = CacheSlot::default();
                for (example, verdict) in verdicts {
                    slot.absorb(example, verdict, variant);
                }
                inner.slots.insert(Arc::new(canonical.clone()), slot);
            }
        }
        inner.touch(canonical);
        // The just-inserted clause holds the freshest stamp, so it can never
        // evict itself.
        inner.evict_to(self.capacity);
    }

    /// Cached outcomes for a whole batch of examples under one lock (and
    /// one hashing of the clause key) — the covering loop re-scores the
    /// same candidate over many examples, so per-example locking dominates
    /// the hit path otherwise.
    pub fn get_batch(
        &self,
        canonical: &Clause,
        examples: &[Tuple],
        scope: Option<usize>,
    ) -> Vec<Option<CoverageOutcome>> {
        self.get_batch_multi(std::slice::from_ref(canonical), examples, scope)
            .pop()
            .expect("one clause in, one row out")
    }

    /// [`CoverageCache::get_batch`] for a probe from schema variant
    /// `variant`; additionally returns how many serves crossed variants.
    pub fn get_batch_from(
        &self,
        canonical: &Clause,
        examples: &[Tuple],
        scope: Option<usize>,
        variant: u16,
    ) -> (Vec<Option<CoverageOutcome>>, usize) {
        let (mut rows, cross) =
            self.get_batch_multi_from(std::slice::from_ref(canonical), examples, scope, variant);
        (rows.pop().expect("one clause in, one row out"), cross)
    }

    /// Cached outcomes for a whole batch of clauses × examples under a
    /// single lock — the beam-evaluation entry point: one memo probe per
    /// beam instead of one per candidate.
    pub fn get_batch_multi(
        &self,
        canonicals: &[Clause],
        examples: &[Tuple],
        scope: Option<usize>,
    ) -> Vec<Vec<Option<CoverageOutcome>>> {
        self.get_batch_multi_from(canonicals, examples, scope, 0).0
    }

    /// [`CoverageCache::get_batch_multi`] for a probe from schema variant
    /// `variant`; additionally returns how many serves crossed variants.
    pub fn get_batch_multi_from(
        &self,
        canonicals: &[Clause],
        examples: &[Tuple],
        scope: Option<usize>,
        variant: u16,
    ) -> (Vec<Vec<Option<CoverageOutcome>>>, usize) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let mut cross_hits = 0usize;
        let rows = canonicals
            .iter()
            .map(|canonical| match inner.slots.get_mut(canonical) {
                None => vec![None; examples.len()],
                Some(slot) => {
                    let mut evictions = 0usize;
                    let row: Vec<Option<CoverageOutcome>> = examples
                        .iter()
                        .map(|e| {
                            let served = slot.serve_tracked(e, scope, variant);
                            evictions += served.evicted as usize;
                            cross_hits += (served.cross && served.outcome.is_some()) as usize;
                            served.outcome
                        })
                        .collect();
                    if evictions > 0 {
                        self.evicted
                            .fetch_add(evictions, std::sync::atomic::Ordering::Relaxed);
                    }
                    self.settle_slot(&mut inner, canonical, row.iter().any(Option::is_some));
                    row
                }
            })
            .collect();
        (rows, cross_hits)
    }

    /// The examples from `examples` cached as covered by `canonical` —
    /// the generality-order shortcut: callers pass a *parent* clause here
    /// and skip testing these examples on its generalizations.
    pub fn covered_subset(&self, canonical: &Clause, examples: &[Tuple]) -> Vec<Tuple> {
        self.covered_subset_from(canonical, examples, 0).0
    }

    /// [`CoverageCache::covered_subset`] for a probe from schema variant
    /// `variant`; additionally returns how many of the served verdicts were
    /// proven by a different variant. Covered verdicts are definite and
    /// therefore schema-invariant under the arena keying, so the subset
    /// itself is the same for every variant.
    pub fn covered_subset_from(
        &self,
        canonical: &Clause,
        examples: &[Tuple],
        variant: u16,
    ) -> (Vec<Tuple>, usize) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let Some(slot) = inner.slots.get(canonical) else {
            return (Vec::new(), 0);
        };
        let mut cross_hits = 0usize;
        let covered: Vec<Tuple> = examples
            .iter()
            .filter(|e| match slot.outcomes.get(*e) {
                Some(stored) if stored.verdict == CachedVerdict::Covered => {
                    cross_hits += (stored.source != variant) as usize;
                    true
                }
                _ => false,
            })
            .cloned()
            .collect();
        if !covered.is_empty() {
            inner.touch(canonical);
        }
        (covered, cross_hits)
    }

    /// Drops the cached *exhaustion* entries of one clause, keeping its
    /// definite verdicts, and returns how many were dropped. An exhaustion
    /// is budget-monotone only under a fixed plan; when the engine recosts
    /// a clause's plan (feedback re-planning), exhaustions observed under
    /// the discarded order may be beatable by the new one, so they must be
    /// re-evaluated rather than served forever.
    pub fn drop_exhausted(&self, canonical: &Clause) -> usize {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let Some(slot) = inner.slots.get_mut(canonical) else {
            return 0;
        };
        let before = slot.outcomes.len();
        slot.outcomes
            .retain(|_, stored| !matches!(stored.verdict, CachedVerdict::ExhaustedAt { .. }));
        let dropped = before - slot.outcomes.len();
        if slot.outcomes.is_empty() {
            let stamp = slot.stamp;
            inner.slots.remove(canonical);
            inner.recency.remove(&stamp);
        }
        dropped
    }

    /// Drops every cached exhaustion entry across all clauses, returning
    /// how many were dropped — the companion of [`drop_exhausted`] for the
    /// rare plan-table capacity clear, which reverts every recosted join
    /// order at once.
    ///
    /// [`drop_exhausted`]: CoverageCache::drop_exhausted
    pub fn drop_all_exhausted(&self) -> usize {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let mut dropped = 0usize;
        let mut emptied: Vec<(Arc<Clause>, u64)> = Vec::new();
        for (key, slot) in inner.slots.iter_mut() {
            let before = slot.outcomes.len();
            slot.outcomes
                .retain(|_, stored| !matches!(stored.verdict, CachedVerdict::ExhaustedAt { .. }));
            dropped += before - slot.outcomes.len();
            if slot.outcomes.is_empty() {
                emptied.push((Arc::clone(key), slot.stamp));
            }
        }
        for (key, stamp) in emptied {
            inner.slots.remove(key.as_ref());
            inner.recency.remove(&stamp);
        }
        dropped
    }

    /// Drops every cached clause that references one of `relations` (in its
    /// head or body), returning how many clauses were dropped. This is the
    /// mutation-invalidation hook: after a batch changes a relation's
    /// contents, only coverage results of clauses that actually read that
    /// relation are stale — everything else stays resident.
    pub fn invalidate_relations(&self, relations: &std::collections::BTreeSet<String>) -> usize {
        if relations.is_empty() {
            return 0;
        }
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let stale: Vec<Arc<Clause>> = inner
            .slots
            .keys()
            .filter(|clause| {
                relations.contains(&clause.head.relation)
                    || clause
                        .body
                        .iter()
                        .any(|atom| relations.contains(&atom.relation))
            })
            .cloned()
            .collect();
        for key in &stale {
            if let Some(slot) = inner.slots.remove(key.as_ref()) {
                inner.recency.remove(&slot.stamp);
            }
        }
        stale.len()
    }

    /// Drops every cached result (administrative reset).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.slots.clear();
        inner.recency.clear();
    }

    /// Number of distinct clauses currently cached.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .slots
            .len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for CoverageCache {
    fn default() -> Self {
        CoverageCache::new(16_384)
    }
}

/// Sorts a sibling group into the canonical body order shared with the
/// trie cache: the cached plan's *local* candidate slots are indices into
/// the sorted body list, so consecutive beam rounds that re-score the same
/// group (whatever order they submit it in) collide on purpose. Returns,
/// per local slot, the caller identity that body arrived under, plus the
/// sorted body slices.
pub fn canonical_group<'a, T: Copy>(group: &[(T, &'a [Atom])]) -> (Vec<T>, Vec<&'a [Atom]>) {
    let mut entries: Vec<(T, &[Atom])> = group.to_vec();
    entries.sort_by(|a, b| a.1.cmp(b.1));
    let slot_map: Vec<T> = entries.iter().map(|&(tag, _)| tag).collect();
    let bodies: Vec<&[Atom]> = entries.iter().map(|&(_, b)| b).collect();
    (slot_map, bodies)
}

/// The trie-specific exhaustion tier of one cached [`BatchPlan`]: budget-
/// keyed `Exhausted` verdicts produced by *trie* execution. Trie budget
/// accounting charges shared-prefix probes to every live candidate, so
/// these exhaustions are only comparable with re-runs of the same trie —
/// they live on the cache entry for one canonical (head, body-set) instead
/// of in the per-clause coverage cache, and the entry's lifecycle is the
/// invalidation rule: epoch staleness and recost replacement drop the tier
/// together with the trie the verdicts were observed under.
///
/// Verdicts are keyed by (local candidate slot, example) — local slots are
/// indices into the canonical sorted body order, stable across rounds by
/// construction — and follow the clause tier's rules exactly: serve to
/// probes with an equal-or-smaller budget, strike on larger probes, evict
/// after [`EXHAUSTION_STRIKE_LIMIT`] consecutive strikes, and let definite
/// verdicts erase the exhaustion on write-back.
/// Per-slot verdict map: example → (budget observed under, strikes).
type SlotVerdicts = FxHashMap<Tuple, (usize, u8)>;

#[derive(Debug, Default)]
pub struct TrieExhaustions {
    /// local slot → example → (budget observed under, consecutive strikes).
    inner: Mutex<FxHashMap<usize, SlotVerdicts>>,
    /// Strike evictions, shared with the owning [`BatchPlanCache`].
    evicted: Arc<std::sync::atomic::AtomicUsize>,
}

impl TrieExhaustions {
    fn new(evicted: Arc<std::sync::atomic::AtomicUsize>) -> Self {
        TrieExhaustions {
            inner: Mutex::new(FxHashMap::default()),
            evicted,
        }
    }

    /// Serves a cached exhaustion for `(local, example)` under the probe's
    /// exhaustion `scope`. Returns true when the probe may take
    /// [`CoverageOutcome::Exhausted`] without running the trie. Mirrors the
    /// clause tier: an equal-or-smaller probe budget serves (and resets the
    /// strike count), a larger probe strikes (evicting at the limit), and a
    /// `None` scope neither serves nor strikes.
    pub fn probe(&self, local: usize, example: &Tuple, scope: Option<usize>) -> bool {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let Some(slot) = inner.get_mut(&local) else {
            return false;
        };
        let Some((budget, strikes)) = slot.get_mut(example) else {
            return false;
        };
        match scope {
            Some(probe) if probe <= *budget => {
                *strikes = 0;
                true
            }
            Some(_) => {
                *strikes += 1;
                if *strikes >= EXHAUSTION_STRIKE_LIMIT {
                    slot.remove(example);
                    self.evicted
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
                false
            }
            None => false,
        }
    }

    /// Absorbs one trie-produced outcome: exhaustions are memoized under
    /// `budget` (merging keeps the larger budget and resets strikes, like
    /// the clause tier), definite verdicts erase any cached exhaustion for
    /// the pair — the pair is decidable, so serving the stale exhaustion
    /// after the definite verdict ages out of the coverage cache would be
    /// a permanent wrong answer.
    pub fn absorb(&self, local: usize, example: &Tuple, outcome: CoverageOutcome, budget: usize) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if outcome.is_exhausted() {
            let slot = inner.entry(local).or_default();
            match slot.entry(example.clone()) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    let (cached, strikes) = e.get_mut();
                    *cached = (*cached).max(budget);
                    *strikes = 0;
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert((budget, 0));
                }
            }
        } else if let Some(slot) = inner.get_mut(&local) {
            slot.remove(example);
        }
    }

    /// Number of memoized exhaustion pairs.
    pub fn len(&self) -> usize {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.values().map(FxHashMap::len).sum()
    }

    /// Whether the tier holds no exhaustions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Result of one [`BatchPlanCache::fetch`].
#[derive(Debug)]
pub enum BatchFetch {
    /// A current cached trie (epoch stamps verified against the live
    /// statistics), together with the execution feedback recorded for it —
    /// the engine compares the feedback against the trie's node estimates
    /// and recosts the trie when they diverge, exactly like `ClausePlan`s —
    /// and the trie's exhaustion tier.
    Hit(
        Arc<BatchPlan>,
        Arc<crate::plan::PlanFeedback>,
        Arc<TrieExhaustions>,
    ),
    /// A cached trie existed but a relation it was costed against mutated;
    /// the entry has been dropped and must be recompiled.
    Stale,
    /// Nothing cached under this key.
    Miss,
}

/// One cached trie: the sorted canonical bodies it was compiled for (its
/// local slot space), the compiled plan, the execution feedback shared by
/// every batch item that runs it (step index = trie node index), and the
/// budget-keyed exhaustions observed while running it.
#[derive(Debug)]
struct BatchEntry {
    bodies: Vec<Vec<Atom>>,
    plan: Arc<BatchPlan>,
    feedback: Arc<crate::plan::PlanFeedback>,
    exhaustions: Arc<TrieExhaustions>,
}

/// Whether an entry's owned bodies equal a probe's borrowed body slices.
fn bodies_match(owned: &[Vec<Atom>], probe: &[&[Atom]]) -> bool {
    owned.len() == probe.len() && owned.iter().zip(probe).all(|(a, &b)| a.as_slice() == b)
}

/// Cross-round cache of compiled [`BatchPlan`] tries keyed by canonical
/// (head, sorted body-set). Lookups take *borrowed* body slices — the hot
/// path (consecutive beam rounds hitting the cache) never clones an atom;
/// owned keys are built only when a freshly compiled trie is stored.
/// Entries carry the same `(relation, epoch)` stamps as `ClausePlan`s and
/// are re-validated on every fetch, so a mutation of any relation a trie
/// reads invalidates it lazily — stale-trie reuse is impossible by
/// construction. Bounded by clearing at capacity, like the per-clause plan
/// table.
#[derive(Debug)]
pub struct BatchPlanCache {
    /// Head → tries compiled for sibling groups under that head.
    inner: Mutex<FxHashMap<Atom, Vec<BatchEntry>>>,
    /// Total tries across all heads (maintained alongside `inner`).
    len: std::sync::atomic::AtomicUsize,
    capacity: usize,
    /// Strike evictions across every entry's exhaustion tier.
    trie_evicted: Arc<std::sync::atomic::AtomicUsize>,
}

impl BatchPlanCache {
    /// Creates a cache holding at most `capacity` tries.
    pub fn new(capacity: usize) -> Self {
        BatchPlanCache {
            inner: Mutex::new(FxHashMap::default()),
            len: std::sync::atomic::AtomicUsize::new(0),
            capacity: capacity.max(1),
            trie_evicted: Arc::new(std::sync::atomic::AtomicUsize::new(0)),
        }
    }

    /// Exhaustion entries dropped from trie tiers by the strike policy
    /// (folded into [`EngineReport::exhaustions_evicted`]).
    ///
    /// [`EngineReport::exhaustions_evicted`]: crate::EngineReport
    pub fn trie_exhaustions_evicted(&self) -> usize {
        self.trie_evicted.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Looks up the trie compiled for `(head, bodies)` (bodies in the
    /// canonical sorted order from [`canonical_group`]), re-validating its
    /// epoch stamps against `stats`. Stale entries are removed on the spot.
    pub fn fetch(&self, head: &Atom, bodies: &[&[Atom]], stats: &DatabaseStatistics) -> BatchFetch {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let Some(bucket) = inner.get_mut(head) else {
            return BatchFetch::Miss;
        };
        let Some(pos) = bucket
            .iter()
            .position(|entry| bodies_match(&entry.bodies, bodies))
        else {
            return BatchFetch::Miss;
        };
        if bucket[pos].plan.is_current(stats) {
            return BatchFetch::Hit(
                Arc::clone(&bucket[pos].plan),
                Arc::clone(&bucket[pos].feedback),
                Arc::clone(&bucket[pos].exhaustions),
            );
        }
        bucket.swap_remove(pos);
        if bucket.is_empty() {
            inner.remove(head);
        }
        self.len.fetch_sub(1, std::sync::atomic::Ordering::Relaxed);
        BatchFetch::Stale
    }

    /// Stores a freshly compiled trie for `(head, bodies)`; this is the
    /// only place the key is deep-cloned (miss/stale path). Replacing an
    /// existing entry never evicts; only a genuinely new entry at capacity
    /// clears the table. Returns the fresh feedback handle created for the
    /// stored plan plus the entry's (fresh) exhaustion tier — replacing a
    /// plan resets both: the observations and the exhaustions belonged to
    /// the discarded node order.
    pub fn store(
        &self,
        head: &Atom,
        bodies: &[&[Atom]],
        plan: Arc<BatchPlan>,
    ) -> (Arc<crate::plan::PlanFeedback>, Arc<TrieExhaustions>) {
        let feedback = Arc::new(crate::plan::PlanFeedback::new(plan.node_count()));
        let exhaustions = Arc::new(TrieExhaustions::new(Arc::clone(&self.trie_evicted)));
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(bucket) = inner.get_mut(head) {
            if let Some(existing) = bucket.iter_mut().find(|e| bodies_match(&e.bodies, bodies)) {
                existing.plan = plan;
                existing.feedback = Arc::clone(&feedback);
                existing.exhaustions = Arc::clone(&exhaustions);
                return (feedback, exhaustions);
            }
        }
        if self.len.load(std::sync::atomic::Ordering::Relaxed) >= self.capacity {
            inner.clear();
            self.len.store(0, std::sync::atomic::Ordering::Relaxed);
        }
        inner.entry(head.clone()).or_default().push(BatchEntry {
            bodies: bodies.iter().map(|&b| b.to_vec()).collect(),
            plan,
            feedback: Arc::clone(&feedback),
            exhaustions: Arc::clone(&exhaustions),
        });
        self.len.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        (feedback, exhaustions)
    }

    /// Number of cached tries.
    pub fn len(&self) -> usize {
        self.len.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached trie (administrative reset; routine invalidation
    /// is epoch-driven and lazy).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.clear();
        self.len.store(0, std::sync::atomic::Ordering::Relaxed);
    }
}

impl Default for BatchPlanCache {
    fn default() -> Self {
        BatchPlanCache::new(4_096)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use castor_logic::Atom;

    fn clause(x: &str, y: &str, p: &str) -> Clause {
        Clause::new(
            Atom::vars("collaborated", &[x, y]),
            vec![
                Atom::vars("publication", &[p, x]),
                Atom::vars("publication", &[p, y]),
            ],
        )
    }

    #[test]
    fn alpha_equivalent_clauses_share_a_key() {
        let a = canonicalize(&clause("x", "y", "p"));
        let b = canonicalize(&clause("u", "v", "w"));
        assert_eq!(a, b);
    }

    #[test]
    fn different_structure_keeps_distinct_keys() {
        let a = canonicalize(&clause("x", "y", "p"));
        // Same variable in both head positions is a different clause.
        let b = canonicalize(&clause("x", "x", "p"));
        assert_ne!(a, b);
    }

    #[test]
    fn constants_survive_canonicalization() {
        let c = Clause::new(
            Atom::vars("t", &["x"]),
            vec![Atom::new("r", vec![Term::var("x"), Term::constant("k")])],
        );
        let canon = canonicalize(&c);
        assert_eq!(canon.body[0].terms[1], Term::constant("k"));
    }

    #[test]
    fn cache_roundtrip_and_covered_subset() {
        let cache = CoverageCache::default();
        let key = canonicalize(&clause("x", "y", "p"));
        let e1 = Tuple::from_strs(&["ann", "bob"]);
        let e2 = Tuple::from_strs(&["ann", "carol"]);
        cache.insert(&key, &e1, CoverageOutcome::Covered, None);
        cache.insert(&key, &e2, CoverageOutcome::NotCovered, None);
        assert_eq!(cache.get(&key, &e1, None), Some(CoverageOutcome::Covered));
        assert_eq!(
            cache.get(&key, &e2, None),
            Some(CoverageOutcome::NotCovered)
        );
        assert_eq!(
            cache.covered_subset(&key, &[e1.clone(), e2.clone()]),
            vec![e1]
        );
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn capacity_overflow_evicts_instead_of_growing() {
        let cache = CoverageCache::new(2);
        let e = Tuple::from_strs(&["a", "b"]);
        for i in 0..5 {
            let key = canonicalize(&Clause::new(
                Atom::vars(format!("t{i}"), &["x", "y"]),
                vec![],
            ));
            cache.insert(&key, &e, CoverageOutcome::Covered, None);
        }
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn lru_eviction_keeps_hot_clauses() {
        let cache = CoverageCache::new(2);
        let e = Tuple::from_strs(&["a", "b"]);
        let key_of = |name: &str| canonicalize(&Clause::new(Atom::vars(name, &["x", "y"]), vec![]));
        let hot = key_of("hot");
        cache.insert(&hot, &e, CoverageOutcome::Covered, None);
        // Keep touching the hot clause while cold clauses stream through.
        for i in 0..6 {
            cache.insert(
                &key_of(&format!("cold{i}")),
                &e,
                CoverageOutcome::NotCovered,
                None,
            );
            assert_eq!(
                cache.get(&hot, &e, None),
                Some(CoverageOutcome::Covered),
                "hot clause evicted after cold{i}"
            );
        }
        // The most recent cold clause survived; earlier ones were evicted.
        assert_eq!(
            cache.get(&key_of("cold5"), &e, None),
            Some(CoverageOutcome::NotCovered)
        );
        assert_eq!(cache.get(&key_of("cold0"), &e, None), None);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn exhausted_verdicts_are_never_memoized() {
        let cache = CoverageCache::default();
        let key = canonicalize(&clause("x", "y", "p"));
        let e1 = Tuple::from_strs(&["ann", "bob"]);
        let e2 = Tuple::from_strs(&["ann", "carol"]);
        cache.insert(&key, &e1, CoverageOutcome::Exhausted, None);
        // An all-exhausted first insert must not even create the slot.
        assert!(cache.is_empty());
        cache.insert_many(
            &key,
            [
                (e1.clone(), CoverageOutcome::Covered),
                (e2.clone(), CoverageOutcome::Exhausted),
            ],
            None,
        );
        assert_eq!(cache.get(&key, &e1, None), Some(CoverageOutcome::Covered));
        assert_eq!(cache.get(&key, &e2, None), None);
    }

    #[test]
    fn invalidation_targets_only_clauses_reading_the_relation() {
        let cache = CoverageCache::default();
        let e = Tuple::from_strs(&["ann", "bob"]);
        let pub_clause = canonicalize(&clause("x", "y", "p"));
        let other = canonicalize(&Clause::new(
            Atom::vars("t", &["x"]),
            vec![Atom::vars("unrelated", &["x"])],
        ));
        cache.insert(&pub_clause, &e, CoverageOutcome::Covered, None);
        cache.insert(&other, &e, CoverageOutcome::Covered, None);
        let mutated: std::collections::BTreeSet<String> =
            ["publication".to_string()].into_iter().collect();
        assert_eq!(cache.invalidate_relations(&mutated), 1);
        assert_eq!(cache.get(&pub_clause, &e, None), None);
        assert_eq!(cache.get(&other, &e, None), Some(CoverageOutcome::Covered));
        // Dropped clauses leave no recency residue: filling to capacity
        // still evicts correctly.
        assert_eq!(cache.invalidate_relations(&mutated), 0);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn exhaustions_are_served_to_equal_or_smaller_budgets_only() {
        let cache = CoverageCache::default();
        let key = canonicalize(&clause("x", "y", "p"));
        let e = Tuple::from_strs(&["ann", "bob"]);
        // Observed under a 100-node budget.
        cache.insert(&key, &e, CoverageOutcome::Exhausted, Some(100));
        // Equal and smaller budgets are served the exhaustion...
        assert_eq!(
            cache.get(&key, &e, Some(100)),
            Some(CoverageOutcome::Exhausted)
        );
        assert_eq!(
            cache.get(&key, &e, Some(10)),
            Some(CoverageOutcome::Exhausted)
        );
        // ...a larger budget (or an incomparable probe) re-evaluates.
        assert_eq!(cache.get(&key, &e, Some(101)), None);
        assert_eq!(cache.get(&key, &e, None), None);
        // A batched read honors the same tier.
        let row = cache.get_batch(&key, std::slice::from_ref(&e), Some(50));
        assert_eq!(row[0], Some(CoverageOutcome::Exhausted));
        let row = cache.get_batch(&key, std::slice::from_ref(&e), Some(500));
        assert_eq!(row[0], None);
    }

    #[test]
    fn exhaustion_entries_upgrade_but_never_downgrade() {
        let cache = CoverageCache::default();
        let key = canonicalize(&clause("x", "y", "p"));
        let e = Tuple::from_strs(&["ann", "bob"]);
        cache.insert(&key, &e, CoverageOutcome::Exhausted, Some(10));
        // A later, larger-budget exhaustion widens the servable range.
        cache.insert(&key, &e, CoverageOutcome::Exhausted, Some(100));
        assert_eq!(
            cache.get(&key, &e, Some(50)),
            Some(CoverageOutcome::Exhausted)
        );
        // A definite verdict replaces the exhaustion outright...
        cache.insert(&key, &e, CoverageOutcome::Covered, Some(1_000));
        assert_eq!(cache.get(&key, &e, Some(5)), Some(CoverageOutcome::Covered));
        // ...and is never downgraded back to an exhaustion.
        cache.insert(&key, &e, CoverageOutcome::Exhausted, Some(7));
        assert_eq!(cache.get(&key, &e, Some(7)), Some(CoverageOutcome::Covered));
        assert_eq!(cache.get(&key, &e, None), Some(CoverageOutcome::Covered));
    }

    #[test]
    fn budget_growing_workload_evicts_dead_exhaustions() {
        // Regression for the ROADMAP budget-tier eviction policy: a
        // workload that upgrades its budget forever used to leave dead
        // `ExhaustedAt` entries behind until whole-clause LRU eviction.
        let cache = CoverageCache::default();
        let key = canonicalize(&clause("x", "y", "p"));
        let examples: Vec<Tuple> = (0..4)
            .map(|i| Tuple::from_strs(&[&format!("a{i}"), "b"]))
            .collect();
        for e in &examples {
            cache.insert(&key, e, CoverageOutcome::Exhausted, Some(10));
        }
        assert_eq!(cache.len(), 1);
        // Three rounds of probes under ever-larger budgets (each a failed
        // serve, with no write-back — e.g. the evaluations were cancelled
        // mid-flight): the entries are struck out on the third round.
        for (round, budget) in [20usize, 40, 80].iter().enumerate() {
            for e in &examples {
                assert_eq!(cache.get(&key, e, Some(*budget)), None);
            }
            let expected = if round + 1 >= EXHAUSTION_STRIKE_LIMIT as usize {
                examples.len()
            } else {
                0
            };
            assert_eq!(cache.exhaustions_evicted(), expected, "round {round}");
        }
        // Nothing is left, not even for the budgets the entries answered.
        assert_eq!(cache.get(&key, &examples[0], Some(5)), None);
        assert!(cache.is_empty(), "slot emptied by eviction must be removed");
        // Recency left no residue: the cache still fills and evicts sanely.
        let e = Tuple::from_strs(&["x", "y"]);
        cache.insert(&key, &e, CoverageOutcome::Covered, None);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn successful_serves_reset_eviction_strikes() {
        let cache = CoverageCache::default();
        let key = canonicalize(&clause("x", "y", "p"));
        let e = Tuple::from_strs(&["ann", "bob"]);
        cache.insert(&key, &e, CoverageOutcome::Exhausted, Some(100));
        // Two strikes...
        assert_eq!(cache.get(&key, &e, Some(200)), None);
        assert_eq!(cache.get(&key, &e, Some(300)), None);
        // ...then a successful smaller-budget serve resets the count...
        assert_eq!(
            cache.get(&key, &e, Some(50)),
            Some(CoverageOutcome::Exhausted)
        );
        // ...so two more failed serves still do not evict.
        assert_eq!(cache.get(&key, &e, Some(200)), None);
        assert_eq!(cache.get(&key, &e, Some(200)), None);
        assert_eq!(cache.exhaustions_evicted(), 0);
        assert_eq!(
            cache.get(&key, &e, Some(100)),
            Some(CoverageOutcome::Exhausted)
        );
        // An incomparable probe (scope None) is not a strike either.
        cache.get(&key, &e, None);
        cache.get(&key, &e, Some(200));
        cache.get(&key, &e, Some(200));
        assert_eq!(cache.exhaustions_evicted(), 0);
        // A write-back refresh (budget upgrade) also resets the count.
        cache.insert(&key, &e, CoverageOutcome::Exhausted, Some(150));
        cache.get(&key, &e, Some(200));
        cache.get(&key, &e, Some(200));
        assert_eq!(cache.exhaustions_evicted(), 0);
        assert_eq!(
            cache.get(&key, &e, Some(150)),
            Some(CoverageOutcome::Exhausted)
        );
    }

    #[test]
    fn batched_reads_strike_and_evict_exhaustions_too() {
        let cache = CoverageCache::default();
        let key = canonicalize(&clause("x", "y", "p"));
        let e1 = Tuple::from_strs(&["ann", "bob"]);
        let e2 = Tuple::from_strs(&["ann", "carol"]);
        cache.insert_many(
            &key,
            [
                (e1.clone(), CoverageOutcome::Exhausted),
                (e2.clone(), CoverageOutcome::Covered),
            ],
            Some(10),
        );
        for _ in 0..EXHAUSTION_STRIKE_LIMIT {
            let row = cache.get_batch(&key, &[e1.clone(), e2.clone()], Some(999));
            assert_eq!(row[0], None);
            assert_eq!(row[1], Some(CoverageOutcome::Covered));
        }
        assert_eq!(cache.exhaustions_evicted(), 1);
        // The definite verdict survives; the struck exhaustion is gone even
        // for budgets it used to answer.
        assert_eq!(cache.get(&key, &e1, Some(5)), None);
        assert_eq!(
            cache.get(&key, &e2, Some(5)),
            Some(CoverageOutcome::Covered)
        );
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn drop_exhausted_keeps_definite_verdicts() {
        let cache = CoverageCache::default();
        let key = canonicalize(&clause("x", "y", "p"));
        let e1 = Tuple::from_strs(&["ann", "bob"]);
        let e2 = Tuple::from_strs(&["ann", "carol"]);
        cache.insert(&key, &e1, CoverageOutcome::Exhausted, Some(100));
        cache.insert(&key, &e2, CoverageOutcome::Covered, Some(100));
        assert_eq!(cache.drop_exhausted(&key), 1);
        assert_eq!(cache.get(&key, &e1, Some(50)), None);
        assert_eq!(
            cache.get(&key, &e2, Some(50)),
            Some(CoverageOutcome::Covered)
        );
        // A slot that only held exhaustions disappears entirely (recency
        // entry included: filling to capacity still evicts correctly).
        let lone = canonicalize(&Clause::new(Atom::vars("lone", &["x"]), vec![]));
        cache.insert(&lone, &e1, CoverageOutcome::Exhausted, Some(9));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.drop_exhausted(&lone), 1);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.drop_exhausted(&lone), 0);
    }

    #[test]
    fn drop_all_exhausted_spares_definite_verdicts_everywhere() {
        let cache = CoverageCache::default();
        let e = Tuple::from_strs(&["ann", "bob"]);
        let a = canonicalize(&clause("x", "y", "p"));
        let b = canonicalize(&Clause::new(Atom::vars("t", &["x"]), vec![]));
        cache.insert(&a, &e, CoverageOutcome::Exhausted, Some(10));
        cache.insert(&b, &e, CoverageOutcome::Covered, Some(10));
        cache.insert(
            &b,
            &Tuple::from_strs(&["x", "y"]),
            CoverageOutcome::Exhausted,
            Some(10),
        );
        assert_eq!(cache.drop_all_exhausted(), 2);
        // `a` held only an exhaustion and is gone; `b` keeps its verdict.
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(&b, &e, Some(5)), Some(CoverageOutcome::Covered));
        assert_eq!(cache.drop_all_exhausted(), 0);
    }

    fn trie_fixture() -> (castor_relational::DatabaseInstance, Atom, Vec<Vec<Atom>>) {
        let mut schema = castor_relational::Schema::new("s");
        schema
            .add_relation(castor_relational::RelationSymbol::new("r", &["a", "b"]))
            .add_relation(castor_relational::RelationSymbol::new("s", &["a"]));
        let mut db = castor_relational::DatabaseInstance::empty(&schema);
        db.insert("r", Tuple::from_strs(&["1", "2"])).unwrap();
        db.insert("s", Tuple::from_strs(&["1"])).unwrap();
        let head = Atom::vars("t", &["_0"]);
        let b0 = vec![Atom::vars("r", &["_0", "_1"])];
        let b1 = vec![Atom::vars("r", &["_0", "_1"]), Atom::vars("s", &["_1"])];
        (db, head, vec![b0, b1])
    }

    #[test]
    fn canonical_group_sorts_bodies_and_maps_slots() {
        let (_, _head, bodies) = trie_fixture();
        let forward: Vec<(usize, &[Atom])> = vec![(7, &bodies[0]), (9, &bodies[1])];
        let reversed: Vec<(usize, &[Atom])> = vec![(9, &bodies[1]), (7, &bodies[0])];
        let (map_a, sorted_a) = canonical_group(&forward);
        let (map_b, sorted_b) = canonical_group(&reversed);
        // Submission order is irrelevant: same body order, same slot map.
        assert_eq!(sorted_a, sorted_b);
        assert_eq!(map_a, map_b);
        // The slot map points each local slot at the caller tag.
        for (local, &tag) in map_a.iter().enumerate() {
            let original = if tag == 7 { &bodies[0] } else { &bodies[1] };
            assert_eq!(sorted_a[local], original.as_slice());
        }
    }

    #[test]
    fn batch_plan_cache_hits_and_epoch_invalidates() {
        let (mut db, head, bodies) = trie_fixture();
        let mut stats = DatabaseStatistics::gather(&db);
        let group: Vec<(usize, &[Atom])> = vec![(0, &bodies[0]), (1, &bodies[1])];
        let (_, sorted) = canonical_group(&group);
        let cache = BatchPlanCache::default();
        assert!(matches!(
            cache.fetch(&head, &sorted, &stats),
            BatchFetch::Miss
        ));
        let slotted: Vec<(usize, &[Atom])> =
            sorted.iter().enumerate().map(|(i, &b)| (i, b)).collect();
        let plan = Arc::new(BatchPlan::compile(&head, &slotted, &stats));
        cache.store(&head, &sorted, Arc::clone(&plan));
        assert_eq!(cache.len(), 1);
        match cache.fetch(&head, &sorted, &stats) {
            BatchFetch::Hit(hit, feedback, exhaustions) => {
                assert!(Arc::ptr_eq(&hit, &plan));
                assert_eq!(feedback.executions(), 0, "fresh plans get fresh feedback");
                assert!(exhaustions.is_empty(), "fresh plans get a fresh tier");
            }
            other => panic!("expected hit, got {other:?}"),
        }
        // A different body-set under the same head is a distinct entry.
        let smaller: Vec<(usize, &[Atom])> = vec![(0, &bodies[0])];
        let (_, small_sorted) = canonical_group(&smaller);
        assert!(matches!(
            cache.fetch(&head, &small_sorted, &stats),
            BatchFetch::Miss
        ));
        // Mutating a relation the trie reads stales the entry; the fetch
        // reports it and drops the entry so the caller recompiles.
        db.insert("r", Tuple::from_strs(&["2", "3"])).unwrap();
        stats.refresh(&db);
        assert!(matches!(
            cache.fetch(&head, &sorted, &stats),
            BatchFetch::Stale
        ));
        assert!(cache.is_empty());
    }

    #[test]
    fn batch_plan_cache_clears_at_capacity() {
        let (db, _head, bodies) = trie_fixture();
        let stats = DatabaseStatistics::gather(&db);
        let cache = BatchPlanCache::new(2);
        for tag in 0..5usize {
            let alt_head = Atom::vars(format!("t{tag}"), &["_0"]);
            let group: Vec<(usize, &[Atom])> = vec![(0, &bodies[0]), (1, &bodies[1])];
            let (_, sorted) = canonical_group(&group);
            let slotted: Vec<(usize, &[Atom])> =
                sorted.iter().enumerate().map(|(i, &b)| (i, b)).collect();
            let plan = Arc::new(BatchPlan::compile(&alt_head, &slotted, &stats));
            cache.store(&alt_head, &sorted, plan);
        }
        assert!(cache.len() <= 2);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn trie_exhaustion_tier_serves_narrows_and_strikes() {
        let (db, head, bodies) = trie_fixture();
        let stats = DatabaseStatistics::gather(&db);
        let group: Vec<(usize, &[Atom])> = vec![(0, &bodies[0]), (1, &bodies[1])];
        let (_, sorted) = canonical_group(&group);
        let cache = BatchPlanCache::default();
        let slotted: Vec<(usize, &[Atom])> =
            sorted.iter().enumerate().map(|(i, &b)| (i, b)).collect();
        let plan = Arc::new(BatchPlan::compile(&head, &slotted, &stats));
        let (_, tier) = cache.store(&head, &sorted, Arc::clone(&plan));
        let e = Tuple::from_strs(&["1"]);
        // Nothing cached: no serve under any scope.
        assert!(!tier.probe(0, &e, Some(100)));
        tier.absorb(0, &e, CoverageOutcome::Exhausted, 100);
        // Equal and smaller budgets are served; `None` scope never is.
        assert!(tier.probe(0, &e, Some(100)));
        assert!(tier.probe(0, &e, Some(10)));
        assert!(!tier.probe(0, &e, None));
        // A different local slot or example is a miss.
        assert!(!tier.probe(1, &e, Some(10)));
        assert!(!tier.probe(0, &Tuple::from_strs(&["2"]), Some(10)));
        // Write-back under a larger budget widens the entry (strikes reset).
        tier.absorb(0, &e, CoverageOutcome::Exhausted, 200);
        assert!(tier.probe(0, &e, Some(150)));
        // Three consecutive larger probes evict the entry.
        for round in 0..EXHAUSTION_STRIKE_LIMIT {
            assert!(!tier.probe(0, &e, Some(500)), "round {round}");
        }
        assert!(!tier.probe(0, &e, Some(10)), "entry should be gone");
        assert_eq!(cache.trie_exhaustions_evicted(), 1);
        // Definite verdicts erase a cached exhaustion on write-back.
        tier.absorb(1, &e, CoverageOutcome::Exhausted, 100);
        assert!(tier.probe(1, &e, Some(100)));
        tier.absorb(1, &e, CoverageOutcome::Covered, 100);
        assert!(!tier.probe(1, &e, Some(10)));
    }

    #[test]
    fn trie_exhaustion_tier_resets_when_the_plan_is_replaced() {
        let (db, head, bodies) = trie_fixture();
        let stats = DatabaseStatistics::gather(&db);
        let group: Vec<(usize, &[Atom])> = vec![(0, &bodies[0]), (1, &bodies[1])];
        let (_, sorted) = canonical_group(&group);
        let cache = BatchPlanCache::default();
        let slotted: Vec<(usize, &[Atom])> =
            sorted.iter().enumerate().map(|(i, &b)| (i, b)).collect();
        let plan = Arc::new(BatchPlan::compile(&head, &slotted, &stats));
        let (_, tier) = cache.store(&head, &sorted, Arc::clone(&plan));
        let e = Tuple::from_strs(&["1"]);
        tier.absorb(0, &e, CoverageOutcome::Exhausted, 100);
        assert_eq!(tier.len(), 1);
        // Re-storing (the recost path) hands out a fresh, empty tier: the
        // old exhaustions were observed under the discarded node order.
        let (_, fresh) = cache.store(&head, &sorted, plan);
        assert!(fresh.is_empty());
        assert!(!fresh.probe(0, &e, Some(10)));
        match cache.fetch(&head, &sorted, &stats) {
            BatchFetch::Hit(_, _, served) => assert!(Arc::ptr_eq(&served, &fresh)),
            other => panic!("expected hit, got {other:?}"),
        }
    }

    #[test]
    fn batch_reads_touch_the_lru_order() {
        let cache = CoverageCache::new(2);
        let e = Tuple::from_strs(&["a", "b"]);
        let key_of = |name: &str| canonicalize(&Clause::new(Atom::vars(name, &["x", "y"]), vec![]));
        let (a, b) = (key_of("a"), key_of("b"));
        cache.insert(&a, &e, CoverageOutcome::Covered, None);
        cache.insert(&b, &e, CoverageOutcome::Covered, None);
        // Touch `a` through the multi-clause read path, then overflow: `b`
        // must be the eviction victim.
        let rows = cache.get_batch_multi(std::slice::from_ref(&a), std::slice::from_ref(&e), None);
        assert_eq!(rows[0][0], Some(CoverageOutcome::Covered));
        cache.insert(&key_of("c"), &e, CoverageOutcome::Covered, None);
        assert!(cache.get(&a, &e, None).is_some());
        assert!(cache.get(&b, &e, None).is_none());
    }
}
