//! Memoized coverage results keyed by canonical (variable-renamed) clauses.
//!
//! The covering loop re-scores near-identical candidates constantly: beam
//! search re-evaluates surviving clauses, ARMG produces the same
//! generalization from different parents, and negative reduction tests
//! prefixes that earlier iterations already tested. Clauses that differ
//! only in variable names have identical coverage, so results are cached
//! under a canonical renaming: variables are numbered in first-occurrence
//! order (head first, then body), making any two α-equivalent clauses
//! collide on purpose.
//!
//! The cache also records enough to make the generality order an engine
//! invariant (Section 7.5.4): when a caller declares that clause `C`
//! generalizes clause `P`, every example cached as covered by `P` is
//! covered by `C` without a test.

use crate::fx::FxHashMap;
use castor_logic::{Clause, CoverageOutcome, Term};
use castor_relational::Tuple;
use std::collections::HashMap;
use std::sync::Mutex;

/// Renames the clause's variables to `_0, _1, ...` in first-occurrence
/// order (head first, then body literals in clause order). α-equivalent
/// clauses map to the same canonical clause; the renaming is a bijection,
/// so equal canonical forms imply isomorphic clauses and therefore equal
/// coverage.
pub fn canonicalize(clause: &Clause) -> Clause {
    let mut names: HashMap<String, String> = HashMap::new();
    let mut rename = |atom: &castor_logic::Atom| castor_logic::Atom {
        relation: atom.relation.clone(),
        terms: atom
            .terms
            .iter()
            .map(|t| match t {
                Term::Var(name) => {
                    let next = names.len();
                    Term::Var(
                        names
                            .entry(name.clone())
                            .or_insert_with(|| format!("_{next}"))
                            .clone(),
                    )
                }
                Term::Const(_) => t.clone(),
            })
            .collect(),
    };
    let head = rename(&clause.head);
    let body = clause.body.iter().map(&mut rename).collect();
    Clause { head, body }
}

/// A thread-safe memo table from (canonical clause, example) to the cached
/// coverage outcome. Bounded: when the number of distinct clauses exceeds
/// the capacity the table is cleared wholesale (coverage runs are phased,
/// so a full reset loses little and keeps memory flat).
#[derive(Debug)]
pub struct CoverageCache {
    entries: Mutex<FxHashMap<Clause, FxHashMap<Tuple, CoverageOutcome>>>,
    capacity: usize,
}

impl CoverageCache {
    /// Creates a cache holding at most `capacity` distinct clauses.
    pub fn new(capacity: usize) -> Self {
        CoverageCache {
            entries: Mutex::new(FxHashMap::default()),
            capacity: capacity.max(1),
        }
    }

    /// The cached outcome for `(canonical, example)`, if any.
    pub fn get(&self, canonical: &Clause, example: &Tuple) -> Option<CoverageOutcome> {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        entries.get(canonical).and_then(|m| m.get(example)).copied()
    }

    /// Records an outcome for `(canonical, example)`.
    pub fn insert(&self, canonical: &Clause, example: &Tuple, outcome: CoverageOutcome) {
        self.insert_many(canonical, std::iter::once((example.clone(), outcome)));
    }

    /// Records a batch of outcomes for one clause under a single lock.
    pub fn insert_many<I>(&self, canonical: &Clause, outcomes: I)
    where
        I: IntoIterator<Item = (Tuple, CoverageOutcome)>,
    {
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        if !entries.contains_key(canonical) && entries.len() >= self.capacity {
            entries.clear();
        }
        entries
            .entry(canonical.clone())
            .or_default()
            .extend(outcomes);
    }

    /// Cached outcomes for a whole batch of examples under one lock (and
    /// one hashing of the clause key) — the covering loop re-scores the
    /// same candidate over many examples, so per-example locking dominates
    /// the hit path otherwise.
    pub fn get_batch(
        &self,
        canonical: &Clause,
        examples: &[Tuple],
    ) -> Vec<Option<CoverageOutcome>> {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        match entries.get(canonical) {
            None => vec![None; examples.len()],
            Some(cached) => examples.iter().map(|e| cached.get(e).copied()).collect(),
        }
    }

    /// The examples from `examples` cached as covered by `canonical` —
    /// the generality-order shortcut: callers pass a *parent* clause here
    /// and skip testing these examples on its generalizations.
    pub fn covered_subset(&self, canonical: &Clause, examples: &[Tuple]) -> Vec<Tuple> {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        let Some(cached) = entries.get(canonical) else {
            return Vec::new();
        };
        examples
            .iter()
            .filter(|e| cached.get(*e).copied() == Some(CoverageOutcome::Covered))
            .cloned()
            .collect()
    }

    /// Number of distinct clauses currently cached.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for CoverageCache {
    fn default() -> Self {
        CoverageCache::new(16_384)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use castor_logic::Atom;

    fn clause(x: &str, y: &str, p: &str) -> Clause {
        Clause::new(
            Atom::vars("collaborated", &[x, y]),
            vec![
                Atom::vars("publication", &[p, x]),
                Atom::vars("publication", &[p, y]),
            ],
        )
    }

    #[test]
    fn alpha_equivalent_clauses_share_a_key() {
        let a = canonicalize(&clause("x", "y", "p"));
        let b = canonicalize(&clause("u", "v", "w"));
        assert_eq!(a, b);
    }

    #[test]
    fn different_structure_keeps_distinct_keys() {
        let a = canonicalize(&clause("x", "y", "p"));
        // Same variable in both head positions is a different clause.
        let b = canonicalize(&clause("x", "x", "p"));
        assert_ne!(a, b);
    }

    #[test]
    fn constants_survive_canonicalization() {
        let c = Clause::new(
            Atom::vars("t", &["x"]),
            vec![Atom::new("r", vec![Term::var("x"), Term::constant("k")])],
        );
        let canon = canonicalize(&c);
        assert_eq!(canon.body[0].terms[1], Term::constant("k"));
    }

    #[test]
    fn cache_roundtrip_and_covered_subset() {
        let cache = CoverageCache::default();
        let key = canonicalize(&clause("x", "y", "p"));
        let e1 = Tuple::from_strs(&["ann", "bob"]);
        let e2 = Tuple::from_strs(&["ann", "carol"]);
        cache.insert(&key, &e1, CoverageOutcome::Covered);
        cache.insert(&key, &e2, CoverageOutcome::NotCovered);
        assert_eq!(cache.get(&key, &e1), Some(CoverageOutcome::Covered));
        assert_eq!(cache.get(&key, &e2), Some(CoverageOutcome::NotCovered));
        assert_eq!(
            cache.covered_subset(&key, &[e1.clone(), e2.clone()]),
            vec![e1]
        );
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn capacity_overflow_clears_instead_of_growing() {
        let cache = CoverageCache::new(2);
        let e = Tuple::from_strs(&["a", "b"]);
        for i in 0..5 {
            let key = canonicalize(&Clause::new(
                Atom::vars(format!("t{i}"), &["x", "y"]),
                vec![],
            ));
            cache.insert(&key, &e, CoverageOutcome::Covered);
        }
        assert!(cache.len() <= 2);
    }
}
