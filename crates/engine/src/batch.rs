//! Batched beam evaluation: shared join-prefix execution for sibling
//! candidate clauses.
//!
//! Beam refinement scores sets of candidates that differ by a single
//! trailing literal: every sibling re-joins the same body prefix, so
//! per-clause execution re-probes the same indexes `beam_width × branching`
//! times per search level. A [`BatchPlan`] folds the candidates of one beam
//! into a *literal trie*: clauses sharing a body prefix share the trie path
//! for it, so the prefix join executes once per example and each
//! materialized prefix binding forks into the per-candidate suffixes. The
//! executor walks the trie depth-first with a binding trail, keeps a live
//! set of still-undecided candidates to prune exhausted subtrees, and gives
//! every candidate its own node budget so batched verdicts degrade the same
//! way per-clause verdicts do.
//!
//! Sharing is structural: bodies are inserted in clause order (beam
//! refinement appends literals, so siblings share their parent's body
//! verbatim), and candidates whose bodies diverge immediately simply occupy
//! disjoint root subtrees — the trie generalizes gracefully to mixed-parent
//! beams.

use crate::cost::{bound_positions, CostModel, CostModelKind};
use crate::plan::PlanFeedback;
use crate::stats::DatabaseStatistics;
use castor_logic::evaluation::{bind_head, unify_with_tuple};
use castor_logic::{Atom, Clause, CoverageOutcome, EvalBudget, Substitution, Term};
use castor_relational::{DatabaseInstance, Tuple, Value};
use std::collections::BTreeSet;

/// One trie node: a body literal, the argument positions known to be bound
/// when the node executes (head bindings, constants, and every ancestor
/// literal's variables), and the candidates whose bodies end here.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchNode {
    /// The body literal this node solves.
    pub atom: Atom,
    /// Argument positions guaranteed bound at execution time.
    pub bound_positions: Vec<usize>,
    /// Child nodes (next body literals), cheapest estimated probe first.
    pub children: Vec<usize>,
    /// Candidate slots whose last body literal is this node.
    pub accepting: Vec<usize>,
    /// Every candidate slot in this node's subtree (`accepting` of self and
    /// all descendants) — the executor's live-set domain.
    pub subtree: Vec<usize>,
    /// Estimated candidate count for this node's probe (child ordering).
    pub estimated_cost: f64,
}

/// A compiled evaluation plan for a set of candidate clauses sharing one
/// canonical head: a literal trie over their bodies. Candidate identity is
/// the *slot* index the caller supplied at compile time.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchPlan {
    /// The canonical head shared by every candidate in the batch.
    pub head: Atom,
    nodes: Vec<BatchNode>,
    /// Top-level trie nodes (first body literals), cheapest first.
    pub roots: Vec<usize>,
    /// Candidate slots with empty bodies: covered iff the head binds.
    pub root_accepting: Vec<usize>,
    /// `(relation, epoch)` stamps for every body relation known to the
    /// statistics the trie was costed against — same staleness contract as
    /// [`crate::ClausePlan::epochs`].
    pub epochs: Vec<(String, u64)>,
}

impl BatchPlan {
    /// Compiles a literal trie with the uniform baseline model
    /// (convenience wrapper over [`BatchPlan::compile_with`]).
    pub fn compile(head: &Atom, bodies: &[(usize, &[Atom])], stats: &DatabaseStatistics) -> Self {
        BatchPlan::compile_with(head, bodies, stats, CostModelKind::Uniform.model())
    }

    /// Compiles a literal trie for candidates sharing `head`. Each entry of
    /// `bodies` is `(slot, body)`; the slot is echoed back by the executor.
    /// Bodies are inserted in literal order — canonicalized siblings produced
    /// by beam refinement share their parent prefix verbatim and therefore
    /// share trie nodes. After insertion, *shared prefix chains* (runs of
    /// trie nodes every candidate in the subtree passes through) are
    /// reordered by `model`'s selectivity estimates — the per-clause greedy
    /// order, applied to the shared prefix without breaking sharing.
    pub fn compile_with(
        head: &Atom,
        bodies: &[(usize, &[Atom])],
        stats: &DatabaseStatistics,
        model: &dyn CostModel,
    ) -> Self {
        let mut plan = BatchPlan {
            head: head.clone(),
            nodes: Vec::new(),
            roots: Vec::new(),
            root_accepting: Vec::new(),
            epochs: crate::ClausePlan::stamp_epochs(
                bodies.iter().flat_map(|(_, body)| body.iter()),
                stats,
            ),
        };
        let head_vars: BTreeSet<String> = head
            .terms
            .iter()
            .filter_map(Term::var_name)
            .map(str::to_string)
            .collect();
        for &(slot, body) in bodies {
            if body.is_empty() {
                plan.root_accepting.push(slot);
                continue;
            }
            let mut bound: BTreeSet<String> = head_vars.clone();
            let mut parent: Option<usize> = None;
            for atom in body {
                let siblings = match parent {
                    None => &plan.roots,
                    Some(p) => &plan.nodes[p].children,
                };
                let existing = siblings
                    .iter()
                    .copied()
                    .find(|&i| plan.nodes[i].atom == *atom);
                let node_idx = match existing {
                    Some(i) => i,
                    None => {
                        let borrowed: BTreeSet<&str> = bound.iter().map(String::as_str).collect();
                        let bound_positions: Vec<usize> = atom
                            .terms
                            .iter()
                            .enumerate()
                            .filter(|(_, term)| match term {
                                Term::Const(_) => true,
                                Term::Var(name) => bound.contains(name.as_str()),
                            })
                            .map(|(i, _)| i)
                            .collect();
                        let estimated_cost = model.estimate_atom(atom, &borrowed, stats);
                        let idx = plan.nodes.len();
                        plan.nodes.push(BatchNode {
                            atom: atom.clone(),
                            bound_positions,
                            children: Vec::new(),
                            accepting: Vec::new(),
                            subtree: Vec::new(),
                            estimated_cost,
                        });
                        match parent {
                            None => plan.roots.push(idx),
                            Some(p) => plan.nodes[p].children.push(idx),
                        }
                        idx
                    }
                };
                bound.extend(
                    atom.terms
                        .iter()
                        .filter_map(Term::var_name)
                        .map(str::to_string),
                );
                parent = Some(node_idx);
            }
            let leaf = parent.expect("non-empty body created at least one node");
            plan.nodes[leaf].accepting.push(slot);
        }
        let roots = plan.roots.clone();
        for root in roots {
            plan.reorder_chain(root, head_vars.clone(), model, stats);
        }
        plan.finish();
        plan
    }

    /// Reorders the *shared prefix chains* of the trie by selectivity: a
    /// maximal run of nodes in which every node has exactly one child and
    /// accepts no candidate (except possibly the last) is a conjunction
    /// every candidate in the subtree executes in full, so its literals can
    /// be permuted freely — sharing, accepted bodies, and semantics are
    /// unchanged. Each chain is re-ordered greedily (cheapest bindable
    /// literal first, exactly like [`crate::ClausePlan`] does per clause)
    /// and its nodes' access paths and cost estimates are recomputed for
    /// the new positions. Recurses into the children of each chain end with
    /// the accumulated bound set.
    fn reorder_chain(
        &mut self,
        start: usize,
        mut bound: BTreeSet<String>,
        model: &dyn CostModel,
        stats: &DatabaseStatistics,
    ) {
        // Collect the maximal chain: interior nodes must be non-accepting
        // single-child links, so no candidate's body ends mid-chain.
        let mut chain = vec![start];
        loop {
            let node = &self.nodes[*chain.last().expect("chain is non-empty")];
            if node.children.len() == 1 && node.accepting.is_empty() {
                chain.push(node.children[0]);
            } else {
                break;
            }
        }
        if chain.len() > 1 {
            // Greedy reorder of the chain's atoms under the entry bound
            // set — the same schedule `ClausePlan` computes per clause.
            let atoms: Vec<Atom> = chain.iter().map(|&i| self.nodes[i].atom.clone()).collect();
            let atom_refs: Vec<&Atom> = atoms.iter().collect();
            let ordered = crate::cost::greedy_order(&atom_refs, &mut bound, |_, atom, borrowed| {
                model.estimate_atom(atom, borrowed, stats)
            });
            // Rewrite the chain nodes in the new order; the link structure
            // (and the accepting slots of the chain end) stay put.
            for (&idx, scheduled) in chain.iter().zip(ordered) {
                let node = &mut self.nodes[idx];
                node.atom = atoms[scheduled.index].clone();
                node.bound_positions = scheduled.bound_positions;
                node.estimated_cost = scheduled.estimated_rows;
            }
        } else {
            for &idx in &chain {
                bound.extend(
                    self.nodes[idx]
                        .atom
                        .terms
                        .iter()
                        .filter_map(Term::var_name)
                        .map(str::to_string),
                );
            }
        }
        let end = *chain.last().expect("chain is non-empty");
        for child in self.nodes[end].children.clone() {
            self.reorder_chain(child, bound.clone(), model, stats);
        }
    }

    /// Computes subtree slot lists bottom-up and orders every child list by
    /// estimated probe cost (cheapest first — pure heuristic, the executor
    /// visits every live child anyway).
    fn finish(&mut self) {
        let roots = self.roots.clone();
        for root in &roots {
            self.fill_subtree(*root);
        }
        let mut order: Vec<usize> = roots;
        self.sort_by_cost(&mut order);
        self.roots = order;
        for i in 0..self.nodes.len() {
            let mut children = std::mem::take(&mut self.nodes[i].children);
            self.sort_by_cost(&mut children);
            self.nodes[i].children = children;
        }
    }

    fn fill_subtree(&mut self, node: usize) {
        let children = self.nodes[node].children.clone();
        let mut subtree = self.nodes[node].accepting.clone();
        for child in children {
            self.fill_subtree(child);
            subtree.extend(self.nodes[child].subtree.iter().copied());
        }
        subtree.sort_unstable();
        subtree.dedup();
        self.nodes[node].subtree = subtree;
    }

    fn sort_by_cost(&self, indices: &mut [usize]) {
        indices.sort_by(|&a, &b| {
            self.nodes[a]
                .estimated_cost
                .total_cmp(&self.nodes[b].estimated_cost)
        });
    }

    /// The trie node arena (read-only).
    pub fn node(&self, idx: usize) -> &BatchNode {
        &self.nodes[idx]
    }

    /// Number of trie nodes (shared prefixes collapse candidates, so this
    /// is strictly less than the total literal count whenever sharing
    /// happened).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the trie's costing is still current against `stats` (see
    /// [`crate::ClausePlan::is_current`]).
    pub fn is_current(&self, stats: &DatabaseStatistics) -> bool {
        self.epochs
            .iter()
            .all(|(name, epoch)| stats.epoch_of(name) == Some(*epoch))
    }

    /// Every candidate slot in the plan (root-accepting included).
    pub fn slots(&self) -> Vec<usize> {
        let mut out: Vec<usize> = self.root_accepting.clone();
        for &root in &self.roots {
            out.extend(self.nodes[root].subtree.iter().copied());
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// Counters gathered while executing one batch work item; merged into the
/// engine's [`crate::EngineStats`] by the caller (no atomics on the inner
/// loop).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchItemStats {
    /// (candidate, example) verdicts produced by actual evaluation.
    pub tests: usize,
    /// Verdicts that ended by per-candidate budget exhaustion.
    pub budget_exhausted: usize,
    /// Per-clause probes saved at shared nodes (`live − 1` per probe that
    /// fed more than one live candidate).
    pub prefix_hits: usize,
    /// Suffix descents forked off a shared binding beyond the first live
    /// child.
    pub suffix_forks: usize,
}

impl BatchItemStats {
    /// Element-wise accumulation.
    pub fn absorb(&mut self, other: &BatchItemStats) {
        self.tests += other.tests;
        self.budget_exhausted += other.budget_exhausted;
        self.prefix_hits += other.prefix_hits;
        self.suffix_forks += other.suffix_forks;
    }
}

/// Mutable execution state for one (example, subtree) work item. Slot
/// arrays are indexed by the caller's slot space.
struct BatchSearch<'a> {
    plan: &'a BatchPlan,
    db: &'a DatabaseInstance,
    theta: Substitution,
    trail: Vec<String>,
    /// `true` while the slot still needs a verdict.
    live: Vec<bool>,
    outcomes: Vec<Option<CoverageOutcome>>,
    budgets: Vec<EvalBudget>,
    stats: BatchItemStats,
    /// Per-trie-node observed candidate rows, recorded for the engine's
    /// feedback recosting of cached tries (step index = trie node index).
    feedback: Option<&'a PlanFeedback>,
}

/// Evaluates one root subtree of `plan` against one example: every live
/// candidate in the subtree gets a [`CoverageOutcome`]. `live` flags (in
/// slot space) select which candidates this item must decide; slots outside
/// the subtree are ignored. `budget` is a per-candidate budget *template*
/// (cloned per slot), so a cancellation token installed on it aborts every
/// candidate of the item. With `feedback`, the item records one execution
/// plus per-trie-node observed candidate rows (step index = node index) —
/// the observations the engine's trie recosting compares against the
/// nodes' estimates. Returns `(slot, outcome)` pairs plus the item's
/// counters.
pub fn evaluate_subtree(
    plan: &BatchPlan,
    root: usize,
    db: &DatabaseInstance,
    example: &Tuple,
    live: &[bool],
    budget: &EvalBudget,
    feedback: Option<&PlanFeedback>,
) -> (Vec<(usize, CoverageOutcome)>, BatchItemStats) {
    let subtree = &plan.node(root).subtree;
    let wanted: Vec<usize> = subtree.iter().copied().filter(|&s| live[s]).collect();
    if wanted.is_empty() {
        return (Vec::new(), BatchItemStats::default());
    }
    let mut stats = BatchItemStats {
        tests: wanted.len(),
        ..Default::default()
    };
    let head_clause = Clause::fact(plan.head.clone());
    let Some(theta) = bind_head(&head_clause, example) else {
        // Head cannot bind: nothing in the batch covers this example.
        return (
            wanted
                .into_iter()
                .map(|s| (s, CoverageOutcome::NotCovered))
                .collect(),
            stats,
        );
    };
    if let Some(feedback) = feedback {
        feedback.record_execution();
    }
    let slot_space = live.len();
    let mut search = BatchSearch {
        plan,
        db,
        theta,
        trail: Vec::new(),
        live: {
            let mut mask = vec![false; slot_space];
            for &s in &wanted {
                mask[s] = true;
            }
            mask
        },
        outcomes: vec![None; slot_space],
        budgets: (0..slot_space).map(|_| budget.clone()).collect(),
        stats: BatchItemStats::default(),
        feedback,
    };
    search.explore(root);
    stats.absorb(&search.stats);
    let outcomes = wanted
        .into_iter()
        .map(|s| {
            let outcome = search.outcomes[s].unwrap_or(CoverageOutcome::NotCovered);
            if outcome.is_exhausted() {
                stats.budget_exhausted += 1;
            }
            (s, outcome)
        })
        .collect();
    (outcomes, stats)
}

impl BatchSearch<'_> {
    /// Depth-first execution of one trie node: probe the index once, then
    /// per candidate tuple fork into the live children. Mirrors the
    /// per-clause executor's semantics (budget consumed per candidate
    /// tuple, bindings undone through the trail).
    fn explore(&mut self, node_idx: usize) {
        // Copy the plan reference out of `self` so node borrows do not pin
        // the whole search state.
        let plan = self.plan;
        let node = plan.node(node_idx);
        let mut live_here: Vec<usize> = node
            .subtree
            .iter()
            .copied()
            .filter(|&s| self.live[s])
            .collect();
        if live_here.is_empty() {
            return;
        }
        let Some(instance) = self.db.relation(&node.atom.relation) else {
            // Unknown relation ⇒ no body through this node is satisfiable;
            // the slots resolve to NotCovered at item end.
            return;
        };
        let candidates: Vec<&Tuple> = if node.bound_positions.is_empty() {
            instance.iter().collect()
        } else {
            let key: Vec<Value> = node
                .bound_positions
                .iter()
                .map(|&pos| match &node.atom.terms[pos] {
                    Term::Const(v) => v.clone(),
                    Term::Var(name) => match self.theta.get(name) {
                        Some(Term::Const(v)) => v.clone(),
                        // The trie guarantees ancestor literals bound it.
                        _ => unreachable!("trie-bound variable {name} unbound at execution"),
                    },
                })
                .collect();
            instance.select_on_positions(&node.bound_positions, &key)
        };
        if let Some(feedback) = self.feedback {
            feedback.record_step(node_idx, candidates.len());
        }
        if live_here.len() > 1 {
            // One probe fed `live_here.len()` candidates.
            self.stats.prefix_hits += live_here.len() - 1;
        }
        for tuple in candidates {
            // Charge the probe of this tuple to every live candidate whose
            // body runs through this node — the same per-tuple accounting
            // the per-clause executor uses.
            live_here.retain(|&s| self.live[s]);
            live_here.retain(|&s| {
                if self.budgets[s].consume() {
                    true
                } else {
                    self.live[s] = false;
                    self.outcomes[s] = Some(CoverageOutcome::Exhausted);
                    false
                }
            });
            if live_here.is_empty() {
                return;
            }
            let mark = self.trail.len();
            if unify_with_tuple(&node.atom, tuple, &mut self.theta, &mut self.trail) {
                for &s in &node.accepting {
                    if self.live[s] {
                        self.live[s] = false;
                        self.outcomes[s] = Some(CoverageOutcome::Covered);
                    }
                }
                let live_children: Vec<usize> = node
                    .children
                    .iter()
                    .copied()
                    .filter(|&c| plan.node(c).subtree.iter().any(|&s| self.live[s]))
                    .collect();
                if live_children.len() > 1 {
                    self.stats.suffix_forks += live_children.len() - 1;
                }
                for child in live_children {
                    self.explore(child);
                }
            }
            for name in self.trail.drain(mark..) {
                self.theta.unbind(&name);
            }
        }
    }
}

/// Observed-row overrides for recompiling one cached trie, fed back from
/// batch execution: (atom, access path) → average candidate rows actually
/// produced at the trie node that probed it. Like
/// [`crate::cost::CostOverrides`] an observation only transfers while the
/// candidate access path matches the one it was made under; unlike clause
/// plans, trie nodes have no stable literal index, so entries are keyed by
/// the atom itself (tries are small — lookups scan linearly, and the whole
/// structure only exists for the rare recompile).
#[derive(Debug, Default)]
pub struct TrieCostOverrides {
    observed: Vec<(Atom, Vec<usize>, f64)>,
}

impl TrieCostOverrides {
    /// Collects the observed per-invocation averages of `feedback` keyed to
    /// `plan`'s node atoms and access paths (nodes that never ran are
    /// skipped).
    pub fn from_feedback(plan: &BatchPlan, feedback: &PlanFeedback) -> Self {
        let mut overrides = TrieCostOverrides::default();
        for (node_idx, observed) in feedback.observed_rows().into_iter().enumerate() {
            if let (Some(rows), Some(node)) = (observed, plan.nodes.get(node_idx)) {
                overrides
                    .observed
                    .push((node.atom.clone(), node.bound_positions.clone(), rows));
            }
        }
        overrides
    }

    /// The observed rows for `atom` under the access path `positions`, if
    /// recorded.
    pub fn lookup(&self, atom: &Atom, positions: &[usize]) -> Option<f64> {
        self.observed
            .iter()
            .find(|(a, p, _)| a == atom && p == positions)
            .map(|&(_, _, rows)| rows)
    }

    /// Whether no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.observed.is_empty()
    }
}

/// A [`CostModel`] wrapper consulted during trie recompilation: an observed
/// row count beats the inner model's estimate whenever the candidate access
/// path matches the observation's.
#[derive(Debug)]
pub struct ObservedTrieCost<'a> {
    /// The model answering atoms with no matching observation.
    pub inner: &'a dyn CostModel,
    /// The recorded observations.
    pub overrides: &'a TrieCostOverrides,
}

impl CostModel for ObservedTrieCost<'_> {
    fn estimate_atom(
        &self,
        atom: &Atom,
        bound: &BTreeSet<&str>,
        stats: &DatabaseStatistics,
    ) -> f64 {
        self.overrides
            .lookup(atom, &bound_positions(atom, bound))
            .unwrap_or_else(|| self.inner.estimate_atom(atom, bound, stats))
    }

    fn name(&self) -> &'static str {
        "observed"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use castor_relational::{RelationSymbol, Schema};

    fn db() -> DatabaseInstance {
        let mut schema = Schema::new("t");
        schema
            .add_relation(RelationSymbol::new("publication", &["title", "person"]))
            .add_relation(RelationSymbol::new("professor", &["prof"]))
            .add_relation(RelationSymbol::new("student", &["stud"]));
        let mut db = DatabaseInstance::empty(&schema);
        for (t, p) in [("p1", "ann"), ("p1", "bob"), ("p2", "carol"), ("p2", "dan")] {
            db.insert("publication", Tuple::from_strs(&[t, p])).unwrap();
        }
        db.insert("professor", Tuple::from_strs(&["bob"])).unwrap();
        db.insert("student", Tuple::from_strs(&["ann"])).unwrap();
        db
    }

    /// advisedBy(x, y) ← publication(p, x), publication(p, y) [, extra]
    fn siblings() -> (Atom, Vec<Vec<Atom>>) {
        let head = Atom::vars("advisedBy", &["_0", "_1"]);
        let prefix = vec![
            Atom::vars("publication", &["_2", "_0"]),
            Atom::vars("publication", &["_2", "_1"]),
        ];
        let mut with_prof = prefix.clone();
        with_prof.push(Atom::vars("professor", &["_1"]));
        let mut with_stud = prefix.clone();
        with_stud.push(Atom::vars("student", &["_0"]));
        (head, vec![prefix, with_prof, with_stud])
    }

    fn plan_of(head: &Atom, bodies: &[Vec<Atom>], db: &DatabaseInstance) -> BatchPlan {
        let stats = DatabaseStatistics::gather(db);
        let slotted: Vec<(usize, &[Atom])> = bodies
            .iter()
            .enumerate()
            .map(|(i, b)| (i, b.as_slice()))
            .collect();
        BatchPlan::compile(head, &slotted, &stats)
    }

    #[test]
    fn siblings_share_prefix_nodes() {
        let db = db();
        let (head, bodies) = siblings();
        let plan = plan_of(&head, &bodies, &db);
        // 2 shared prefix nodes + 2 suffix leaves, not 2+3+3 literals.
        assert_eq!(plan.node_count(), 4);
        assert_eq!(plan.roots.len(), 1);
        assert_eq!(plan.slots(), vec![0, 1, 2]);
        // The shared second literal accepts the prefix clause and forks into
        // both suffixes.
        let root = plan.node(plan.roots[0]);
        assert_eq!(root.subtree, vec![0, 1, 2]);
        let second = plan.node(root.children[0]);
        assert_eq!(second.accepting, vec![0]);
        assert_eq!(second.children.len(), 2);
    }

    #[test]
    fn batched_outcomes_match_reference_semantics() {
        let db = db();
        let (head, bodies) = siblings();
        let plan = plan_of(&head, &bodies, &db);
        let clauses: Vec<Clause> = bodies
            .iter()
            .map(|b| Clause::new(head.clone(), b.clone()))
            .collect();
        let live = vec![true; clauses.len()];
        for example in [
            Tuple::from_strs(&["ann", "bob"]),
            Tuple::from_strs(&["ann", "carol"]),
            Tuple::from_strs(&["carol", "dan"]),
            Tuple::from_strs(&["dan", "dan"]),
        ] {
            let (outcomes, stats) = evaluate_subtree(
                &plan,
                plan.roots[0],
                &db,
                &example,
                &live,
                &EvalBudget::new(10_000),
                None,
            );
            assert_eq!(outcomes.len(), clauses.len());
            assert_eq!(stats.tests, clauses.len());
            for (slot, outcome) in outcomes {
                assert_eq!(
                    outcome.is_covered(),
                    castor_logic::covers_example(&clauses[slot], &db, &example),
                    "slot {slot} diverged on {example}"
                );
            }
        }
    }

    #[test]
    fn shared_probes_and_forks_are_counted() {
        let db = db();
        let (head, bodies) = siblings();
        let plan = plan_of(&head, &bodies, &db);
        let live = vec![true; 3];
        let (_, stats) = evaluate_subtree(
            &plan,
            plan.roots[0],
            &db,
            &Tuple::from_strs(&["ann", "bob"]),
            &live,
            &EvalBudget::new(10_000),
            None,
        );
        assert!(stats.prefix_hits > 0, "no shared probes counted: {stats:?}");
        assert!(stats.suffix_forks > 0, "no suffix forks counted: {stats:?}");
    }

    #[test]
    fn zero_budget_reports_exhaustion_per_candidate() {
        let db = db();
        let (head, bodies) = siblings();
        let plan = plan_of(&head, &bodies, &db);
        let live = vec![true; 3];
        let (outcomes, stats) = evaluate_subtree(
            &plan,
            plan.roots[0],
            &db,
            &Tuple::from_strs(&["ann", "bob"]),
            &live,
            &EvalBudget::new(0),
            None,
        );
        assert!(outcomes.iter().all(|(_, o)| o.is_exhausted()));
        assert_eq!(stats.budget_exhausted, 3);
    }

    #[test]
    fn live_mask_restricts_the_verdicts() {
        let db = db();
        let (head, bodies) = siblings();
        let plan = plan_of(&head, &bodies, &db);
        let live = vec![false, true, false];
        let (outcomes, _) = evaluate_subtree(
            &plan,
            plan.roots[0],
            &db,
            &Tuple::from_strs(&["ann", "bob"]),
            &live,
            &EvalBudget::new(10_000),
            None,
        );
        assert_eq!(outcomes.len(), 1);
        assert_eq!(outcomes[0].0, 1);
    }

    #[test]
    fn trie_epoch_stamps_detect_mutated_relations() {
        // BatchPlans are compiled per call today, but the epoch stamps are
        // the invalidation contract a future cross-round trie cache (see
        // ROADMAP) relies on — pin their semantics now.
        let mut db = db();
        let (head, bodies) = siblings();
        let plan = plan_of(&head, &bodies, &db);
        let names: Vec<&str> = plan.epochs.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["professor", "publication", "student"]);
        let mut stats = DatabaseStatistics::gather(&db);
        assert!(plan.is_current(&stats));
        db.insert("professor", Tuple::from_strs(&["dan"])).unwrap();
        stats.refresh(&db);
        assert!(!plan.is_current(&stats));
    }

    #[test]
    fn shared_prefix_chains_are_reordered_by_selectivity() {
        // Siblings share the badly-ordered prefix [skewed(x,y), flat(x,z)]:
        // the hub relation first, the selective one second. The histogram
        // model must flip the *shared chain* without breaking sharing.
        let mut schema = Schema::new("s");
        schema
            .add_relation(RelationSymbol::new("skewed", &["a", "b"]))
            .add_relation(RelationSymbol::new("flat", &["a", "b"]))
            .add_relation(RelationSymbol::new("p1", &["a"]))
            .add_relation(RelationSymbol::new("p2", &["a"]));
        let mut db = DatabaseInstance::empty(&schema);
        for i in 0..120 {
            db.insert("skewed", Tuple::from_strs(&["hub", &format!("v{i}")]))
                .unwrap();
        }
        for i in 0..80 {
            db.insert(
                "skewed",
                Tuple::from_strs(&[&format!("k{i}"), &format!("w{i}")]),
            )
            .unwrap();
        }
        for i in 0..60 {
            db.insert(
                "flat",
                Tuple::from_strs(&[&format!("f{}", i % 20), &format!("x{i}")]),
            )
            .unwrap();
        }
        db.insert("flat", Tuple::from_strs(&["hub", "y0"])).unwrap();
        db.insert("p1", Tuple::from_strs(&["v0"])).unwrap();
        db.insert("p2", Tuple::from_strs(&["y0"])).unwrap();

        let head = Atom::vars("t", &["_0"]);
        let prefix = vec![
            Atom::vars("skewed", &["_0", "_1"]),
            Atom::vars("flat", &["_0", "_2"]),
        ];
        let mut with_p1 = prefix.clone();
        with_p1.push(Atom::vars("p1", &["_1"]));
        let mut with_p2 = prefix.clone();
        with_p2.push(Atom::vars("p2", &["_2"]));
        let bodies = [prefix.clone(), with_p1, with_p2];
        let slotted: Vec<(usize, &[Atom])> = bodies
            .iter()
            .enumerate()
            .map(|(i, b)| (i, b.as_slice()))
            .collect();
        let stats = DatabaseStatistics::gather(&db);

        let uniform =
            BatchPlan::compile_with(&head, &slotted, &stats, CostModelKind::Uniform.model());
        assert_eq!(uniform.node(uniform.roots[0]).atom.relation, "skewed");

        let hist =
            BatchPlan::compile_with(&head, &slotted, &stats, CostModelKind::Histogram.model());
        // Sharing intact: still 2 chain nodes + 2 suffix leaves...
        assert_eq!(hist.node_count(), 4);
        assert_eq!(hist.roots.len(), 1);
        // ...but the selective literal now leads the shared chain.
        let root = hist.node(hist.roots[0]);
        assert_eq!(root.atom.relation, "flat");
        let second = hist.node(root.children[0]);
        assert_eq!(second.atom.relation, "skewed");
        assert_eq!(second.accepting, vec![0]);
        assert_eq!(second.children.len(), 2);
        // Access paths were recomputed for the new positions.
        assert_eq!(root.bound_positions, vec![0]);
        assert_eq!(second.bound_positions, vec![0]);

        // Semantics are untouched by the reorder.
        let clauses: Vec<Clause> = bodies
            .iter()
            .map(|b| Clause::new(head.clone(), b.clone()))
            .collect();
        let live = vec![true; clauses.len()];
        for example in [
            Tuple::from_strs(&["hub"]),
            Tuple::from_strs(&["k3"]),
            Tuple::from_strs(&["f0"]),
        ] {
            for plan in [&uniform, &hist] {
                let (outcomes, _) = evaluate_subtree(
                    plan,
                    plan.roots[0],
                    &db,
                    &example,
                    &live,
                    &EvalBudget::new(100_000),
                    None,
                );
                for (slot, outcome) in outcomes {
                    assert_eq!(
                        outcome.is_covered(),
                        castor_logic::covers_example(&clauses[slot], &db, &example),
                        "slot {slot} diverged on {example}"
                    );
                }
            }
        }
    }

    #[test]
    fn batch_execution_records_per_node_observed_rows() {
        let db = db();
        let (head, bodies) = siblings();
        let plan = plan_of(&head, &bodies, &db);
        let live = vec![true; 3];
        let feedback = PlanFeedback::new(plan.node_count());
        for example in [
            Tuple::from_strs(&["ann", "bob"]),
            Tuple::from_strs(&["carol", "dan"]),
        ] {
            evaluate_subtree(
                &plan,
                plan.roots[0],
                &db,
                &example,
                &live,
                &EvalBudget::new(10_000),
                Some(&feedback),
            );
        }
        // One execution per (subtree, example) item with a bindable head.
        assert_eq!(feedback.executions(), 2);
        let observed = feedback.observed_rows();
        // The root probe ran for both examples and produced candidate rows.
        assert!(observed[plan.roots[0]].is_some());
        // The overrides key observations by (atom, access path) and feed a
        // wrapped model during recompilation.
        let overrides = TrieCostOverrides::from_feedback(&plan, &feedback);
        assert!(!overrides.is_empty());
        let root = plan.node(plan.roots[0]);
        assert_eq!(
            overrides.lookup(&root.atom, &root.bound_positions),
            observed[plan.roots[0]]
        );
        // A head that cannot bind records nothing.
        let before = feedback.executions();
        evaluate_subtree(
            &plan,
            plan.roots[0],
            &db,
            &Tuple::from_strs(&["ann"]),
            &live,
            &EvalBudget::new(10_000),
            Some(&feedback),
        );
        assert_eq!(feedback.executions(), before);
    }

    #[test]
    fn empty_bodies_collect_at_the_root() {
        let db = db();
        let head = Atom::vars("t", &["_0"]);
        let stats = DatabaseStatistics::gather(&db);
        let empty: Vec<Atom> = Vec::new();
        let plan = BatchPlan::compile(&head, &[(7, empty.as_slice())], &stats);
        assert_eq!(plan.root_accepting, vec![7]);
        assert!(plan.roots.is_empty());
        assert_eq!(plan.slots(), vec![7]);
    }
}
