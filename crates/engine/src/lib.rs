//! # castor-engine
//!
//! The compiled clause-evaluation and coverage subsystem of the Castor
//! reproduction. The paper credits Castor's speed to treating coverage
//! testing as a database problem — stored-procedure-style evaluation
//! (Section 7.5.2), parallel coverage tests (Figure 2), and aggressive
//! reuse of results across candidate clauses (Sections 7.5.3–7.5.4). This
//! crate owns that machinery for the whole workspace:
//!
//! * [`stats`] — per-relation/per-attribute selectivity statistics read off
//!   the database's hash indexes when the engine is built;
//! * [`plan`] — compiled per-clause join orders chosen once from those
//!   statistics instead of re-ranking literals at every backtracking node;
//! * [`executor`] — budgeted execution of a compiled plan against the
//!   positional hash indexes;
//! * [`cache`] — a memoized coverage cache keyed by canonical
//!   (variable-renamed) clauses, with generality-order propagation
//!   ([`Prior::GeneralizationOf`]) promoted to an engine invariant;
//! * [`pool`] — a persistent worker pool with work-stealing over examples,
//!   replacing per-call thread spawning.
//!
//! The [`Engine`] front end combines all five; every learner in the
//! workspace (Castor, FOIL, Golem, Progol, ProGolem) routes coverage tests
//! through it.

pub mod cache;
pub mod executor;
pub mod fx;
pub mod plan;
pub mod pool;
pub mod stats;

pub use cache::{canonicalize, CoverageCache};
pub use castor_logic::{CoverageOutcome, EvalBudget, DEFAULT_EVAL_NODE_BUDGET};
pub use fx::{FxBuildHasher, FxHashMap, FxHasher};
pub use plan::{ClausePlan, PlanStep};
pub use pool::WorkerPool;
pub use stats::{DatabaseStatistics, EngineReport, EngineStats};

use castor_logic::Clause;
use castor_relational::{DatabaseInstance, Tuple};
use std::collections::HashSet;
use std::sync::{Arc, Mutex};

/// Engine construction knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads for parallel coverage testing (1 = inline).
    pub threads: usize,
    /// Node budget per coverage test (replaces the old hardcoded
    /// `EVAL_NODE_BUDGET`); exhaustions are counted and reported.
    pub eval_budget: usize,
    /// Memoize coverage results per canonical clause.
    pub cache_coverage: bool,
    /// Maximum distinct clauses held by the coverage cache.
    pub cache_capacity: usize,
    /// Compile and reuse per-clause join plans; when disabled every test
    /// falls back to the interpreted evaluator (the ablation baseline).
    pub compile_plans: bool,
    /// Minimum pending examples before a `covered_set` call is spread over
    /// the worker pool.
    pub parallel_threshold: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            threads: 1,
            eval_budget: DEFAULT_EVAL_NODE_BUDGET,
            cache_coverage: true,
            cache_capacity: 16_384,
            compile_plans: true,
            parallel_threshold: 8,
        }
    }
}

impl EngineConfig {
    /// Returns a copy with the given worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Returns a copy with the given per-test node budget.
    pub fn with_eval_budget(mut self, budget: usize) -> Self {
        self.eval_budget = budget;
        self
    }

    /// Returns a copy with memoization disabled (benchmark baseline).
    pub fn without_cache(mut self) -> Self {
        self.cache_coverage = false;
        self
    }

    /// Returns a copy with plan compilation disabled (benchmark baseline).
    pub fn without_compiled_plans(mut self) -> Self {
        self.compile_plans = false;
        self
    }
}

/// Prior knowledge a caller can hand to [`Engine::covered_set`] to skip
/// redundant tests.
#[derive(Debug, Clone, Copy, Default)]
pub enum Prior<'a> {
    /// No prior knowledge: test every example (cache permitting).
    #[default]
    None,
    /// These examples are known covered (legacy explicit form).
    Known(&'a HashSet<Tuple>),
    /// The queried clause generalizes this clause, so everything the parent
    /// is cached as covering is covered — the generality order of
    /// Section 7.5.4 as an engine invariant.
    GeneralizationOf(&'a Clause),
}

/// A pluggable per-example coverage test driven by [`CoverageRuntime`]:
/// the database-evaluation engine and the subsumption-based coverage engine
/// in `castor-core` differ only in this trait's two methods.
pub trait CoverageTester {
    /// Evaluates one (canonical clause, example) pair, counting the test in
    /// the runtime's metrics.
    fn test(&self, canonical: &Clause, example: &Tuple) -> CoverageOutcome;

    /// Builds the `'static` task executed by worker threads for a batch:
    /// the closure must own (`Arc`-clone) everything it touches.
    fn parallel_task(
        &self,
        canonical: &Clause,
        examples: &Arc<Vec<Tuple>>,
    ) -> Box<dyn Fn(usize) -> CoverageOutcome + Send + Sync + 'static>;
}

/// The orchestration shared by every coverage engine: canonical-clause
/// keying, prior handling (including the generality order), batched memo
/// lookup/writeback, and worker-pool dispatch. Parameterized by a
/// [`CoverageTester`] so the database executor and the θ-subsumption tester
/// stay a single code path.
#[derive(Debug)]
pub struct CoverageRuntime {
    cache: CoverageCache,
    pool: Arc<WorkerPool>,
    metrics: Arc<EngineStats>,
    cache_coverage: bool,
    parallel_threshold: usize,
}

impl CoverageRuntime {
    /// Builds a runtime from the engine configuration and a (possibly
    /// shared) worker pool.
    pub fn new(config: &EngineConfig, pool: Arc<WorkerPool>) -> Self {
        CoverageRuntime {
            cache: CoverageCache::new(config.cache_capacity),
            pool,
            metrics: Arc::new(EngineStats::new()),
            cache_coverage: config.cache_coverage,
            parallel_threshold: config.parallel_threshold,
        }
    }

    /// The worker pool this runtime dispatches on.
    pub fn pool(&self) -> &Arc<WorkerPool> {
        &self.pool
    }

    /// The shared counters (testers bump `coverage_tests` and
    /// `budget_exhausted` through this handle).
    pub fn metrics(&self) -> &Arc<EngineStats> {
        &self.metrics
    }

    /// Snapshot of the runtime counters.
    pub fn report(&self) -> EngineReport {
        self.metrics.snapshot()
    }

    /// Tri-state coverage test for one example through the memo cache.
    pub fn try_covers<T: CoverageTester>(
        &self,
        tester: &T,
        canonical: &Clause,
        example: &Tuple,
    ) -> CoverageOutcome {
        if self.cache_coverage {
            if let Some(outcome) = self.cache.get(canonical, example) {
                EngineStats::bump(&self.metrics.cache_hits);
                return outcome;
            }
            EngineStats::bump(&self.metrics.cache_misses);
        }
        let outcome = tester.test(canonical, example);
        if self.cache_coverage {
            self.cache.insert(canonical, example, outcome);
        }
        outcome
    }

    /// The subset of `examples` covered by the canonical clause. `prior`
    /// feeds the generality order; pending examples are spread over the
    /// worker pool when there are enough of them.
    pub fn covered_set<T: CoverageTester>(
        &self,
        tester: &T,
        canonical: &Clause,
        examples: &[Tuple],
        prior: Prior<'_>,
    ) -> HashSet<Tuple> {
        let mut covered: HashSet<Tuple> = HashSet::new();
        let mut skip: HashSet<Tuple> = HashSet::new();
        // `cacheable_skips`: only generality-derived facts go into the memo
        // table. Entries from Prior::Known are the *caller's* claim — they
        // shape this result but must not poison the shared cache.
        let mut cacheable_skips = false;
        match prior {
            Prior::None => {}
            Prior::Known(known) => {
                for e in examples {
                    if known.contains(e) {
                        covered.insert(e.clone());
                        skip.insert(e.clone());
                    }
                }
            }
            Prior::GeneralizationOf(parent) => {
                let parent_key = canonicalize(parent);
                for e in self.cache.covered_subset(&parent_key, examples) {
                    covered.insert(e.clone());
                    skip.insert(e);
                }
                cacheable_skips = true;
            }
        }
        if !skip.is_empty() {
            EngineStats::add(&self.metrics.generality_skips, skip.len());
            if self.cache_coverage && cacheable_skips {
                self.cache.insert_many(
                    canonical,
                    skip.iter().map(|e| (e.clone(), CoverageOutcome::Covered)),
                );
            }
        }

        // Answer what the cache can (one lock for the whole batch), then
        // evaluate the remainder.
        let mut pending: Vec<Tuple> = Vec::new();
        let cached = if self.cache_coverage {
            self.cache.get_batch(canonical, examples)
        } else {
            vec![None; examples.len()]
        };
        let mut hits = 0usize;
        for (e, cached) in examples.iter().zip(cached) {
            if skip.contains(e) || covered.contains(e) {
                continue;
            }
            match cached {
                Some(outcome) => {
                    hits += 1;
                    if outcome.is_covered() {
                        covered.insert(e.clone());
                    }
                }
                None => pending.push(e.clone()),
            }
        }
        if self.cache_coverage {
            EngineStats::add(&self.metrics.cache_hits, hits);
            EngineStats::add(&self.metrics.cache_misses, pending.len());
        }
        if pending.is_empty() {
            return covered;
        }

        let outcomes: Vec<CoverageOutcome> =
            if self.pool.size() > 1 && pending.len() >= self.parallel_threshold {
                let examples = Arc::new(pending.clone());
                let task = tester.parallel_task(canonical, &examples);
                self.pool.map_indices(examples.len(), task)
            } else {
                pending.iter().map(|e| tester.test(canonical, e)).collect()
            };
        if self.cache_coverage {
            self.cache.insert_many(
                canonical,
                pending.iter().cloned().zip(outcomes.iter().copied()),
            );
        }
        for (e, outcome) in pending.into_iter().zip(outcomes) {
            if outcome.is_covered() {
                covered.insert(e);
            }
        }
        covered
    }
}

/// The database-backed evaluation engine: statistics, compiled plans,
/// memoized coverage, and a persistent worker pool behind one front end.
#[derive(Debug)]
pub struct Engine {
    db: Arc<DatabaseInstance>,
    db_stats: DatabaseStatistics,
    plans: Mutex<fx::FxHashMap<Clause, Arc<ClausePlan>>>,
    runtime: CoverageRuntime,
    config: EngineConfig,
}

impl Engine {
    /// Builds an engine over a snapshot of `db`. The instance is deep-cloned
    /// once (tuples and indexes) so worker threads can share it; callers
    /// that already hold an `Arc` should use [`Engine::from_arc`] instead.
    pub fn new(db: &DatabaseInstance, config: EngineConfig) -> Self {
        Engine::from_arc(Arc::new(db.clone()), config)
    }

    /// Builds an engine sharing `db` without copying it.
    pub fn from_arc(db: Arc<DatabaseInstance>, config: EngineConfig) -> Self {
        let db_stats = DatabaseStatistics::gather(&db);
        let pool = Arc::new(WorkerPool::new(config.threads));
        Engine {
            db_stats,
            plans: Mutex::new(fx::FxHashMap::default()),
            runtime: CoverageRuntime::new(&config, pool),
            config,
            db,
        }
    }

    /// The database the engine evaluates against.
    pub fn db(&self) -> &DatabaseInstance {
        &self.db
    }

    /// The statistics snapshot taken at build time.
    pub fn statistics(&self) -> &DatabaseStatistics {
        &self.db_stats
    }

    /// The engine's worker pool. `castor-core`'s subsumption coverage
    /// engine accepts this handle so one learner run drives a single pool.
    pub fn pool(&self) -> &Arc<WorkerPool> {
        self.runtime.pool()
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Snapshot of the engine counters.
    pub fn report(&self) -> EngineReport {
        self.runtime.report()
    }

    /// The compiled plan for a canonical clause, compiling on first use.
    /// Bounded like the coverage cache: at capacity the table is cleared
    /// rather than growing without limit.
    fn plan_for(&self, canonical: &Clause) -> Arc<ClausePlan> {
        let mut plans = self.plans.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(plan) = plans.get(canonical) {
            EngineStats::bump(&self.runtime.metrics().plan_cache_hits);
            return Arc::clone(plan);
        }
        if plans.len() >= self.config.cache_capacity {
            plans.clear();
        }
        let plan = Arc::new(ClausePlan::compile(canonical, &self.db_stats));
        EngineStats::bump(&self.runtime.metrics().plans_compiled);
        plans.insert(canonical.clone(), Arc::clone(&plan));
        plan
    }

    /// Tri-state coverage test for one example, going through the cache and
    /// the compiled plan.
    pub fn try_covers(&self, clause: &Clause, example: &Tuple) -> CoverageOutcome {
        let canonical = canonicalize(clause);
        self.runtime.try_covers(self, &canonical, example)
    }

    /// Boolean coverage test (exhausted budgets count as "not covered").
    pub fn covers(&self, clause: &Clause, example: &Tuple) -> bool {
        self.try_covers(clause, example).is_covered()
    }

    /// The subset of `examples` covered by `clause`. `prior` feeds the
    /// generality order: examples covered by a clause this one generalizes
    /// are accepted without a test. Pending examples are spread over the
    /// worker pool when there are enough of them.
    pub fn covered_set(
        &self,
        clause: &Clause,
        examples: &[Tuple],
        prior: Prior<'_>,
    ) -> HashSet<Tuple> {
        let canonical = canonicalize(clause);
        self.runtime.covered_set(self, &canonical, examples, prior)
    }

    /// Positive/negative coverage counts for `clause`.
    pub fn coverage_counts(
        &self,
        clause: &Clause,
        positive: &[Tuple],
        negative: &[Tuple],
    ) -> (usize, usize) {
        let pos = self.covered_set(clause, positive, Prior::None).len();
        let neg = self.covered_set(clause, negative, Prior::None).len();
        (pos, neg)
    }
}

impl CoverageTester for Engine {
    fn test(&self, canonical: &Clause, example: &Tuple) -> CoverageOutcome {
        let metrics = self.runtime.metrics();
        EngineStats::bump(&metrics.coverage_tests);
        let mut budget = EvalBudget::new(self.config.eval_budget);
        let outcome = if self.config.compile_plans {
            let plan = self.plan_for(canonical);
            executor::covers_with_plan(canonical, &plan, &self.db, example, &mut budget)
        } else {
            castor_logic::covers_example_budgeted(canonical, &self.db, example, &mut budget)
        };
        if outcome.is_exhausted() {
            EngineStats::bump(&metrics.budget_exhausted);
        }
        outcome
    }

    fn parallel_task(
        &self,
        canonical: &Clause,
        examples: &Arc<Vec<Tuple>>,
    ) -> Box<dyn Fn(usize) -> CoverageOutcome + Send + Sync + 'static> {
        let db = Arc::clone(&self.db);
        let metrics = Arc::clone(self.runtime.metrics());
        let clause = canonical.clone();
        let budget = self.config.eval_budget;
        let examples = Arc::clone(examples);
        let plan = self.config.compile_plans.then(|| self.plan_for(canonical));
        Box::new(move |i| {
            EngineStats::bump(&metrics.coverage_tests);
            let mut node_budget = EvalBudget::new(budget);
            let outcome = match &plan {
                Some(plan) => {
                    executor::covers_with_plan(&clause, plan, &db, &examples[i], &mut node_budget)
                }
                None => castor_logic::covers_example_budgeted(
                    &clause,
                    &db,
                    &examples[i],
                    &mut node_budget,
                ),
            };
            if outcome.is_exhausted() {
                EngineStats::bump(&metrics.budget_exhausted);
            }
            outcome
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use castor_logic::Atom;
    use castor_relational::{RelationSymbol, Schema};

    fn db() -> DatabaseInstance {
        let mut schema = Schema::new("demo");
        schema.add_relation(RelationSymbol::new("publication", &["title", "person"]));
        let mut db = DatabaseInstance::empty(&schema);
        for (t, p) in [
            ("p1", "ann"),
            ("p1", "bob"),
            ("p2", "carol"),
            ("p2", "dan"),
            ("p3", "eve"),
        ] {
            db.insert("publication", Tuple::from_strs(&[t, p])).unwrap();
        }
        db
    }

    fn collaborated(x: &str, y: &str, p: &str) -> Clause {
        Clause::new(
            Atom::vars("collaborated", &[x, y]),
            vec![
                Atom::vars("publication", &[p, x]),
                Atom::vars("publication", &[p, y]),
            ],
        )
    }

    #[test]
    fn engine_coverage_matches_reference_semantics() {
        let db = db();
        let engine = Engine::new(&db, EngineConfig::default());
        let clause = collaborated("x", "y", "p");
        for example in [
            Tuple::from_strs(&["ann", "bob"]),
            Tuple::from_strs(&["ann", "carol"]),
            Tuple::from_strs(&["eve", "eve"]),
        ] {
            assert_eq!(
                engine.covers(&clause, &example),
                castor_logic::covers_example(&clause, &db, &example),
                "engine disagrees on {example}"
            );
        }
    }

    #[test]
    fn repeated_scoring_hits_the_cache() {
        let db = db();
        let engine = Engine::new(&db, EngineConfig::default());
        let examples = [
            Tuple::from_strs(&["ann", "bob"]),
            Tuple::from_strs(&["carol", "dan"]),
        ];
        // Alpha-variant clauses must share cache entries.
        engine.covered_set(&collaborated("x", "y", "p"), &examples, Prior::None);
        let before = engine.report();
        engine.covered_set(&collaborated("u", "v", "w"), &examples, Prior::None);
        let after = engine.report();
        assert_eq!(after.coverage_tests, before.coverage_tests);
        assert_eq!(after.cache_hits, before.cache_hits + examples.len());
        assert_eq!(after.plans_compiled, 1);
    }

    #[test]
    fn generality_prior_skips_parent_covered_examples() {
        let db = db();
        let engine = Engine::new(&db, EngineConfig::default());
        let parent = collaborated("x", "y", "p");
        let examples = [
            Tuple::from_strs(&["ann", "bob"]),
            Tuple::from_strs(&["ann", "carol"]),
        ];
        let parent_covered = engine.covered_set(&parent, &examples, Prior::None);
        assert_eq!(parent_covered.len(), 1);
        // A strictly more general clause (one literal dropped).
        let child = Clause::new(
            Atom::vars("collaborated", &["x", "y"]),
            vec![Atom::vars("publication", &["p", "x"])],
        );
        let before = engine.report();
        let child_covered = engine.covered_set(&child, &examples, Prior::GeneralizationOf(&parent));
        let after = engine.report();
        assert!(child_covered.contains(&Tuple::from_strs(&["ann", "bob"])));
        assert_eq!(after.generality_skips, before.generality_skips + 1);
    }

    #[test]
    fn uncached_config_reevaluates_every_time() {
        let db = db();
        let engine = Engine::new(&db, EngineConfig::default().without_cache());
        let clause = collaborated("x", "y", "p");
        let e = Tuple::from_strs(&["ann", "bob"]);
        engine.covers(&clause, &e);
        engine.covers(&clause, &e);
        let report = engine.report();
        assert_eq!(report.coverage_tests, 2);
        assert_eq!(report.cache_hits, 0);
    }

    #[test]
    fn interpreted_fallback_agrees_with_compiled_plans() {
        let db = db();
        let compiled = Engine::new(&db, EngineConfig::default());
        let interpreted = Engine::new(&db, EngineConfig::default().without_compiled_plans());
        let clause = collaborated("x", "y", "p");
        let examples: Vec<Tuple> = vec![
            Tuple::from_strs(&["ann", "bob"]),
            Tuple::from_strs(&["carol", "dan"]),
            Tuple::from_strs(&["ann", "dan"]),
            Tuple::from_strs(&["eve", "eve"]),
        ];
        assert_eq!(
            compiled.covered_set(&clause, &examples, Prior::None),
            interpreted.covered_set(&clause, &examples, Prior::None)
        );
    }

    #[test]
    fn parallel_and_sequential_paths_agree() {
        let db = db();
        let sequential = Engine::new(&db, EngineConfig::default());
        let parallel = Engine::new(&db, EngineConfig::default().with_threads(4));
        let clause = collaborated("x", "y", "p");
        let base = [
            Tuple::from_strs(&["ann", "bob"]),
            Tuple::from_strs(&["carol", "dan"]),
            Tuple::from_strs(&["ann", "dan"]),
            Tuple::from_strs(&["eve", "eve"]),
        ];
        let many: Vec<Tuple> = base.iter().cycle().take(64).cloned().collect();
        assert_eq!(
            sequential.covered_set(&clause, &many, Prior::None),
            parallel.covered_set(&clause, &many, Prior::None)
        );
    }

    #[test]
    fn budget_exhaustion_is_reported_not_silent() {
        let db = db();
        let engine = Engine::new(&db, EngineConfig::default().with_eval_budget(0));
        let clause = collaborated("x", "y", "p");
        assert!(!engine.covers(&clause, &Tuple::from_strs(&["ann", "bob"])));
        assert_eq!(engine.report().budget_exhausted, 1);
    }
}
