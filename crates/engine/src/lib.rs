//! # castor-engine
//!
//! The compiled clause-evaluation and coverage subsystem of the Castor
//! reproduction. The paper credits Castor's speed to treating coverage
//! testing as a database problem — stored-procedure-style evaluation
//! (Section 7.5.2), parallel coverage tests (Figure 2), and aggressive
//! reuse of results across candidate clauses (Sections 7.5.3–7.5.4). This
//! crate owns that machinery for the whole workspace:
//!
//! * [`stats`] — per-relation/per-attribute selectivity statistics (incl.
//!   the skew-aware histograms/MCV lists of `castor-relational`) read off
//!   the database's incrementally-maintained indexes and sketches;
//! * [`cost`] — pluggable [`CostModel`]s: the skew-aware histogram model
//!   (default), the uniform baseline, and observed-row overrides for
//!   feedback re-planning;
//! * [`plan`] — compiled per-clause join orders chosen once from those
//!   statistics instead of re-ranking literals at every backtracking node,
//!   plus per-plan execution feedback ([`PlanFeedback`]) that triggers
//!   recosting when estimates diverge from observed candidate rows;
//! * [`executor`] — budgeted execution of a compiled plan against the
//!   positional hash indexes, recording per-step candidate rows;
//! * [`cache`] — a memoized coverage cache keyed by canonical
//!   (variable-renamed) clauses, with generality-order propagation
//!   ([`Prior::GeneralizationOf`]) promoted to an engine invariant, a
//!   budget-aware tier for `Exhausted` verdicts, and the cross-round
//!   [`BatchPlanCache`] for compiled shared-prefix tries;
//! * [`pool`] — a persistent worker pool with work-stealing over examples,
//!   replacing per-call thread spawning.
//!
//! The [`Engine`] front end combines all of these; every learner in the
//! workspace (Castor, FOIL, Golem, Progol, ProGolem) routes coverage tests
//! through it.

pub mod arena;
pub mod batch;
pub mod cache;
pub mod cost;
pub mod executor;
pub mod fx;
pub mod plan;
pub mod pool;
pub mod stats;

pub use arena::{CacheArena, CacheBinding, ClauseLens, RelationLens};
pub use batch::{BatchItemStats, BatchPlan};
pub use cache::{
    canonical_group, canonicalize, BatchFetch, BatchPlanCache, CoverageCache, TrieExhaustions,
    EXHAUSTION_STRIKE_LIMIT,
};
pub use castor_logic::{CoverageOutcome, EvalBudget, DEFAULT_EVAL_NODE_BUDGET};
pub use cost::{CostModel, CostModelKind, CostOverrides, HistogramCost, UniformCost};
pub use fx::{FxBuildHasher, FxHashMap, FxHasher};
pub use plan::{ClausePlan, PlanFeedback, PlanStep};
pub use pool::{PoolStats, WorkerPool};
pub use stats::{DatabaseStatistics, EngineReport, EngineStats};

use castor_logic::{Atom, Clause};
use castor_obs::{Histogram, Obs};
use castor_relational::{DatabaseInstance, MutationBatch, MutationSummary, Tuple};
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// One accepted covering-round clause, reported live while a learner runs.
/// Emitted by every covering loop in the workspace (the generic
/// `covering_loop` in `castor-learners` and Castor's own loop in
/// `castor-core`) through the sink installed with
/// [`Engine::set_progress_sink`] — the serving layer streams these to v2
/// wire clients as incremental `LearnJob` progress frames.
#[derive(Debug, Clone, PartialEq)]
pub struct LearnProgress {
    /// 0-based covering-round index (one round = one accepted clause).
    pub round: usize,
    /// The clause this round added to the definition.
    pub clause: Clause,
    /// Positive examples the clause covered (of those still uncovered).
    pub covered_positive: usize,
    /// Negative examples the clause covered.
    pub covered_negative: usize,
    /// Positive examples still uncovered after this round.
    pub uncovered_remaining: usize,
}

/// The callback type installed with [`Engine::set_progress_sink`].
pub type ProgressSink = Arc<dyn Fn(&LearnProgress) + Send + Sync>;

/// The progress-sink runtime slot. A newtype so the closure (which has no
/// useful `Debug`) does not block `#[derive(Debug)]` on [`Engine`].
#[derive(Default)]
struct ProgressSlot(Mutex<Option<ProgressSink>>);

impl std::fmt::Debug for ProgressSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let installed = self.0.lock().unwrap_or_else(|e| e.into_inner()).is_some();
        f.debug_tuple("ProgressSlot").field(&installed).finish()
    }
}

/// Engine construction knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads for parallel coverage testing (1 = inline).
    pub threads: usize,
    /// Node budget per coverage test (replaces the old hardcoded
    /// `EVAL_NODE_BUDGET`); exhaustions are counted and reported.
    pub eval_budget: usize,
    /// Memoize coverage results per canonical clause.
    pub cache_coverage: bool,
    /// Maximum distinct clauses held by the coverage cache.
    pub cache_capacity: usize,
    /// Compile and reuse per-clause join plans; when disabled every test
    /// falls back to the interpreted evaluator (the ablation baseline).
    pub compile_plans: bool,
    /// Minimum pending examples before a `covered_set` call is spread over
    /// the worker pool.
    pub parallel_threshold: usize,
    /// The cost model consulted by plan and trie compilation (histogram by
    /// default; [`CostModelKind::Uniform`] is the ablation baseline).
    pub cost_model: CostModelKind,
    /// Plan executions observed before the feedback loop may judge the
    /// plan's estimates.
    pub recost_after: usize,
    /// Feedback re-planning threshold: when a cached plan's observed
    /// candidate rows diverge from its estimates by at least this factor
    /// (on any step), the plan is recompiled with the observed numbers.
    /// 0 disables feedback re-planning.
    pub recost_divergence: u32,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            threads: 1,
            eval_budget: DEFAULT_EVAL_NODE_BUDGET,
            cache_coverage: true,
            cache_capacity: 16_384,
            compile_plans: true,
            parallel_threshold: 8,
            cost_model: CostModelKind::Histogram,
            recost_after: 8,
            recost_divergence: 4,
        }
    }
}

impl EngineConfig {
    /// Returns a copy with the given worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Returns a copy with the given per-test node budget.
    pub fn with_eval_budget(mut self, budget: usize) -> Self {
        self.eval_budget = budget;
        self
    }

    /// Returns a copy with memoization disabled (benchmark baseline).
    pub fn without_cache(mut self) -> Self {
        self.cache_coverage = false;
        self
    }

    /// Returns a copy with plan compilation disabled (benchmark baseline).
    pub fn without_compiled_plans(mut self) -> Self {
        self.compile_plans = false;
        self
    }

    /// Returns a copy using the given cost model.
    pub fn with_cost_model(mut self, model: CostModelKind) -> Self {
        self.cost_model = model;
        self
    }

    /// Returns a copy using the uniform-selectivity baseline model
    /// (ablation/benchmark baseline).
    pub fn with_uniform_costs(mut self) -> Self {
        self.cost_model = CostModelKind::Uniform;
        self
    }

    /// Returns a copy with feedback re-planning disabled (plans are only
    /// recompiled by epoch invalidation).
    pub fn without_feedback_replanning(mut self) -> Self {
        self.recost_divergence = 0;
        self
    }
}

/// Prior knowledge a caller can hand to [`Engine::covered_set`] to skip
/// redundant tests.
#[derive(Debug, Clone, Copy, Default)]
pub enum Prior<'a> {
    /// No prior knowledge: test every example (cache permitting).
    #[default]
    None,
    /// These examples are known covered (legacy explicit form).
    Known(&'a HashSet<Tuple>),
    /// The queried clause generalizes this clause, so everything the parent
    /// is cached as covering is covered — the generality order of
    /// Section 7.5.4 as an engine invariant.
    GeneralizationOf(&'a Clause),
}

/// Narrows an exhaustion scope across an evaluation: the budget recorded
/// for a new exhaustion is the one captured when the evaluation *started*
/// (a concurrent budget raise must not inflate the stored key), and the
/// verdicts are dropped entirely (`None`) when a cancellation fired before
/// write-back (the exhaustions are aborts, not budget verdicts).
fn narrow_scope(start: Option<usize>, end: Option<usize>) -> Option<usize> {
    match (start, end) {
        (Some(a), Some(b)) => Some(a.min(b)),
        _ => None,
    }
}

/// Positive/negative coverage counts for one clause of a batch — the
/// engine-level shape of the learners' `ClauseCoverage`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClauseCounts {
    /// Number of positive examples covered.
    pub positive: usize,
    /// Number of negative examples covered.
    pub negative: usize,
}

/// A pluggable per-example coverage test driven by [`CoverageRuntime`]:
/// the database-evaluation engine and the subsumption-based coverage engine
/// in `castor-core` differ only in this trait's methods.
pub trait CoverageTester {
    /// Evaluates one (canonical clause, example) pair, counting the test in
    /// the runtime's metrics.
    fn test(&self, canonical: &Clause, example: &Tuple) -> CoverageOutcome;

    /// Builds the `'static` task executed by worker threads for a batch:
    /// the closure must own (`Arc`-clone) everything it touches.
    fn parallel_task(
        &self,
        canonical: &Clause,
        examples: &Arc<Vec<Tuple>>,
    ) -> Box<dyn Fn(usize) -> CoverageOutcome + Send + Sync + 'static>;

    /// Builds the `'static` task evaluating `(clause slot, example index)`
    /// pairs from a multi-clause batch — the worker-side counterpart of
    /// [`CoverageRuntime::covered_sets_batch`]. The closure must own
    /// (`Arc`-clone) everything it touches.
    fn pair_task(
        &self,
        canonicals: &Arc<Vec<Clause>>,
        examples: &Arc<Vec<Tuple>>,
        pairs: &Arc<Vec<(usize, usize)>>,
    ) -> Box<dyn Fn(usize) -> CoverageOutcome + Send + Sync + 'static>;

    /// The node budget this tester's exhaustion verdicts are comparable
    /// under — the *scope* of the memo cache's budget-aware exhaustion tier:
    /// `Some(budget)` makes exhaustions cacheable keyed by that budget and
    /// lets cached exhaustions observed under an equal-or-larger budget be
    /// served; `None` (the default) keeps exhaustions out of the cache
    /// entirely, e.g. while a cancellation token can abort searches through
    /// the exhaustion path.
    fn exhaustion_scope(&self) -> Option<usize> {
        None
    }
}

/// The orchestration shared by every coverage engine: canonical-clause
/// keying, prior handling (including the generality order), batched memo
/// lookup/writeback, and worker-pool dispatch. Parameterized by a
/// [`CoverageTester`] so the database executor and the θ-subsumption tester
/// stay a single code path.
///
/// The memo cache is reached through a [`CacheBinding`]: a private binding
/// behaves like owning the cache directly, while a binding into a shared
/// [`CacheArena`] translates every cache key through the engine's variant
/// lens into the logical database's canonical schema — so verdicts proven
/// by *other* schema variants are served here (and vice versa). Only cache
/// keys are translated; plans compile and execute against this engine's
/// own schema.
#[derive(Debug)]
pub struct CoverageRuntime {
    binding: CacheBinding,
    pool: Arc<WorkerPool>,
    metrics: Arc<EngineStats>,
    cache_coverage: bool,
    parallel_threshold: usize,
}

impl CoverageRuntime {
    /// Builds a runtime from the engine configuration and a (possibly
    /// shared) worker pool, with a private coverage cache.
    pub fn new(config: &EngineConfig, pool: Arc<WorkerPool>) -> Self {
        CoverageRuntime::with_binding(config, pool, CacheBinding::private(config.cache_capacity))
    }

    /// Builds a runtime probing the coverage cache through `binding`
    /// (typically one handed out by a shared [`CacheArena`]).
    pub fn with_binding(
        config: &EngineConfig,
        pool: Arc<WorkerPool>,
        binding: CacheBinding,
    ) -> Self {
        CoverageRuntime {
            binding,
            pool,
            metrics: Arc::new(EngineStats::new()),
            cache_coverage: config.cache_coverage,
            parallel_threshold: config.parallel_threshold,
        }
    }

    /// The worker pool this runtime dispatches on.
    pub fn pool(&self) -> &Arc<WorkerPool> {
        &self.pool
    }

    /// The shared counters (testers bump `coverage_tests` and
    /// `budget_exhausted` through this handle).
    pub fn metrics(&self) -> &Arc<EngineStats> {
        &self.metrics
    }

    /// The coverage cache behind this runtime's binding.
    fn cache(&self) -> &CoverageCache {
        self.binding.cache()
    }

    /// The variant id this runtime's cache writes are tagged with.
    fn variant(&self) -> u16 {
        self.binding.variant()
    }

    /// The cache key of an α-canonical clause: the clause itself for a
    /// private binding, its (re-canonicalized) canonical-schema image for
    /// an arena binding. The lens maps literals across schemas, which can
    /// reorder variable first occurrences, so the image is α-canonicalized
    /// again — α-equivalent images from different variants must collide.
    fn key_of<'a>(&self, canonical: &'a Clause) -> std::borrow::Cow<'a, Clause> {
        match self.binding.key_of(canonical) {
            Some(mapped) => {
                EngineStats::bump(&self.metrics.cross_variant_translations);
                std::borrow::Cow::Owned(canonicalize(&mapped))
            }
            None => std::borrow::Cow::Borrowed(canonical),
        }
    }

    /// Counts cache serves whose verdict another variant proved.
    fn note_cross_hits(&self, cross: usize) {
        if cross > 0 {
            EngineStats::add(&self.metrics.cross_variant_hits, cross);
        }
    }

    /// Snapshot of the runtime counters (including the coverage cache's
    /// budget-tier eviction count, which the cache tracks itself).
    pub fn report(&self) -> EngineReport {
        let mut report = self.metrics.snapshot();
        report.exhaustions_evicted = self.cache().exhaustions_evicted();
        report
    }

    /// Drops cached coverage for every clause referencing one of
    /// `relations` (the mutation-invalidation hook; see
    /// [`CoverageCache::invalidate_relations`]). Returns the number of
    /// clauses dropped. Under an arena binding the dirty set is first
    /// translated to the canonical relations it can influence — cached keys
    /// name canonical-schema relations.
    pub fn invalidate_relations(&self, relations: &std::collections::BTreeSet<String>) -> usize {
        let dropped = match self.binding.relations_of(relations) {
            Some(translated) => self.cache().invalidate_relations(&translated),
            None => self.cache().invalidate_relations(relations),
        };
        if dropped > 0 {
            EngineStats::add(&self.metrics.cache_clauses_invalidated, dropped);
        }
        dropped
    }

    /// Drops the whole coverage cache (see [`CoverageCache::clear`]).
    pub fn clear_cache(&self) {
        self.cache().clear();
    }

    /// Drops one clause's cached exhaustion entries (see
    /// [`CoverageCache::drop_exhausted`]) — called when the clause's plan
    /// is recosted, since those exhaustions were observed under the
    /// discarded join order.
    pub fn drop_exhausted(&self, canonical: &Clause) -> usize {
        self.cache().drop_exhausted(&self.key_of(canonical))
    }

    /// Drops every cached exhaustion entry (see
    /// [`CoverageCache::drop_all_exhausted`]) — called when the plan table
    /// is cleared at capacity, which reverts every recosted join order.
    pub fn drop_all_exhausted(&self) -> usize {
        self.cache().drop_all_exhausted()
    }

    /// Tri-state coverage test for one example through the memo cache.
    pub fn try_covers<T: CoverageTester>(
        &self,
        tester: &T,
        canonical: &Clause,
        example: &Tuple,
    ) -> CoverageOutcome {
        let scope = tester.exhaustion_scope();
        let key = self.key_of(canonical);
        if self.cache_coverage {
            let (cached, cross) = self.cache().get_from(&key, example, scope, self.variant());
            if let Some(outcome) = cached {
                EngineStats::bump(&self.metrics.cache_hits);
                self.note_cross_hits(cross as usize);
                return outcome;
            }
            EngineStats::bump(&self.metrics.cache_misses);
        }
        let outcome = tester.test(canonical, example);
        if self.cache_coverage {
            // Narrow the scope across the test: a cancellation that fired
            // during it turned an exhaustion into an abort (drop), and a
            // concurrent budget change must not inflate the stored key.
            self.cache().insert_many_from(
                &key,
                std::iter::once((example.clone(), outcome)),
                narrow_scope(scope, tester.exhaustion_scope()),
                self.variant(),
            );
        }
        outcome
    }

    /// The subset of `examples` covered by the canonical clause. `prior`
    /// feeds the generality order; pending examples are spread over the
    /// worker pool when there are enough of them.
    pub fn covered_set<T: CoverageTester>(
        &self,
        tester: &T,
        canonical: &Clause,
        examples: &[Tuple],
        prior: Prior<'_>,
    ) -> HashSet<Tuple> {
        let mut covered: HashSet<Tuple> = HashSet::new();
        let mut skip: HashSet<Tuple> = HashSet::new();
        // `cacheable_skips`: only generality-derived facts go into the memo
        // table. Entries from Prior::Known are the *caller's* claim — they
        // shape this result but must not poison the shared cache.
        let mut cacheable_skips = false;
        match prior {
            Prior::None => {}
            Prior::Known(known) => {
                for e in examples {
                    if known.contains(e) {
                        covered.insert(e.clone());
                        skip.insert(e.clone());
                    }
                }
            }
            Prior::GeneralizationOf(parent) => {
                let parent_canonical = canonicalize(parent);
                let parent_key = self.key_of(&parent_canonical);
                let (subset, cross) =
                    self.cache()
                        .covered_subset_from(&parent_key, examples, self.variant());
                self.note_cross_hits(cross);
                for e in subset {
                    covered.insert(e.clone());
                    skip.insert(e);
                }
                cacheable_skips = true;
            }
        }
        let scope = tester.exhaustion_scope();
        let key = self.key_of(canonical);
        if !skip.is_empty() {
            EngineStats::add(&self.metrics.generality_skips, skip.len());
            if self.cache_coverage && cacheable_skips {
                self.cache().insert_many_from(
                    &key,
                    skip.iter().map(|e| (e.clone(), CoverageOutcome::Covered)),
                    scope,
                    self.variant(),
                );
            }
        }

        // Answer what the cache can (one lock for the whole batch), then
        // evaluate the remainder.
        let mut pending: Vec<Tuple> = Vec::new();
        let cached = if self.cache_coverage {
            let (rows, cross) = self
                .cache()
                .get_batch_from(&key, examples, scope, self.variant());
            self.note_cross_hits(cross);
            rows
        } else {
            vec![None; examples.len()]
        };
        let mut hits = 0usize;
        for (e, cached) in examples.iter().zip(cached) {
            if skip.contains(e) || covered.contains(e) {
                continue;
            }
            match cached {
                Some(outcome) => {
                    hits += 1;
                    if outcome.is_covered() {
                        covered.insert(e.clone());
                    }
                }
                None => pending.push(e.clone()),
            }
        }
        if self.cache_coverage {
            EngineStats::add(&self.metrics.cache_hits, hits);
            EngineStats::add(&self.metrics.cache_misses, pending.len());
        }
        if pending.is_empty() {
            return covered;
        }

        let outcomes: Vec<CoverageOutcome> =
            if self.pool.size() > 1 && pending.len() >= self.parallel_threshold {
                let examples = Arc::new(pending.clone());
                let task = tester.parallel_task(canonical, &examples);
                self.pool.map_indices(examples.len(), task)
            } else {
                pending.iter().map(|e| tester.test(canonical, e)).collect()
            };
        if self.cache_coverage {
            // Narrow the scope across the evaluation: mid-flight
            // cancellations drop the exhaustions, concurrent budget
            // changes cannot inflate the stored key.
            self.cache().insert_many_from(
                &key,
                pending.iter().cloned().zip(outcomes.iter().copied()),
                narrow_scope(scope, tester.exhaustion_scope()),
                self.variant(),
            );
        }
        for (e, outcome) in pending.into_iter().zip(outcomes) {
            if outcome.is_covered() {
                covered.insert(e);
            }
        }
        covered
    }

    /// Per-clause covered subsets for a whole batch of candidate clauses,
    /// generic over the tester: α-equivalent candidates are deduplicated,
    /// priors and the memo cache are consulted once per batch (single cache
    /// lock), and the remaining (clause, example) pairs are evaluated as one
    /// flat work list on the pool. This is the fallback the trie-backed
    /// [`Engine`] path shares its pre/post-processing with, and the primary
    /// batch path of the θ-subsumption coverage engine in `castor-core`.
    ///
    /// `priors` is either empty (no prior knowledge) or exactly one
    /// [`Prior`] per clause.
    pub fn covered_sets_batch<T: CoverageTester>(
        &self,
        tester: &T,
        clauses: &[Clause],
        examples: &[Tuple],
        priors: &[Prior<'_>],
    ) -> Vec<HashSet<Tuple>> {
        if clauses.is_empty() {
            return Vec::new();
        }
        let scope = tester.exhaustion_scope();
        let mut prep = self.prepare_batch(clauses, priors, examples, scope);
        let pairs: Vec<(usize, usize)> = prep
            .pending
            .iter()
            .enumerate()
            .flat_map(|(slot, exs)| exs.iter().map(move |&ei| (slot, ei)))
            .collect();
        if !pairs.is_empty() {
            let outcomes = self.evaluate_pairs(tester, &prep.unique, examples, &pairs);
            // Scope narrowed across the evaluation (see `covered_set`).
            // Split the prep borrows: cache keys stay immutable while the
            // covered sets absorb the outcomes.
            let BatchPrep {
                unique,
                keys,
                covered,
                ..
            } = &mut prep;
            self.absorb_pair_outcomes(
                keys.as_deref().unwrap_or(unique),
                examples,
                &pairs,
                &outcomes,
                covered,
                narrow_scope(scope, tester.exhaustion_scope()),
            );
        }
        prep.finish()
    }

    /// The batch pre-pass shared by every batched path: canonicalize and
    /// deduplicate the candidates, fold per-candidate priors into known
    /// coverage (counting generality skips and caching the sound ones), and
    /// answer what the memo cache can under a single lock. What remains is
    /// the per-slot list of example indices that genuinely need evaluation.
    fn prepare_batch(
        &self,
        clauses: &[Clause],
        priors: &[Prior<'_>],
        examples: &[Tuple],
        scope: Option<usize>,
    ) -> BatchPrep {
        debug_assert!(
            priors.is_empty() || priors.len() == clauses.len(),
            "priors must be empty or parallel to the clause batch"
        );
        let mut unique: Vec<Clause> = Vec::new();
        let mut slot_of: Vec<usize> = Vec::with_capacity(clauses.len());
        let mut index: fx::FxHashMap<Clause, usize> = fx::FxHashMap::default();
        for clause in clauses {
            let canonical = canonicalize(clause);
            let slot = *index.entry(canonical.clone()).or_insert_with(|| {
                unique.push(canonical);
                unique.len() - 1
            });
            slot_of.push(slot);
        }
        // Arena bindings key the cache by the canonical-schema image, one
        // translation per unique clause. Execution keeps using `unique` —
        // the image names relations of the canonical schema, not this
        // engine's.
        let keys: Option<Vec<Clause>> = self
            .binding
            .translates()
            .then(|| unique.iter().map(|c| self.key_of(c).into_owned()).collect());
        let key_at = |slot: usize| keys.as_deref().map_or(&unique[slot], |k| &k[slot]);

        let mut covered: Vec<HashSet<Tuple>> = vec![HashSet::new(); unique.len()];
        // Only generality-derived skips may be written back to the shared
        // cache; `Prior::Known` entries are the caller's claim.
        let mut cacheable: Vec<Vec<Tuple>> = vec![Vec::new(); unique.len()];
        for (i, prior) in priors.iter().enumerate() {
            let slot = slot_of[i];
            match prior {
                Prior::None => {}
                Prior::Known(known) => {
                    for e in examples {
                        if known.contains(e) {
                            covered[slot].insert(e.clone());
                        }
                    }
                }
                Prior::GeneralizationOf(parent) => {
                    let parent_canonical = canonicalize(parent);
                    let parent_key = self.key_of(&parent_canonical);
                    let (subset, cross) =
                        self.cache()
                            .covered_subset_from(&parent_key, examples, self.variant());
                    self.note_cross_hits(cross);
                    for e in subset {
                        if covered[slot].insert(e.clone()) {
                            cacheable[slot].push(e);
                        }
                    }
                }
            }
        }
        let skips: usize = covered.iter().map(HashSet::len).sum();
        if skips > 0 {
            EngineStats::add(&self.metrics.generality_skips, skips);
        }
        if self.cache_coverage {
            for (slot, derived) in cacheable.into_iter().enumerate() {
                if !derived.is_empty() {
                    self.cache().insert_many_from(
                        key_at(slot),
                        derived.into_iter().map(|e| (e, CoverageOutcome::Covered)),
                        scope,
                        self.variant(),
                    );
                }
            }
        }

        let rows = if self.cache_coverage {
            let probe = keys.as_deref().unwrap_or(&unique);
            let (rows, cross) =
                self.cache()
                    .get_batch_multi_from(probe, examples, scope, self.variant());
            self.note_cross_hits(cross);
            rows
        } else {
            vec![vec![None; examples.len()]; unique.len()]
        };
        let mut pending: Vec<Vec<usize>> = vec![Vec::new(); unique.len()];
        let mut hits = 0usize;
        let mut misses = 0usize;
        for (slot, row) in rows.into_iter().enumerate() {
            for (ei, cached) in row.into_iter().enumerate() {
                if covered[slot].contains(&examples[ei]) {
                    continue;
                }
                match cached {
                    Some(outcome) => {
                        hits += 1;
                        if outcome.is_covered() {
                            covered[slot].insert(examples[ei].clone());
                        }
                    }
                    None => {
                        misses += 1;
                        pending[slot].push(ei);
                    }
                }
            }
        }
        if self.cache_coverage {
            EngineStats::add(&self.metrics.cache_hits, hits);
            EngineStats::add(&self.metrics.cache_misses, misses);
        }
        BatchPrep {
            unique,
            keys,
            slot_of,
            covered,
            pending,
        }
    }

    /// Evaluates a flat `(slot, example index)` work list, on the pool when
    /// it is large enough. Testers bump `coverage_tests`/`budget_exhausted`
    /// themselves.
    fn evaluate_pairs<T: CoverageTester>(
        &self,
        tester: &T,
        unique: &[Clause],
        examples: &[Tuple],
        pairs: &[(usize, usize)],
    ) -> Vec<CoverageOutcome> {
        if self.pool.size() > 1 && pairs.len() >= self.parallel_threshold {
            let canonicals = Arc::new(unique.to_vec());
            let examples = Arc::new(examples.to_vec());
            let pairs = Arc::new(pairs.to_vec());
            let task = tester.pair_task(&canonicals, &examples, &pairs);
            self.pool.map_indices(pairs.len(), task)
        } else {
            pairs
                .iter()
                .map(|&(slot, ei)| tester.test(&unique[slot], &examples[ei]))
                .collect()
        }
    }

    /// Writes evaluated pair outcomes back to the memo cache (grouped per
    /// clause, one lock each) and folds covered verdicts into the per-slot
    /// covered sets. `keys` are the *cache keys* of the evaluated slots
    /// (the canonical clauses themselves under a private binding, their
    /// canonical-schema images under an arena binding).
    fn absorb_pair_outcomes(
        &self,
        keys: &[Clause],
        examples: &[Tuple],
        pairs: &[(usize, usize)],
        outcomes: &[CoverageOutcome],
        covered: &mut [HashSet<Tuple>],
        scope: Option<usize>,
    ) {
        if self.cache_coverage {
            // One pass: bucket outcomes by slot, then one insert_many per
            // clause that actually evaluated something.
            let mut by_slot: Vec<Vec<(Tuple, CoverageOutcome)>> = vec![Vec::new(); keys.len()];
            for (&(slot, ei), &outcome) in pairs.iter().zip(outcomes) {
                by_slot[slot].push((examples[ei].clone(), outcome));
            }
            for (slot, slot_outcomes) in by_slot.into_iter().enumerate() {
                if !slot_outcomes.is_empty() {
                    self.cache().insert_many_from(
                        &keys[slot],
                        slot_outcomes,
                        scope,
                        self.variant(),
                    );
                }
            }
        }
        for (&(slot, ei), outcome) in pairs.iter().zip(outcomes) {
            if outcome.is_covered() {
                covered[slot].insert(examples[ei].clone());
            }
        }
    }
}

/// The shared pre-pass state of one batched evaluation: canonical unique
/// clauses, their cache keys when the binding translates (`None` under a
/// private binding — the canonical clauses are the keys), the mapping from
/// the caller's clause order onto them, known coverage (priors + cache),
/// and the (slot → example indices) work that still needs evaluation.
struct BatchPrep {
    unique: Vec<Clause>,
    keys: Option<Vec<Clause>>,
    slot_of: Vec<usize>,
    covered: Vec<HashSet<Tuple>>,
    pending: Vec<Vec<usize>>,
}

impl BatchPrep {
    /// Maps the per-slot covered sets back onto the caller's clause order.
    fn finish(self) -> Vec<HashSet<Tuple>> {
        let BatchPrep {
            slot_of, covered, ..
        } = self;
        slot_of.iter().map(|&s| covered[s].clone()).collect()
    }
}

/// A fetched plan plus the feedback handle executors record into (`None`
/// once the plan's estimates are validated and recording has stopped).
type FetchedPlan = (Arc<ClausePlan>, Option<Arc<PlanFeedback>>);

/// One cached compiled plan plus the execution feedback shared by every
/// executor running it (the raw material of feedback re-planning).
#[derive(Debug)]
struct PlanEntry {
    plan: Arc<ClausePlan>,
    feedback: Arc<PlanFeedback>,
}

impl PlanEntry {
    fn new(plan: Arc<ClausePlan>) -> Self {
        let feedback = Arc::new(PlanFeedback::new(plan.steps.len()));
        PlanEntry { plan, feedback }
    }
}

/// The database-backed evaluation engine: statistics, compiled plans,
/// memoized coverage, and a persistent worker pool behind one front end.
///
/// The engine is *versioned*: it owns a live database reference that a
/// serving layer mutates through [`Engine::apply`]. Every compiled plan
/// records the mutation epochs of the relations it was costed against and
/// is re-planned lazily when a touched relation's epoch advances (the epoch
/// check runs on every plan fetch, so stale-plan reuse is impossible by
/// construction); the coverage cache drops exactly the clauses that
/// reference a mutated relation. Evaluation entry points and mutations are
/// serialized by a reader–writer gate: any number of concurrent evaluations
/// run against one consistent snapshot, and a mutation batch applies only
/// between them.
#[derive(Debug)]
pub struct Engine {
    db: RwLock<Arc<DatabaseInstance>>,
    db_stats: RwLock<Arc<DatabaseStatistics>>,
    plans: Mutex<fx::FxHashMap<Clause, PlanEntry>>,
    /// Cross-round cache of compiled shared-prefix tries (see
    /// [`BatchPlanCache`]).
    batch_plans: BatchPlanCache,
    runtime: CoverageRuntime,
    config: EngineConfig,
    /// Live per-test node budget (initialized from the config; a serving
    /// session can override it for the duration of its jobs).
    eval_budget: AtomicUsize,
    /// Cancellation token installed by the current serving job, if any;
    /// threaded into every [`EvalBudget`] the executors consume.
    cancel: Mutex<Option<Arc<AtomicBool>>>,
    /// Deadline token installed by the current serving job, if any: a
    /// second abort source, set by the serving layer's deadline watchdog
    /// when the job's deadline passes. Threaded into every [`EvalBudget`]
    /// next to the cancellation token.
    deadline: Mutex<Option<Arc<AtomicBool>>>,
    /// Per-job learn-progress sink installed by the serving layer, if any;
    /// covering loops report each accepted clause through it.
    progress: ProgressSlot,
    /// Readers: evaluation entry points. Writer: [`Engine::apply`].
    gate: RwLock<()>,
    /// Instrumentation: latency histograms plus the trace id of the job
    /// currently driving this engine.
    obs: EngineObs,
}

/// The engine's slice of an [`Obs`] handle: pre-resolved histograms for
/// the load-bearing paths, and the trace id the serving layer installs
/// before running a job (engine spans join that job's timeline).
#[derive(Debug)]
struct EngineObs {
    obs: Arc<Obs>,
    /// Wall time of one `covered_sets_batch*` call (trie or fallback).
    batch_eval_ns: Arc<Histogram>,
    /// Fresh plan/trie compilation time.
    plan_compile_ns: Arc<Histogram>,
    /// Feedback-driven recompilation time.
    plan_recost_ns: Arc<Histogram>,
    /// Coverage-cache probe phase of a batch (memo lookup + prior
    /// propagation, before any plan executes).
    cache_probe_ns: Arc<Histogram>,
    /// Trace id installed by [`Engine::set_trace`]; 0 = no active job.
    current_trace: AtomicU64,
}

impl EngineObs {
    fn new(obs: Arc<Obs>) -> Self {
        EngineObs::with_label(obs, None)
    }

    /// With `db: Some(name)` every histogram carries a `db` label, so a
    /// multi-database server's eval latencies separate per database in
    /// one scrape; `None` keeps the plain unlabeled series (standalone
    /// engines, benchmarks).
    fn with_label(obs: Arc<Obs>, db: Option<&str>) -> Self {
        let r = obs.registry();
        let hist = |name: &str, help: &str| match db {
            Some(db) => r.labeled_histogram(name, help, &[("db", db)]),
            None => r.histogram(name, help),
        };
        EngineObs {
            batch_eval_ns: hist(
                "castor_engine_batch_eval_ns",
                "Latency of one batched coverage evaluation (a clause batch over an example list).",
            ),
            plan_compile_ns: hist(
                "castor_engine_plan_compile_ns",
                "Latency of compiling a fresh clause plan or shared-prefix trie.",
            ),
            plan_recost_ns: hist(
                "castor_engine_plan_recost_ns",
                "Latency of feedback-driven plan/trie recompilation.",
            ),
            cache_probe_ns: hist(
                "castor_engine_cache_probe_ns",
                "Latency of the coverage-cache probe phase of a batch (memo lookup + priors).",
            ),
            current_trace: AtomicU64::new(0),
            obs,
        }
    }
}

impl Engine {
    /// Builds an engine over a snapshot of `db`. The instance is deep-cloned
    /// once (tuples and indexes) so worker threads can share it; callers
    /// that already hold an `Arc` should use [`Engine::from_arc`] instead.
    pub fn new(db: &DatabaseInstance, config: EngineConfig) -> Self {
        Engine::from_arc(Arc::new(db.clone()), config)
    }

    /// Builds an engine sharing `db` without copying it, with a private
    /// worker pool sized by the configuration.
    pub fn from_arc(db: Arc<DatabaseInstance>, config: EngineConfig) -> Self {
        let pool = Arc::new(WorkerPool::new(config.threads));
        Engine::with_pool(db, config, pool)
    }

    /// Builds an engine sharing `db` and the caller's worker pool — the
    /// serving layer registers many databases on one `Server` and drives
    /// every engine off a single set of workers.
    pub fn with_pool(
        db: Arc<DatabaseInstance>,
        config: EngineConfig,
        pool: Arc<WorkerPool>,
    ) -> Self {
        Engine::with_observability(db, config, pool, Obs::enabled_default())
    }

    /// [`Engine::with_pool`] recording into the caller's [`Obs`] handle —
    /// the serving layer passes its server-wide handle so engine latency
    /// histograms land in the registry the wire scrape reads, and engine
    /// spans land in the server's trace ring. Engines built through the
    /// other constructors get a private enabled handle (histogram names
    /// are idempotent per registry, so engines sharing a handle share
    /// histograms).
    pub fn with_observability(
        db: Arc<DatabaseInstance>,
        config: EngineConfig,
        pool: Arc<WorkerPool>,
        obs: Arc<Obs>,
    ) -> Self {
        Engine::build(db, config, pool, EngineObs::new(obs), None)
    }

    /// [`Engine::with_observability`], but every engine latency histogram
    /// carries a `db="<label>"` label. A multi-database server registers
    /// each engine under its database name so one scrape separates eval
    /// latencies per database instead of folding them into one series.
    pub fn with_labeled_observability(
        db: Arc<DatabaseInstance>,
        config: EngineConfig,
        pool: Arc<WorkerPool>,
        obs: Arc<Obs>,
        db_label: &str,
    ) -> Self {
        Engine::build(
            db,
            config,
            pool,
            EngineObs::with_label(obs, Some(db_label)),
            None,
        )
    }

    /// [`Engine::with_labeled_observability`], but probing the coverage
    /// cache through a [`CacheBinding`] from a shared [`CacheArena`]: this
    /// engine's database is one schema variant of a logical database, and
    /// verdicts proven by the other variants sharing the arena are served
    /// here (keyed by each clause's canonical-schema image). Pass
    /// `db_label = None` for unlabeled histograms.
    pub fn with_cache_binding(
        db: Arc<DatabaseInstance>,
        config: EngineConfig,
        pool: Arc<WorkerPool>,
        obs: Arc<Obs>,
        db_label: Option<&str>,
        binding: CacheBinding,
    ) -> Self {
        Engine::build(
            db,
            config,
            pool,
            EngineObs::with_label(obs, db_label),
            Some(binding),
        )
    }

    fn build(
        db: Arc<DatabaseInstance>,
        config: EngineConfig,
        pool: Arc<WorkerPool>,
        obs: EngineObs,
        binding: Option<CacheBinding>,
    ) -> Self {
        let db_stats = DatabaseStatistics::gather(&db);
        let runtime = match binding {
            Some(binding) => CoverageRuntime::with_binding(&config, pool, binding),
            None => CoverageRuntime::new(&config, pool),
        };
        Engine {
            db_stats: RwLock::new(Arc::new(db_stats)),
            plans: Mutex::new(fx::FxHashMap::default()),
            batch_plans: BatchPlanCache::new(config.cache_capacity),
            runtime,
            eval_budget: AtomicUsize::new(config.eval_budget),
            cancel: Mutex::new(None),
            deadline: Mutex::new(None),
            progress: ProgressSlot::default(),
            gate: RwLock::new(()),
            config,
            db: RwLock::new(db),
            obs,
        }
    }

    /// A consistent snapshot of the database the engine currently evaluates
    /// against. Mutations applied later ([`Engine::apply`]) never alter a
    /// snapshot already handed out (copy-on-write per relation).
    pub fn snapshot(&self) -> Arc<DatabaseInstance> {
        Arc::clone(&self.db.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// The current statistics snapshot (incrementally refreshed after every
    /// mutation batch).
    pub fn statistics(&self) -> Arc<DatabaseStatistics> {
        Arc::clone(&self.db_stats.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Applies a mutation batch to the live database: per-relation indexes
    /// and statistics are maintained incrementally, the mutated relations'
    /// epochs advance (invalidating affected compiled plans on their next
    /// fetch), and cached coverage for clauses referencing those relations
    /// is dropped. The batch waits for in-flight evaluations to finish and
    /// excludes new ones while it applies, so every evaluation sees either
    /// the pre-batch or the post-batch state — never a mix.
    pub fn apply(&self, batch: &MutationBatch) -> castor_relational::Result<MutationSummary> {
        let _exclusive = self.gate.write().unwrap_or_else(|e| e.into_inner());
        let metrics = self.runtime.metrics();
        let result = {
            let mut db = self.db.write().unwrap_or_else(|e| e.into_inner());
            Arc::make_mut(&mut db).apply_batch(batch)
        };
        // Refresh statistics even on a mid-batch error: ops before the
        // failing one are applied, and stale statistics would let an old
        // plan pass its epoch check against data it was not costed for.
        let changed = {
            let db = self.snapshot();
            let mut stats = self.db_stats.write().unwrap_or_else(|e| e.into_inner());
            Arc::make_mut(&mut stats).refresh(&db)
        };
        if !changed.is_empty() {
            let changed: std::collections::BTreeSet<String> = changed.into_iter().collect();
            self.runtime.invalidate_relations(&changed);
        }
        if result.is_ok() {
            EngineStats::bump(&metrics.mutation_batches);
        }
        result
    }

    /// Overrides the per-test node budget (serving sessions install their
    /// override for the duration of their jobs; pass the config value to
    /// restore the default).
    pub fn set_eval_budget(&self, budget: usize) {
        self.eval_budget.store(budget, Ordering::Relaxed);
    }

    /// The per-test node budget currently in effect.
    pub fn current_eval_budget(&self) -> usize {
        self.eval_budget.load(Ordering::Relaxed)
    }

    /// Installs (or clears) the cancellation token checked by the executor
    /// budget loop: once set, every in-flight coverage test unwinds through
    /// its budget-exhaustion path within one candidate tuple.
    pub fn set_cancel_token(&self, token: Option<Arc<AtomicBool>>) {
        *self.cancel.lock().unwrap_or_else(|e| e.into_inner()) = token;
    }

    /// Installs (or clears) the deadline token: set by the serving layer's
    /// deadline watchdog when the running job's deadline passes, it aborts
    /// in-flight coverage tests exactly like the cancellation token —
    /// through the budget-exhaustion path, within one candidate tuple.
    pub fn set_deadline_token(&self, token: Option<Arc<AtomicBool>>) {
        *self.deadline.lock().unwrap_or_else(|e| e.into_inner()) = token;
    }

    /// Installs (or clears) the learn-progress sink covering loops report
    /// accepted clauses through. Like the trace id and cancel token, this
    /// is a per-job slot: jobs on one engine are serialized by the
    /// per-database queue, so install-before / clear-after is sound.
    pub fn set_progress_sink(&self, sink: Option<ProgressSink>) {
        *self.progress.0.lock().unwrap_or_else(|e| e.into_inner()) = sink;
    }

    /// Reports one accepted covering-round clause to the installed sink
    /// (no-op when none is installed). The sink is cloned out before the
    /// call so slow consumers never hold the slot lock.
    pub fn emit_progress(&self, progress: &LearnProgress) {
        let sink = self
            .progress
            .0
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        if let Some(sink) = sink {
            sink(progress);
        }
    }

    /// Drops every memoized coverage result (administrative reset; routine
    /// mutation invalidation is relation-targeted and automatic).
    pub fn clear_coverage_cache(&self) {
        self.runtime.clear_cache();
    }

    /// A fresh budget for one coverage test: current node budget plus the
    /// installed cancellation token, if any. Public so sibling coverage
    /// engines (the θ-subsumption tester in `castor-core`) run their tests
    /// under the same session overrides and cancellation as this engine.
    pub fn budget_template(&self) -> EvalBudget {
        let nodes = self.current_eval_budget();
        let budget = match &*self.cancel.lock().unwrap_or_else(|e| e.into_inner()) {
            Some(token) => EvalBudget::with_cancel(nodes, Arc::clone(token)),
            None => EvalBudget::new(nodes),
        };
        match &*self.deadline.lock().unwrap_or_else(|e| e.into_inner()) {
            Some(token) => budget.with_deadline_token(Arc::clone(token)),
            None => budget,
        }
    }

    /// The engine's worker pool. `castor-core`'s subsumption coverage
    /// engine accepts this handle so one learner run drives a single pool.
    pub fn pool(&self) -> &Arc<WorkerPool> {
        self.runtime.pool()
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Snapshot of the engine counters. `exhaustions_evicted` folds in the
    /// trie-tier evictions tracked by the [`BatchPlanCache`] alongside the
    /// coverage cache's own.
    pub fn report(&self) -> EngineReport {
        let mut report = self.runtime.report();
        report.exhaustions_evicted += self.batch_plans.trie_exhaustions_evicted();
        report
    }

    /// The observability handle this engine records into.
    pub fn obs(&self) -> &Arc<Obs> {
        &self.obs.obs
    }

    /// Installs the trace id subsequent evaluations attribute their spans
    /// to (0 clears it). The serving layer calls this before running a
    /// job; jobs on one engine are serialized by the per-database queue,
    /// so a plain store is sound.
    pub fn set_trace(&self, trace: u64) {
        self.obs.current_trace.store(trace, Ordering::Relaxed);
    }

    /// The compiled join order currently cached for `clause`, rendered as
    /// one string per plan step (the literal executed at that step).
    /// `None` when no current plan is cached. The slow-job watchdog
    /// attaches this to its report so a stall can be read against the
    /// order that produced it.
    pub fn plan_order(&self, clause: &Clause) -> Option<Vec<String>> {
        let canonical = canonicalize(clause);
        let plans = self.plans.lock().unwrap_or_else(|e| e.into_inner());
        plans.get(&canonical).map(|entry| {
            entry
                .plan
                .steps
                .iter()
                .map(|step| canonical.body[step.literal].to_string())
                .collect()
        })
    }

    /// Takes the evaluation side of the mutation gate: mutations wait for
    /// the guard to drop and evaluations started after a mutation see its
    /// effects. Every public evaluation entry point takes this exactly once.
    fn read_gate(&self) -> std::sync::RwLockReadGuard<'_, ()> {
        self.gate.read().unwrap_or_else(|e| e.into_inner())
    }

    /// The exhaustion scope of this engine's coverage tests: the node
    /// budget exhaustions are comparable under, or `None` while a
    /// cancellation is *pending* (a cancelled search aborts through the
    /// exhaustion path, and those verdicts must never enter the cache —
    /// the runtime re-captures this scope at write-back time, so verdicts
    /// produced under a cancellation that fired mid-evaluation are dropped
    /// too). A merely *installed* but untriggered token keeps the tier
    /// active: serving sessions run every job with a token installed.
    fn exhaustion_scope(&self) -> Option<usize> {
        let tripped = |slot: &Mutex<Option<Arc<AtomicBool>>>| {
            slot.lock()
                .unwrap_or_else(|e| e.into_inner())
                .as_ref()
                .is_some_and(|token| token.load(Ordering::Relaxed))
        };
        if tripped(&self.cancel) || tripped(&self.deadline) {
            None
        } else {
            Some(self.current_eval_budget())
        }
    }

    /// The compiled plan for a canonical clause (plus its shared execution
    /// feedback), compiling on first use. Every fetch re-validates the
    /// cached plan's epoch stamps against the live statistics: a plan
    /// costed before a mutation of any relation it touches is discarded and
    /// recompiled, so a stale plan can never execute. A current plan whose
    /// recorded feedback diverges from its estimates past the configured
    /// threshold is *recosted*: recompiled with the observed candidate rows
    /// overriding the model (`plans_recosted`). Bounded like the coverage
    /// cache: at capacity the table is cleared rather than growing without
    /// limit.
    fn plan_for(&self, canonical: &Clause, stats: &DatabaseStatistics) -> FetchedPlan {
        let metrics = self.runtime.metrics();
        let model = self.config.cost_model.model();
        let mut plans = self.plans.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(entry) = plans.get(canonical) {
            if !entry.plan.is_current(stats) {
                EngineStats::bump(&metrics.plans_invalidated);
                plans.remove(canonical);
            } else if self.config.recost_divergence > 0
                && entry.feedback.check_due(self.config.recost_after)
                && {
                    // Allocation-free scan; a passing check defers the next
                    // one exponentially so hot, well-estimated plans pay a
                    // single atomic load per fetch.
                    let diverged = entry.feedback.divergence(&entry.plan)
                        >= self.config.recost_divergence as f64;
                    if !diverged {
                        entry.feedback.defer_check();
                    }
                    diverged
                }
            {
                // Feedback re-planning: recompile with the observed rows
                // beating the model, and start collecting fresh feedback
                // for the new order.
                let overrides = entry.feedback.overrides(&entry.plan);
                let timer = self.obs.obs.timer();
                let plan = Arc::new(ClausePlan::compile_with(
                    canonical, stats, model, &overrides,
                ));
                timer.stop_ns(&self.obs.plan_recost_ns);
                EngineStats::bump(&metrics.plans_recosted);
                // Exhaustions memoized for this clause were observed under
                // the discarded join order; the new one may decide them
                // within the same budget, so they must be re-evaluated.
                self.runtime.drop_exhausted(canonical);
                let entry = PlanEntry::new(plan);
                let out = (Arc::clone(&entry.plan), Some(Arc::clone(&entry.feedback)));
                plans.insert(canonical.clone(), entry);
                return out;
            } else {
                EngineStats::bump(&metrics.plan_cache_hits);
                // Validated feedback is not handed out: the estimates have
                // held through enough checks that per-probe recording is
                // pure overhead.
                let feedback =
                    (!entry.feedback.is_validated()).then(|| Arc::clone(&entry.feedback));
                return (Arc::clone(&entry.plan), feedback);
            }
        }
        if plans.len() >= self.config.cache_capacity {
            plans.clear();
            // The clear discarded every recosted order and its feedback:
            // clauses recompile to model-driven orders, under which cached
            // exhaustions (observed under the recosted orders) may be
            // beatable — drop them all, like a recost does per clause.
            self.runtime.drop_all_exhausted();
        }
        let timer = self.obs.obs.timer();
        let plan = Arc::new(ClausePlan::compile_with(
            canonical,
            stats,
            model,
            &CostOverrides::default(),
        ));
        timer.stop_ns(&self.obs.plan_compile_ns);
        EngineStats::bump(&metrics.plans_compiled);
        let entry = PlanEntry::new(plan);
        let out = (Arc::clone(&entry.plan), Some(Arc::clone(&entry.feedback)));
        plans.insert(canonical.clone(), entry);
        out
    }

    /// The compiled shared-prefix trie for one sibling group, served from
    /// the cross-round [`BatchPlanCache`] when a current entry exists.
    /// `bodies` must be in the canonical sorted order from
    /// [`canonical_group`]; the plan's candidate slots are *local* (indices
    /// into that order), mapped back through the slot map the caller kept.
    /// The hit path never clones an atom — owned keys are built only when
    /// a freshly compiled trie is stored.
    ///
    /// Returns the trie plus the feedback handle batch execution records
    /// observed candidate rows into (`None` once the trie's estimates are
    /// validated) plus the trie's exhaustion tier (budget-keyed memoized
    /// `Exhausted` verdicts scoped to this trie's execution order; see
    /// [`TrieExhaustions`]). A cached trie whose recorded feedback diverges
    /// from its node estimates past the configured threshold is *recosted*
    /// exactly like a [`ClausePlan`]: recompiled with the observed rows
    /// overriding the model, counted in `plans_recosted` — the store hands
    /// back a fresh (empty) exhaustion tier, since the old tier's verdicts
    /// were observed under the discarded order.
    fn batch_plan_for(
        &self,
        head: &Atom,
        bodies: &[&[castor_logic::Atom]],
        stats: &DatabaseStatistics,
    ) -> (
        Arc<BatchPlan>,
        Option<Arc<PlanFeedback>>,
        Arc<TrieExhaustions>,
    ) {
        let metrics = self.runtime.metrics();
        let model = self.config.cost_model.model();
        let mut recost: Option<batch::TrieCostOverrides> = None;
        match self.batch_plans.fetch(head, bodies, stats) {
            BatchFetch::Hit(plan, feedback, exhaustions) => {
                EngineStats::bump(&metrics.batch_plan_cache_hits);
                let diverged = self.config.recost_divergence > 0
                    && feedback.check_due(self.config.recost_after)
                    && {
                        let diverged = feedback
                            .divergence_by(|node| plan.node(node).estimated_cost)
                            >= self.config.recost_divergence as f64;
                        if !diverged {
                            feedback.defer_check();
                        }
                        diverged
                    };
                if !diverged {
                    let feedback = (!feedback.is_validated()).then_some(feedback);
                    return (plan, feedback, exhaustions);
                }
                // Feedback recosting: fall through to recompilation with
                // the observed rows beating the model.
                recost = Some(batch::TrieCostOverrides::from_feedback(&plan, &feedback));
            }
            BatchFetch::Stale => {
                EngineStats::bump(&metrics.batch_plans_invalidated);
            }
            BatchFetch::Miss => {}
        }
        let slotted: Vec<(usize, &[castor_logic::Atom])> =
            bodies.iter().enumerate().map(|(i, &b)| (i, b)).collect();
        let plan = match &recost {
            Some(overrides) => {
                let observed = batch::ObservedTrieCost {
                    inner: model,
                    overrides,
                };
                let timer = self.obs.obs.timer();
                let plan = Arc::new(BatchPlan::compile_with(head, &slotted, stats, &observed));
                timer.stop_ns(&self.obs.plan_recost_ns);
                EngineStats::bump(&metrics.plans_recosted);
                plan
            }
            None => {
                let timer = self.obs.obs.timer();
                let plan = Arc::new(BatchPlan::compile_with(head, &slotted, stats, model));
                timer.stop_ns(&self.obs.plan_compile_ns);
                EngineStats::bump(&metrics.batch_plans_compiled);
                plan
            }
        };
        let (feedback, exhaustions) = self.batch_plans.store(head, bodies, Arc::clone(&plan));
        (plan, Some(feedback), exhaustions)
    }

    /// Tri-state coverage test for one example, going through the cache and
    /// the compiled plan.
    pub fn try_covers(&self, clause: &Clause, example: &Tuple) -> CoverageOutcome {
        let _gate = self.read_gate();
        let canonical = canonicalize(clause);
        self.runtime.try_covers(self, &canonical, example)
    }

    /// Boolean coverage test (exhausted budgets count as "not covered").
    pub fn covers(&self, clause: &Clause, example: &Tuple) -> bool {
        let _gate = self.read_gate();
        let canonical = canonicalize(clause);
        self.runtime
            .try_covers(self, &canonical, example)
            .is_covered()
    }

    /// The subset of `examples` covered by `clause`. `prior` feeds the
    /// generality order: examples covered by a clause this one generalizes
    /// are accepted without a test. Pending examples are spread over the
    /// worker pool when there are enough of them.
    pub fn covered_set(
        &self,
        clause: &Clause,
        examples: &[Tuple],
        prior: Prior<'_>,
    ) -> HashSet<Tuple> {
        let _gate = self.read_gate();
        let canonical = canonicalize(clause);
        self.runtime.covered_set(self, &canonical, examples, prior)
    }

    /// Positive/negative coverage counts for `clause`.
    pub fn coverage_counts(
        &self,
        clause: &Clause,
        positive: &[Tuple],
        negative: &[Tuple],
    ) -> (usize, usize) {
        let _gate = self.read_gate();
        let canonical = canonicalize(clause);
        let pos = self
            .runtime
            .covered_set(self, &canonical, positive, Prior::None)
            .len();
        let neg = self
            .runtime
            .covered_set(self, &canonical, negative, Prior::None)
            .len();
        (pos, neg)
    }

    /// Positive/negative coverage counts for a whole beam of candidate
    /// clauses — the entry point the beam learners score candidates with.
    ///
    /// The positive and negative passes are *fused*: the engine walks the
    /// shared-prefix trie once over the concatenated example list and splits
    /// the per-clause covered sets back into per-class counts, halving
    /// head-binding and trie-dispatch overhead relative to two passes.
    pub fn coverage_counts_batch(
        &self,
        clauses: &[Clause],
        positive: &[Tuple],
        negative: &[Tuple],
    ) -> Vec<ClauseCounts> {
        let _gate = self.read_gate();
        let mut fused: Vec<Tuple> = Vec::with_capacity(positive.len() + negative.len());
        fused.extend_from_slice(positive);
        fused.extend_from_slice(negative);
        let sets = self.covered_sets_batch_gated(clauses, &[], &fused);
        let pos_set: HashSet<&Tuple> = positive.iter().collect();
        let neg_set: HashSet<&Tuple> = negative.iter().collect();
        sets.into_iter()
            .map(|covered| ClauseCounts {
                positive: covered.iter().filter(|e| pos_set.contains(e)).count(),
                negative: covered.iter().filter(|e| neg_set.contains(e)).count(),
            })
            .collect()
    }

    /// The subset of `examples` covered by each clause of a candidate
    /// batch, with no prior knowledge. See
    /// [`Engine::covered_sets_batch_with_priors`].
    pub fn covered_sets_batch(
        &self,
        clauses: &[Clause],
        examples: &[Tuple],
    ) -> Vec<HashSet<Tuple>> {
        let _gate = self.read_gate();
        self.covered_sets_batch_gated(clauses, &[], examples)
    }

    /// The subset of `examples` covered by each clause of a candidate
    /// batch. Sibling candidates produced by beam refinement share a head
    /// and a body prefix; the engine folds them into a literal trie
    /// ([`BatchPlan`]), executes the shared prefix join once per example,
    /// and forks per-candidate suffixes off the materialized prefix
    /// bindings — one index probe feeds every candidate in the beam.
    ///
    /// `priors` is empty or one [`Prior`] per clause (the generality order,
    /// exactly as in [`Engine::covered_set`]). The engine falls back to
    /// per-clause compiled plans when batching cannot help: plan compilation
    /// disabled, a batch of fewer than two clauses, or candidates that share
    /// no head with any other candidate.
    pub fn covered_sets_batch_with_priors(
        &self,
        clauses: &[Clause],
        priors: &[Prior<'_>],
        examples: &[Tuple],
    ) -> Vec<HashSet<Tuple>> {
        let _gate = self.read_gate();
        self.covered_sets_batch_gated(clauses, priors, examples)
    }

    /// [`Engine::covered_sets_batch_with_priors`] with the mutation gate
    /// already held by the caller. Records the whole call into the
    /// batch-eval latency histogram and, when a trace is installed,
    /// emits an `engine.batch_eval` span on the current job's timeline.
    fn covered_sets_batch_gated(
        &self,
        clauses: &[Clause],
        priors: &[Prior<'_>],
        examples: &[Tuple],
    ) -> Vec<HashSet<Tuple>> {
        let start_ns = self.obs.obs.now_ns();
        let timer = self.obs.obs.timer();
        let out = self.covered_sets_batch_inner(clauses, priors, examples);
        if timer.is_live() {
            let dur_ns = timer.stop_ns(&self.obs.batch_eval_ns);
            self.obs.obs.span_measured(
                "engine.batch_eval",
                self.obs.current_trace.load(Ordering::Relaxed),
                start_ns,
                dur_ns,
                vec![
                    ("clauses".to_string(), clauses.len().to_string()),
                    ("examples".to_string(), examples.len().to_string()),
                ],
            );
        }
        out
    }

    fn covered_sets_batch_inner(
        &self,
        clauses: &[Clause],
        priors: &[Prior<'_>],
        examples: &[Tuple],
    ) -> Vec<HashSet<Tuple>> {
        if clauses.is_empty() {
            return Vec::new();
        }
        let metrics = self.runtime.metrics();
        EngineStats::add(&metrics.batch_clauses, clauses.len());
        if !self.config.compile_plans || clauses.len() < 2 || examples.is_empty() {
            return self
                .runtime
                .covered_sets_batch(self, clauses, examples, priors);
        }
        // The batch prep opts out of the *clause-keyed* exhaustion tier
        // (`None` scope): trie execution charges shared-prefix probes to
        // every live candidate, so its exhaustions are not node-comparable
        // with per-clause-plan ones — an exhaustion is budget-monotone
        // only under a fixed execution order. Trie-produced exhaustions
        // are instead memoized in the per-trie tier ([`TrieExhaustions`],
        // keyed by the trie's own execution order) and served inside
        // `evaluate_batch_pending`; lone candidates, which run ordinary
        // per-clause plans, still write their exhaustions back into the
        // clause-keyed tier for the non-batched entry points to serve.
        let probe = self.obs.obs.timer();
        let mut prep = self.runtime.prepare_batch(clauses, priors, examples, None);
        probe.stop_ns(&self.obs.cache_probe_ns);
        self.evaluate_batch_pending(&mut prep, examples);
        prep.finish()
    }

    /// Evaluates every pending (slot, example) pair of a prepared batch:
    /// head-groups with at least two candidates run through a shared-prefix
    /// trie (fetched from the cross-round [`BatchPlanCache`] or compiled,
    /// then work-stolen over the subtree × example grid), lone candidates
    /// take the per-clause compiled-plan path.
    fn evaluate_batch_pending(&self, prep: &mut BatchPrep, examples: &[Tuple]) {
        let metrics = self.runtime.metrics();
        let db = self.snapshot();
        let db_stats = self.statistics();
        // Exhaustion scope captured before any trie runs: budgets recorded
        // into the per-trie tiers must be the ones in effect at the start,
        // exactly as `narrow_scope` documents for the clause-keyed tier.
        let scope = self.exhaustion_scope();
        let mut groups: fx::FxHashMap<&Atom, Vec<usize>> = fx::FxHashMap::default();
        for (slot, clause) in prep.unique.iter().enumerate() {
            if !prep.pending[slot].is_empty() {
                groups.entry(&clause.head).or_default().push(slot);
            }
        }

        let mut singles: Vec<(usize, usize)> = Vec::new();
        // Tries plus, per trie, the map from its local candidate slots
        // (indices into the cache key's sorted bodies) back to the prepared
        // batch's global slots.
        let mut plans: Vec<Arc<BatchPlan>> = Vec::new();
        let mut feedbacks: Vec<Option<Arc<PlanFeedback>>> = Vec::new();
        let mut slot_maps: Vec<Vec<usize>> = Vec::new();
        // Per-trie exhaustion tiers, parallel to `plans`: probed before
        // the grid is built, written back after it runs.
        let mut tiers: Vec<Arc<TrieExhaustions>> = Vec::new();
        // (slot, example index, outcome) verdicts settled without a search:
        // empty-bodied candidates are covered iff the head binds.
        let mut evaluated: Vec<(usize, usize, CoverageOutcome)> = Vec::new();
        let mut trivial_tests = 0usize;
        for (head, slots) in groups {
            if slots.len() == 1 {
                let s = slots[0];
                singles.extend(prep.pending[s].iter().map(|&ei| (s, ei)));
                continue;
            }
            let group: Vec<(usize, &[castor_logic::Atom])> = slots
                .iter()
                .map(|&s| (s, prep.unique[s].body.as_slice()))
                .collect();
            // Canonical (head, sorted body-set) identity: consecutive beam
            // rounds that re-score the same sibling group reuse the
            // compiled trie; the fetch re-validates its `(relation, epoch)`
            // stamps, so a trie costed before a mutation is recompiled,
            // never reused.
            let (slot_map, bodies) = canonical_group(&group);
            let (plan, feedback, exhaustions) = self.batch_plan_for(head, &bodies, &db_stats);
            // Serve memoized trie exhaustions before the masks are built:
            // a pair whose exhaustion was recorded under an equal-or-
            // smaller budget is answered here and drops out of the grid
            // (a larger recorded budget strikes the entry instead — see
            // [`TrieExhaustions::probe`]).
            let mut served = 0usize;
            for (local, &s) in slot_map.iter().enumerate() {
                prep.pending[s].retain(|&ei| {
                    if exhaustions.probe(local, &examples[ei], scope) {
                        evaluated.push((s, ei, CoverageOutcome::Exhausted));
                        served += 1;
                        false
                    } else {
                        true
                    }
                });
            }
            if served > 0 {
                EngineStats::add(&metrics.cache_hits, served);
            }
            if !plan.root_accepting.is_empty() {
                let head_clause = Clause::fact(head.clone());
                for &local in &plan.root_accepting {
                    let s = slot_map[local];
                    for &ei in &prep.pending[s] {
                        let outcome =
                            if castor_logic::evaluation::bind_head(&head_clause, &examples[ei])
                                .is_some()
                            {
                                CoverageOutcome::Covered
                            } else {
                                CoverageOutcome::NotCovered
                            };
                        evaluated.push((s, ei, outcome));
                        trivial_tests += 1;
                    }
                }
            }
            plans.push(plan);
            feedbacks.push(feedback);
            slot_maps.push(slot_map);
            tiers.push(exhaustions);
        }

        // The work grid: rows are trie subtrees (across all head groups),
        // columns are examples; each cell decides every live candidate of
        // its subtree for its example. Live masks are per trie, in local
        // slot space.
        let subtrees: Vec<(usize, usize)> = plans
            .iter()
            .enumerate()
            .flat_map(|(pi, plan)| plan.roots.iter().map(move |&root| (pi, root)))
            .collect();
        let mut pending_mask: Vec<Vec<bool>> = vec![vec![false; examples.len()]; prep.unique.len()];
        for (slot, exs) in prep.pending.iter().enumerate() {
            for &ei in exs {
                pending_mask[slot][ei] = true;
            }
        }
        let masks: Vec<Vec<Vec<bool>>> = slot_maps
            .iter()
            .map(|slot_map| {
                (0..examples.len())
                    .map(|ei| slot_map.iter().map(|&s| pending_mask[s][ei]).collect())
                    .collect()
            })
            .collect();
        let budget = self.budget_template();
        let cells = subtrees.len() * examples.len();
        type Item = (Vec<(usize, CoverageOutcome)>, BatchItemStats);
        let items: Vec<Item> =
            if self.runtime.pool().size() > 1 && cells >= self.config.parallel_threshold {
                let plans = Arc::new(plans.clone());
                let feedbacks = Arc::new(feedbacks.clone());
                let subtrees_shared = Arc::new(subtrees.clone());
                let examples_shared = Arc::new(examples.to_vec());
                let masks = Arc::new(masks);
                let db = Arc::clone(&db);
                let budget = budget.clone();
                self.runtime
                    .pool()
                    .map_grid(subtrees.len(), examples.len(), move |row, col| {
                        let (pi, root) = subtrees_shared[row];
                        batch::evaluate_subtree(
                            &plans[pi],
                            root,
                            &db,
                            &examples_shared[col],
                            &masks[pi][col],
                            &budget,
                            feedbacks[pi].as_deref(),
                        )
                    })
            } else {
                let mut out: Vec<Item> = Vec::with_capacity(cells);
                for &(pi, root) in &subtrees {
                    for (ei, example) in examples.iter().enumerate() {
                        out.push(batch::evaluate_subtree(
                            &plans[pi],
                            root,
                            &db,
                            example,
                            &masks[pi][ei],
                            &budget,
                            feedbacks[pi].as_deref(),
                        ));
                    }
                }
                out
            };

        // Scope narrowed across the evaluation: a cancellation that fired
        // mid-grid turns exhaustions into aborts, which must not be
        // memoized; a budget raise must not inflate the stored key.
        let write_scope = narrow_scope(scope, self.exhaustion_scope());
        let mut agg = BatchItemStats::default();
        for (idx, (outcomes, stats)) in items.into_iter().enumerate() {
            // map_grid and the inline loop are both row-major over
            // (subtree, example).
            let ei = idx % examples.len();
            let pi = subtrees[idx / examples.len()].0;
            agg.absorb(&stats);
            for (local, o) in outcomes {
                // Write back into this trie's exhaustion tier: exhausted
                // verdicts are memoized under the evaluation budget,
                // definite verdicts erase any stale exhaustion entry.
                if let Some(budget) = write_scope {
                    tiers[pi].absorb(local, &examples[ei], o, budget);
                }
                evaluated.push((slot_maps[pi][local], ei, o));
            }
        }
        EngineStats::add(&metrics.coverage_tests, agg.tests + trivial_tests);
        EngineStats::add(&metrics.budget_exhausted, agg.budget_exhausted);
        EngineStats::add(&metrics.batch_prefix_hits, agg.prefix_hits);
        EngineStats::add(&metrics.batch_suffix_forks, agg.suffix_forks);
        EngineStats::add(&metrics.batches, plans.len());

        let pairs: Vec<(usize, usize)> = evaluated.iter().map(|&(s, ei, _)| (s, ei)).collect();
        let outcomes: Vec<CoverageOutcome> = evaluated.iter().map(|&(_, _, o)| o).collect();
        // Trie-produced exhaustions stay out of the *clause-keyed* cache
        // (`None` scope): the trie's per-candidate budget accounting is
        // not comparable with the per-clause plan path that might answer
        // the same (clause, example) later. They were already written to
        // the per-trie tier above, whose lifetime is the compiled trie
        // itself. Definite verdicts are cached as usual.
        {
            let BatchPrep {
                unique,
                keys,
                covered,
                ..
            } = &mut *prep;
            self.runtime.absorb_pair_outcomes(
                keys.as_deref().unwrap_or(unique),
                examples,
                &pairs,
                &outcomes,
                covered,
                None,
            );
        }

        if !singles.is_empty() {
            let scope = self.exhaustion_scope();
            let outcomes = self
                .runtime
                .evaluate_pairs(self, &prep.unique, examples, &singles);
            // Lone candidates ran ordinary per-clause plans: their
            // exhaustions keep the budget tier (scope narrowed across the
            // evaluation, as in `covered_set`).
            let BatchPrep {
                unique,
                keys,
                covered,
                ..
            } = &mut *prep;
            self.runtime.absorb_pair_outcomes(
                keys.as_deref().unwrap_or(unique),
                examples,
                &singles,
                &outcomes,
                covered,
                narrow_scope(scope, self.exhaustion_scope()),
            );
        }
    }
}

impl CoverageTester for Engine {
    fn test(&self, canonical: &Clause, example: &Tuple) -> CoverageOutcome {
        let metrics = self.runtime.metrics();
        EngineStats::bump(&metrics.coverage_tests);
        let db = self.snapshot();
        let mut budget = self.budget_template();
        let outcome = if self.config.compile_plans {
            let (plan, feedback) = self.plan_for(canonical, &self.statistics());
            executor::covers_with_plan_observed(
                canonical,
                &plan,
                &db,
                example,
                &mut budget,
                feedback.as_deref(),
            )
        } else {
            castor_logic::covers_example_budgeted(canonical, &db, example, &mut budget)
        };
        if outcome.is_exhausted() {
            EngineStats::bump(&metrics.budget_exhausted);
        }
        outcome
    }

    fn parallel_task(
        &self,
        canonical: &Clause,
        examples: &Arc<Vec<Tuple>>,
    ) -> Box<dyn Fn(usize) -> CoverageOutcome + Send + Sync + 'static> {
        let db = self.snapshot();
        let metrics = Arc::clone(self.runtime.metrics());
        let clause = canonical.clone();
        let budget = self.budget_template();
        let examples = Arc::clone(examples);
        let plan = self
            .config
            .compile_plans
            .then(|| self.plan_for(canonical, &self.statistics()));
        Box::new(move |i| {
            EngineStats::bump(&metrics.coverage_tests);
            let mut node_budget = budget.clone();
            let outcome = match &plan {
                Some((plan, feedback)) => executor::covers_with_plan_observed(
                    &clause,
                    plan,
                    &db,
                    &examples[i],
                    &mut node_budget,
                    feedback.as_deref(),
                ),
                None => castor_logic::covers_example_budgeted(
                    &clause,
                    &db,
                    &examples[i],
                    &mut node_budget,
                ),
            };
            if outcome.is_exhausted() {
                EngineStats::bump(&metrics.budget_exhausted);
            }
            outcome
        })
    }

    fn pair_task(
        &self,
        canonicals: &Arc<Vec<Clause>>,
        examples: &Arc<Vec<Tuple>>,
        pairs: &Arc<Vec<(usize, usize)>>,
    ) -> Box<dyn Fn(usize) -> CoverageOutcome + Send + Sync + 'static> {
        let db = self.snapshot();
        let metrics = Arc::clone(self.runtime.metrics());
        let budget = self.budget_template();
        let canonicals = Arc::clone(canonicals);
        let examples = Arc::clone(examples);
        let pairs = Arc::clone(pairs);
        let plans: Option<Vec<FetchedPlan>> = self.config.compile_plans.then(|| {
            let stats = self.statistics();
            canonicals
                .iter()
                .map(|c| self.plan_for(c, &stats))
                .collect()
        });
        Box::new(move |i| {
            let (slot, ei) = pairs[i];
            EngineStats::bump(&metrics.coverage_tests);
            let mut node_budget = budget.clone();
            let outcome = match &plans {
                Some(plans) => {
                    let (plan, feedback) = &plans[slot];
                    executor::covers_with_plan_observed(
                        &canonicals[slot],
                        plan,
                        &db,
                        &examples[ei],
                        &mut node_budget,
                        feedback.as_deref(),
                    )
                }
                None => castor_logic::covers_example_budgeted(
                    &canonicals[slot],
                    &db,
                    &examples[ei],
                    &mut node_budget,
                ),
            };
            if outcome.is_exhausted() {
                EngineStats::bump(&metrics.budget_exhausted);
            }
            outcome
        })
    }

    fn exhaustion_scope(&self) -> Option<usize> {
        Engine::exhaustion_scope(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use castor_logic::Atom;
    use castor_relational::{RelationSymbol, Schema};

    fn db() -> DatabaseInstance {
        let mut schema = Schema::new("demo");
        schema.add_relation(RelationSymbol::new("publication", &["title", "person"]));
        let mut db = DatabaseInstance::empty(&schema);
        for (t, p) in [
            ("p1", "ann"),
            ("p1", "bob"),
            ("p2", "carol"),
            ("p2", "dan"),
            ("p3", "eve"),
        ] {
            db.insert("publication", Tuple::from_strs(&[t, p])).unwrap();
        }
        db
    }

    fn collaborated(x: &str, y: &str, p: &str) -> Clause {
        Clause::new(
            Atom::vars("collaborated", &[x, y]),
            vec![
                Atom::vars("publication", &[p, x]),
                Atom::vars("publication", &[p, y]),
            ],
        )
    }

    #[test]
    fn engine_coverage_matches_reference_semantics() {
        let db = db();
        let engine = Engine::new(&db, EngineConfig::default());
        let clause = collaborated("x", "y", "p");
        for example in [
            Tuple::from_strs(&["ann", "bob"]),
            Tuple::from_strs(&["ann", "carol"]),
            Tuple::from_strs(&["eve", "eve"]),
        ] {
            assert_eq!(
                engine.covers(&clause, &example),
                castor_logic::covers_example(&clause, &db, &example),
                "engine disagrees on {example}"
            );
        }
    }

    #[test]
    fn repeated_scoring_hits_the_cache() {
        let db = db();
        let engine = Engine::new(&db, EngineConfig::default());
        let examples = [
            Tuple::from_strs(&["ann", "bob"]),
            Tuple::from_strs(&["carol", "dan"]),
        ];
        // Alpha-variant clauses must share cache entries.
        engine.covered_set(&collaborated("x", "y", "p"), &examples, Prior::None);
        let before = engine.report();
        engine.covered_set(&collaborated("u", "v", "w"), &examples, Prior::None);
        let after = engine.report();
        assert_eq!(after.coverage_tests, before.coverage_tests);
        assert_eq!(after.cache_hits, before.cache_hits + examples.len());
        assert_eq!(after.plans_compiled, 1);
    }

    #[test]
    fn generality_prior_skips_parent_covered_examples() {
        let db = db();
        let engine = Engine::new(&db, EngineConfig::default());
        let parent = collaborated("x", "y", "p");
        let examples = [
            Tuple::from_strs(&["ann", "bob"]),
            Tuple::from_strs(&["ann", "carol"]),
        ];
        let parent_covered = engine.covered_set(&parent, &examples, Prior::None);
        assert_eq!(parent_covered.len(), 1);
        // A strictly more general clause (one literal dropped).
        let child = Clause::new(
            Atom::vars("collaborated", &["x", "y"]),
            vec![Atom::vars("publication", &["p", "x"])],
        );
        let before = engine.report();
        let child_covered = engine.covered_set(&child, &examples, Prior::GeneralizationOf(&parent));
        let after = engine.report();
        assert!(child_covered.contains(&Tuple::from_strs(&["ann", "bob"])));
        assert_eq!(after.generality_skips, before.generality_skips + 1);
    }

    #[test]
    fn uncached_config_reevaluates_every_time() {
        let db = db();
        let engine = Engine::new(&db, EngineConfig::default().without_cache());
        let clause = collaborated("x", "y", "p");
        let e = Tuple::from_strs(&["ann", "bob"]);
        engine.covers(&clause, &e);
        engine.covers(&clause, &e);
        let report = engine.report();
        assert_eq!(report.coverage_tests, 2);
        assert_eq!(report.cache_hits, 0);
    }

    #[test]
    fn interpreted_fallback_agrees_with_compiled_plans() {
        let db = db();
        let compiled = Engine::new(&db, EngineConfig::default());
        let interpreted = Engine::new(&db, EngineConfig::default().without_compiled_plans());
        let clause = collaborated("x", "y", "p");
        let examples: Vec<Tuple> = vec![
            Tuple::from_strs(&["ann", "bob"]),
            Tuple::from_strs(&["carol", "dan"]),
            Tuple::from_strs(&["ann", "dan"]),
            Tuple::from_strs(&["eve", "eve"]),
        ];
        assert_eq!(
            compiled.covered_set(&clause, &examples, Prior::None),
            interpreted.covered_set(&clause, &examples, Prior::None)
        );
    }

    #[test]
    fn parallel_and_sequential_paths_agree() {
        let db = db();
        let sequential = Engine::new(&db, EngineConfig::default());
        let parallel = Engine::new(&db, EngineConfig::default().with_threads(4));
        let clause = collaborated("x", "y", "p");
        let base = [
            Tuple::from_strs(&["ann", "bob"]),
            Tuple::from_strs(&["carol", "dan"]),
            Tuple::from_strs(&["ann", "dan"]),
            Tuple::from_strs(&["eve", "eve"]),
        ];
        let many: Vec<Tuple> = base.iter().cycle().take(64).cloned().collect();
        assert_eq!(
            sequential.covered_set(&clause, &many, Prior::None),
            parallel.covered_set(&clause, &many, Prior::None)
        );
    }

    #[test]
    fn budget_exhaustion_is_reported_not_silent() {
        let db = db();
        let engine = Engine::new(&db, EngineConfig::default().with_eval_budget(0));
        let clause = collaborated("x", "y", "p");
        assert!(!engine.covers(&clause, &Tuple::from_strs(&["ann", "bob"])));
        assert_eq!(engine.report().budget_exhausted, 1);
    }

    /// A beam of siblings sharing the collaborated-clause prefix.
    fn sibling_beam() -> Vec<Clause> {
        let mut base = collaborated("x", "y", "p");
        base.push(Atom::vars("publication", &["q", "x"]));
        let mut with_self = collaborated("x", "y", "p");
        with_self.push(Atom::vars("publication", &["p", "p2"]));
        vec![collaborated("x", "y", "p"), base, with_self]
    }

    fn batch_examples() -> Vec<Tuple> {
        vec![
            Tuple::from_strs(&["ann", "bob"]),
            Tuple::from_strs(&["carol", "dan"]),
            Tuple::from_strs(&["ann", "carol"]),
            Tuple::from_strs(&["eve", "eve"]),
        ]
    }

    #[test]
    fn batched_counts_match_per_clause_scoring() {
        let db = db();
        let batched = Engine::new(&db, EngineConfig::default());
        let solo = Engine::new(&db, EngineConfig::default());
        let beam = sibling_beam();
        let positive = batch_examples();
        let negative = vec![Tuple::from_strs(&["bob", "nobody"])];
        let counts = batched.coverage_counts_batch(&beam, &positive, &negative);
        for (clause, counts) in beam.iter().zip(counts) {
            let (pos, neg) = solo.coverage_counts(clause, &positive, &negative);
            assert_eq!(
                (counts.positive, counts.negative),
                (pos, neg),
                "on {clause}"
            );
        }
        let report = batched.report();
        assert!(report.batches >= 1, "trie path not taken: {report}");
        // The positive and negative passes are fused into one trie walk:
        // the beam is submitted once, not once per class.
        assert_eq!(report.batch_clauses, beam.len());
        assert!(report.batch_prefix_hits > 0, "no shared probes: {report}");
    }

    #[test]
    fn fused_counts_ignore_duplicate_examples_like_two_passes() {
        let db = db();
        let engine = Engine::new(&db, EngineConfig::default());
        let beam = sibling_beam();
        // Duplicates inside a class and across classes: counts stay
        // set-semantic, exactly like two covered_set passes.
        let positive = vec![
            Tuple::from_strs(&["ann", "bob"]),
            Tuple::from_strs(&["ann", "bob"]),
            Tuple::from_strs(&["carol", "dan"]),
        ];
        let negative = vec![
            Tuple::from_strs(&["ann", "bob"]),
            Tuple::from_strs(&["eve", "eve"]),
        ];
        let counts = engine.coverage_counts_batch(&beam, &positive, &negative);
        let solo = Engine::new(&db, EngineConfig::default());
        for (clause, counts) in beam.iter().zip(counts) {
            let pos = solo.covered_set(clause, &positive, Prior::None).len();
            let neg = solo.covered_set(clause, &negative, Prior::None).len();
            assert_eq!(
                (counts.positive, counts.negative),
                (pos, neg),
                "on {clause}"
            );
        }
    }

    #[test]
    fn batched_sets_share_cache_with_per_clause_path() {
        let db = db();
        let engine = Engine::new(&db, EngineConfig::default());
        let beam = sibling_beam();
        let examples = batch_examples();
        let sets = engine.covered_sets_batch(&beam, &examples);
        // Re-scoring the same candidates per-clause is pure cache hits.
        let before = engine.report();
        for (clause, set) in beam.iter().zip(&sets) {
            assert_eq!(&engine.covered_set(clause, &examples, Prior::None), set);
        }
        let after = engine.report();
        assert_eq!(after.coverage_tests, before.coverage_tests);
        assert_eq!(
            after.cache_hits,
            before.cache_hits + beam.len() * examples.len()
        );
    }

    #[test]
    fn duplicate_candidates_are_deduplicated() {
        let db = db();
        let engine = Engine::new(&db, EngineConfig::default());
        // α-equivalent duplicates must share one evaluation.
        let beam = vec![collaborated("x", "y", "p"), collaborated("u", "v", "w")];
        let examples = batch_examples();
        let sets = engine.covered_sets_batch(&beam, &examples);
        assert_eq!(sets[0], sets[1]);
        assert_eq!(engine.report().coverage_tests, examples.len());
    }

    #[test]
    fn batched_parallel_and_sequential_agree() {
        let db = db();
        let sequential = Engine::new(&db, EngineConfig::default());
        let parallel = Engine::new(&db, EngineConfig::default().with_threads(4));
        let beam = sibling_beam();
        let many: Vec<Tuple> = batch_examples().into_iter().cycle().take(64).collect();
        assert_eq!(
            sequential.covered_sets_batch(&beam, &many),
            parallel.covered_sets_batch(&beam, &many)
        );
    }

    #[test]
    fn batch_falls_back_without_compiled_plans() {
        let db = db();
        let compiled = Engine::new(&db, EngineConfig::default());
        let interpreted = Engine::new(&db, EngineConfig::default().without_compiled_plans());
        let beam = sibling_beam();
        let examples = batch_examples();
        assert_eq!(
            compiled.covered_sets_batch(&beam, &examples),
            interpreted.covered_sets_batch(&beam, &examples)
        );
        // No trie ran on the interpreted side.
        assert_eq!(interpreted.report().batches, 0);
        assert_eq!(interpreted.report().batch_clauses, beam.len());
    }

    #[test]
    fn batch_priors_apply_the_generality_order() {
        let db = db();
        let engine = Engine::new(&db, EngineConfig::default());
        let parent = collaborated("x", "y", "p");
        let examples = batch_examples();
        engine.covered_set(&parent, &examples, Prior::None);
        // Two children generalizing the parent (one literal dropped each).
        let child_a = Clause::new(
            Atom::vars("collaborated", &["x", "y"]),
            vec![Atom::vars("publication", &["p", "x"])],
        );
        let child_b = Clause::new(
            Atom::vars("collaborated", &["x", "y"]),
            vec![Atom::vars("publication", &["p", "y"])],
        );
        let beam = vec![child_a.clone(), child_b.clone()];
        let priors = vec![
            Prior::GeneralizationOf(&parent),
            Prior::GeneralizationOf(&parent),
        ];
        let before = engine.report();
        let sets = engine.covered_sets_batch_with_priors(&beam, &priors, &examples);
        let after = engine.report();
        assert!(after.generality_skips > before.generality_skips);
        let fresh = Engine::new(&db, EngineConfig::default());
        assert_eq!(sets[0], fresh.covered_set(&child_a, &examples, Prior::None));
        assert_eq!(sets[1], fresh.covered_set(&child_b, &examples, Prior::None));
    }

    #[test]
    fn empty_bodied_candidates_resolve_by_head_binding() {
        let db = db();
        let engine = Engine::new(&db, EngineConfig::default());
        let beam = vec![
            Clause::fact(Atom::vars("collaborated", &["x", "y"])),
            collaborated("x", "y", "p"),
            Clause::new(
                Atom::vars("collaborated", &["x", "y"]),
                vec![Atom::vars("publication", &["p", "x"])],
            ),
        ];
        let examples = batch_examples();
        let sets = engine.covered_sets_batch(&beam, &examples);
        // The most general clause covers everything its head binds — all
        // examples here.
        assert_eq!(sets[0].len(), examples.len());
        let solo = Engine::new(&db, EngineConfig::default());
        for (clause, set) in beam.iter().zip(&sets) {
            assert_eq!(set, &solo.covered_set(clause, &examples, Prior::None));
        }
    }

    #[test]
    fn batched_budget_exhaustion_is_counted() {
        let db = db();
        let engine = Engine::new(&db, EngineConfig::default().with_eval_budget(0));
        let beam = sibling_beam();
        let examples = batch_examples();
        let sets = engine.covered_sets_batch(&beam, &examples);
        assert!(sets.iter().all(HashSet::is_empty));
        assert!(engine.report().budget_exhausted > 0);
    }

    #[test]
    fn mutations_are_visible_and_invalidate_plans_and_cache() {
        let db = db();
        let engine = Engine::new(&db, EngineConfig::default());
        let clause = collaborated("x", "y", "p");
        let example = Tuple::from_strs(&["ann", "eve"]);
        assert!(!engine.covers(&clause, &example));
        // Make ann and eve co-authors after the engine was built.
        let batch = MutationBatch::new().insert("publication", Tuple::from_strs(&["p3", "ann"]));
        let summary = engine.apply(&batch).unwrap();
        assert_eq!(summary.inserted, 1);
        let report = engine.report();
        assert_eq!(report.mutation_batches, 1);
        assert!(
            report.cache_clauses_invalidated >= 1,
            "stale coverage survived: {report}"
        );
        // The next test sees the new tuple: the cached plan fails its epoch
        // check, recompiles, and the stale cached verdict is gone.
        assert!(engine.covers(&clause, &example));
        assert!(engine.report().plans_invalidated >= 1);
        // Equivalent to a fresh snapshot engine over the mutated database.
        let fresh = Engine::from_arc(engine.snapshot(), EngineConfig::default());
        let examples = batch_examples();
        assert_eq!(
            engine.covered_set(&clause, &examples, Prior::None),
            fresh.covered_set(&clause, &examples, Prior::None)
        );
    }

    #[test]
    fn removal_revokes_previously_covered_examples() {
        let db = db();
        let engine = Engine::new(&db, EngineConfig::default());
        let clause = collaborated("x", "y", "p");
        let example = Tuple::from_strs(&["ann", "bob"]);
        assert!(engine.covers(&clause, &example));
        let batch = MutationBatch::new().remove("publication", Tuple::from_strs(&["p1", "bob"]));
        engine.apply(&batch).unwrap();
        assert!(!engine.covers(&clause, &example));
        // Statistics were refreshed incrementally alongside the data.
        assert_eq!(
            engine
                .statistics()
                .relation("publication")
                .unwrap()
                .cardinality,
            4
        );
    }

    #[test]
    fn failed_batches_are_not_counted_as_applied() {
        let db = db();
        let engine = Engine::new(&db, EngineConfig::default());
        let batch = MutationBatch::new()
            .insert("publication", Tuple::from_strs(&["p9", "zoe"]))
            .insert("missing", Tuple::from_strs(&["x"]));
        assert!(engine.apply(&batch).is_err());
        assert_eq!(engine.report().mutation_batches, 0);
        // The op before the failure is applied and statistics stayed in
        // sync with it (refreshed even on the error path).
        assert!(engine
            .snapshot()
            .contains("publication", &Tuple::from_strs(&["p9", "zoe"])));
        assert_eq!(
            engine
                .statistics()
                .relation("publication")
                .unwrap()
                .cardinality,
            6
        );
    }

    #[test]
    fn mutations_of_unreferenced_relations_keep_the_cache() {
        let mut schema = Schema::new("demo");
        schema.add_relation(RelationSymbol::new("publication", &["title", "person"]));
        schema.add_relation(RelationSymbol::new("untouched", &["x"]));
        let mut db = DatabaseInstance::empty(&schema);
        db.insert("publication", Tuple::from_strs(&["p1", "ann"]))
            .unwrap();
        db.insert("publication", Tuple::from_strs(&["p1", "bob"]))
            .unwrap();
        let engine = Engine::new(&db, EngineConfig::default());
        let clause = collaborated("x", "y", "p");
        let example = Tuple::from_strs(&["ann", "bob"]);
        engine.covers(&clause, &example);
        let batch = MutationBatch::new().insert("untouched", Tuple::from_strs(&["v"]));
        engine.apply(&batch).unwrap();
        let before = engine.report();
        assert!(engine.covers(&clause, &example));
        let after = engine.report();
        // Answered from cache: the mutated relation is not referenced.
        assert_eq!(after.coverage_tests, before.coverage_tests);
        assert_eq!(after.cache_clauses_invalidated, 0);
        assert_eq!(after.plans_invalidated, 0);
    }

    #[test]
    fn exhaustions_are_memoized_per_budget_tier() {
        let db = db();
        let engine = Engine::new(&db, EngineConfig::default().with_eval_budget(1));
        let clause = collaborated("x", "y", "p");
        let e = Tuple::from_strs(&["ann", "bob"]);
        // First test exhausts and is memoized keyed by budget 1.
        assert!(!engine.covers(&clause, &e));
        let before = engine.report();
        assert_eq!(before.budget_exhausted, 1);
        // Same budget: answered from the cache, no new evaluation.
        assert!(!engine.covers(&clause, &e));
        let same = engine.report();
        assert_eq!(same.coverage_tests, before.coverage_tests);
        assert_eq!(same.cache_hits, before.cache_hits + 1);
        // Smaller budget: still served (an exhaustion under 1 node implies
        // exhaustion under 0).
        engine.set_eval_budget(0);
        assert!(!engine.covers(&clause, &e));
        assert_eq!(engine.report().coverage_tests, before.coverage_tests);
        // Larger budget: the cached exhaustion is *not* served — the test
        // re-runs and this time finds the answer.
        engine.set_eval_budget(DEFAULT_EVAL_NODE_BUDGET);
        assert!(engine.covers(&clause, &e));
        let after = engine.report();
        assert_eq!(after.coverage_tests, before.coverage_tests + 1);
        // The definite verdict replaced the exhaustion: a small budget now
        // gets "covered" from the cache instead of re-exhausting.
        engine.set_eval_budget(1);
        assert!(engine.covers(&clause, &e));
        assert_eq!(engine.report().coverage_tests, after.coverage_tests);
    }

    #[test]
    fn trie_exhaustions_are_served_across_batch_rounds() {
        let db = db();
        let engine = Engine::new(&db, EngineConfig::default().with_eval_budget(1));
        let beam = sibling_beam();
        let examples = batch_examples();
        let first = engine.covered_sets_batch(&beam, &examples);
        let before = engine.report();
        assert!(
            before.budget_exhausted > 0,
            "budget 1 exhausted nothing: {before}"
        );
        // Same beam, same budget: the definite pairs come out of the
        // clause-keyed memo cache, the exhausted pairs out of the trie's
        // own exhaustion tier — nothing re-runs, and the grid sees only
        // dead masks.
        let second = engine.covered_sets_batch(&beam, &examples);
        let after = engine.report();
        assert_eq!(first, second);
        assert_eq!(after.coverage_tests, before.coverage_tests);
        assert_eq!(after.budget_exhausted, before.budget_exhausted);
        assert!(
            after.cache_hits > before.cache_hits,
            "no pair was served from a cache: {after}"
        );
        assert_eq!(after.batch_plan_cache_hits, 1, "trie not reused: {after}");
        // A budget raise beats the tier: the pairs re-evaluate and the
        // definite verdicts erase their exhaustion entries.
        engine.set_eval_budget(DEFAULT_EVAL_NODE_BUDGET);
        let third = engine.covered_sets_batch(&beam, &examples);
        let settled = engine.report();
        assert!(settled.coverage_tests > after.coverage_tests);
        let solo = Engine::new(&db, EngineConfig::default());
        for (clause, covered) in beam.iter().zip(&third) {
            assert_eq!(
                covered,
                &solo.covered_set(clause, &examples, Prior::None),
                "post-raise disagreement on {clause}"
            );
        }
    }

    #[test]
    fn cancellation_pending_keeps_exhaustions_out_of_the_cache() {
        let db = db();
        let engine = Engine::new(&db, EngineConfig::default());
        let clause = collaborated("x", "y", "p");
        let e = Tuple::from_strs(&["ann", "bob"]);
        let token = Arc::new(AtomicBool::new(true));
        engine.set_cancel_token(Some(Arc::clone(&token)));
        assert!(!engine.covers(&clause, &e)); // aborted as exhaustion
                                              // Lifting the cancellation must re-evaluate: the abort was never
                                              // cached even though budgets are identical.
        token.store(false, Ordering::Relaxed);
        let before = engine.report();
        assert!(engine.covers(&clause, &e));
        assert_eq!(engine.report().coverage_tests, before.coverage_tests + 1);
        // An *installed but untriggered* token keeps the tier active: the
        // definite verdict above came from a real evaluation and is served
        // from cache now.
        assert!(engine.covers(&clause, &e));
        assert_eq!(engine.report().coverage_tests, before.coverage_tests + 1);
    }

    /// A database whose `skewed` relation hides a hub value behind a high
    /// distinct count — the uniform estimate is wrong by ~100×.
    fn skewed_db() -> DatabaseInstance {
        let mut schema = Schema::new("skew");
        schema
            .add_relation(RelationSymbol::new("skewed", &["a", "b"]))
            .add_relation(RelationSymbol::new("flat", &["a", "b"]));
        let mut db = DatabaseInstance::empty(&schema);
        for i in 0..300 {
            db.insert("skewed", Tuple::from_strs(&["hub", &format!("v{i}")]))
                .unwrap();
        }
        for i in 0..200 {
            db.insert(
                "skewed",
                Tuple::from_strs(&[&format!("k{i}"), &format!("w{i}")]),
            )
            .unwrap();
        }
        for i in 0..40 {
            db.insert("flat", Tuple::from_strs(&["hub", &format!("x{i}")]))
                .unwrap();
        }
        db
    }

    #[test]
    fn feedback_replanning_recosts_diverging_plans() {
        let db = skewed_db();
        // Uniform model so the initial order is provably wrong; cache off
        // so repeated scoring actually executes and feeds the loop.
        let config = EngineConfig::default().with_uniform_costs().without_cache();
        let engine = Engine::new(&db, config);
        let clause = Clause::new(
            Atom::vars("t", &["x"]),
            vec![
                Atom::vars("skewed", &["x", "y"]),
                Atom::vars("flat", &["x", "z"]),
            ],
        );
        // "nobody" matches nothing: full exploration through the bad order
        // (the hub is never probed, but estimates vs observations on the
        // hub example below diverge hard).
        let hub = Tuple::from_strs(&["hub"]);
        let miss = Tuple::from_strs(&["k3"]);
        // Enough executions for the feedback loop to judge the plan; the
        // recost happens lazily on a later plan fetch inside this loop.
        for _ in 0..engine.config().recost_after + 2 {
            assert!(engine.covers(&clause, &hub));
            assert!(!engine.covers(&clause, &miss));
        }
        let after = engine.report();
        assert_eq!(after.plans_recosted, 1, "no recost happened: {after}");
        // Results stay identical after the recost.
        assert!(engine.covers(&clause, &hub));
        assert!(!engine.covers(&clause, &Tuple::from_strs(&["k7"])));
        // The recosted plan does not thrash: further tests reuse it.
        assert_eq!(engine.report().plans_recosted, 1);
        // Feedback can be disabled: the same workload never recosts.
        let frozen = Engine::new(
            &skewed_db(),
            EngineConfig::default()
                .with_uniform_costs()
                .without_cache()
                .without_feedback_replanning(),
        );
        for _ in 0..frozen.config().recost_after + 2 {
            frozen.covers(&clause, &hub);
        }
        assert_eq!(frozen.report().plans_recosted, 0);
    }

    #[test]
    fn recosting_drops_stale_exhaustions_so_the_better_plan_runs() {
        // An exhaustion is plan-dependent: under the mis-costed order the
        // hub example exhausts, under the recosted order it is decidable
        // within the same budget. With the coverage cache ON, the recost
        // must drop the memoized exhaustion or the better plan never runs.
        let mut schema = Schema::new("skew");
        schema
            .add_relation(RelationSymbol::new("skewed", &["a", "b"]))
            .add_relation(RelationSymbol::new("blocked", &["a", "b"]));
        let mut db = DatabaseInstance::empty(&schema);
        for i in 0..300 {
            db.insert("skewed", Tuple::from_strs(&["hub", &format!("v{i}")]))
                .unwrap();
        }
        for i in 0..200 {
            db.insert(
                "skewed",
                Tuple::from_strs(&[&format!("k{i}"), &format!("w{i}")]),
            )
            .unwrap();
        }
        // `blocked` never contains hub rows (the hub example is a definite
        // "not covered") but is expensive enough per key (10 rows) that
        // the uniform model schedules `skewed` (est ~2.5) first.
        for i in 0..50 {
            db.insert(
                "blocked",
                Tuple::from_strs(&[&format!("b{}", i % 5), &format!("c{i}")]),
            )
            .unwrap();
        }
        let clause = Clause::new(
            Atom::vars("t", &["x"]),
            vec![
                Atom::vars("skewed", &["x", "y"]),
                Atom::vars("blocked", &["x", "z"]),
            ],
        );
        // Budget 100: the bad order (300 hub candidates) exhausts on the
        // hub example; the good order (empty `blocked` probe) decides it
        // in one node.
        let engine = Engine::new(
            &db,
            EngineConfig::default()
                .with_uniform_costs()
                .with_eval_budget(100),
        );
        let hub = Tuple::from_strs(&["hub"]);
        assert!(!engine.covers(&clause, &hub)); // exhausted, memoized @100
        assert_eq!(engine.report().budget_exhausted, 1);
        // Misses accumulate executions until the divergence check fires.
        let mut recosted = false;
        for i in 0..2 * engine.config().recost_after {
            engine.covers(&clause, &Tuple::from_strs(&[&format!("k{i}")]));
            if engine.report().plans_recosted > 0 {
                recosted = true;
                break;
            }
        }
        assert!(recosted, "plan never recosted: {}", engine.report());
        // The stale exhaustion was dropped with the bad plan: the next
        // probe re-evaluates under the recosted order and gets a definite
        // verdict within the same budget.
        let before = engine.report();
        assert!(!engine.covers(&clause, &hub));
        let after = engine.report();
        assert_eq!(
            after.coverage_tests,
            before.coverage_tests + 1,
            "stale exhaustion served from cache: {after}"
        );
        assert_eq!(after.budget_exhausted, before.budget_exhausted);
        // And the definite verdict is now memoized.
        assert!(!engine.covers(&clause, &hub));
        assert_eq!(engine.report().coverage_tests, after.coverage_tests);
    }

    #[test]
    fn consecutive_beam_rounds_reuse_cached_tries() {
        let db = db();
        // Cache off so round 2 actually evaluates (and must still skip
        // recompiling the trie).
        let engine = Engine::new(&db, EngineConfig::default().without_cache());
        let beam = sibling_beam();
        let examples = batch_examples();
        engine.covered_sets_batch(&beam, &examples);
        let round1 = engine.report();
        assert!(round1.batch_plans_compiled >= 1);
        assert_eq!(round1.batch_plan_cache_hits, 0);
        // Round 2: same sibling group (submitted in a different order) —
        // the trie is served from the cross-round cache.
        let mut shuffled = beam.clone();
        shuffled.reverse();
        let sets = engine.covered_sets_batch(&shuffled, &examples);
        let round2 = engine.report();
        assert_eq!(round2.batch_plans_compiled, round1.batch_plans_compiled);
        assert!(round2.batch_plan_cache_hits >= 1, "no trie reuse: {round2}");
        // Slot mapping survived the reversal.
        let solo = Engine::new(&db, EngineConfig::default());
        for (clause, set) in shuffled.iter().zip(&sets) {
            assert_eq!(set, &solo.covered_set(clause, &examples, Prior::None));
        }
        // A mutation of a relation the trie reads invalidates it.
        let batch = MutationBatch::new().insert("publication", Tuple::from_strs(&["p9", "zoe"]));
        engine.apply(&batch).unwrap();
        engine.covered_sets_batch(&beam, &examples);
        let round3 = engine.report();
        assert!(
            round3.batch_plans_invalidated >= 1,
            "stale trie survived the mutation: {round3}"
        );
        assert!(round3.batch_plans_compiled > round2.batch_plans_compiled);
    }

    #[test]
    fn session_budget_override_and_cancellation_token() {
        let db = db();
        let engine = Engine::new(&db, EngineConfig::default().without_cache());
        let clause = collaborated("x", "y", "p");
        let example = Tuple::from_strs(&["ann", "bob"]);
        assert!(engine.covers(&clause, &example));
        // Budget override: zero nodes → exhaustion.
        engine.set_eval_budget(0);
        assert!(!engine.covers(&clause, &example));
        engine.set_eval_budget(engine.config().eval_budget);
        assert!(engine.covers(&clause, &example));
        // Cancellation: a set token aborts every test as an exhaustion.
        let token = Arc::new(AtomicBool::new(true));
        engine.set_cancel_token(Some(Arc::clone(&token)));
        let before = engine.report().budget_exhausted;
        assert!(!engine.covers(&clause, &example));
        assert!(engine.report().budget_exhausted > before);
        engine.set_cancel_token(None);
        assert!(engine.covers(&clause, &example));
    }
}
