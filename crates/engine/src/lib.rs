//! # castor-engine
//!
//! The compiled clause-evaluation and coverage subsystem of the Castor
//! reproduction. The paper credits Castor's speed to treating coverage
//! testing as a database problem — stored-procedure-style evaluation
//! (Section 7.5.2), parallel coverage tests (Figure 2), and aggressive
//! reuse of results across candidate clauses (Sections 7.5.3–7.5.4). This
//! crate owns that machinery for the whole workspace:
//!
//! * [`stats`] — per-relation/per-attribute selectivity statistics read off
//!   the database's hash indexes when the engine is built;
//! * [`plan`] — compiled per-clause join orders chosen once from those
//!   statistics instead of re-ranking literals at every backtracking node;
//! * [`executor`] — budgeted execution of a compiled plan against the
//!   positional hash indexes;
//! * [`cache`] — a memoized coverage cache keyed by canonical
//!   (variable-renamed) clauses, with generality-order propagation
//!   ([`Prior::GeneralizationOf`]) promoted to an engine invariant;
//! * [`pool`] — a persistent worker pool with work-stealing over examples,
//!   replacing per-call thread spawning.
//!
//! The [`Engine`] front end combines all five; every learner in the
//! workspace (Castor, FOIL, Golem, Progol, ProGolem) routes coverage tests
//! through it.

pub mod batch;
pub mod cache;
pub mod executor;
pub mod fx;
pub mod plan;
pub mod pool;
pub mod stats;

pub use batch::{BatchItemStats, BatchPlan};
pub use cache::{canonicalize, CoverageCache};
pub use castor_logic::{CoverageOutcome, EvalBudget, DEFAULT_EVAL_NODE_BUDGET};
pub use fx::{FxBuildHasher, FxHashMap, FxHasher};
pub use plan::{ClausePlan, PlanStep};
pub use pool::WorkerPool;
pub use stats::{DatabaseStatistics, EngineReport, EngineStats};

use castor_logic::{Atom, Clause};
use castor_relational::{DatabaseInstance, Tuple};
use std::collections::HashSet;
use std::sync::{Arc, Mutex};

/// Engine construction knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads for parallel coverage testing (1 = inline).
    pub threads: usize,
    /// Node budget per coverage test (replaces the old hardcoded
    /// `EVAL_NODE_BUDGET`); exhaustions are counted and reported.
    pub eval_budget: usize,
    /// Memoize coverage results per canonical clause.
    pub cache_coverage: bool,
    /// Maximum distinct clauses held by the coverage cache.
    pub cache_capacity: usize,
    /// Compile and reuse per-clause join plans; when disabled every test
    /// falls back to the interpreted evaluator (the ablation baseline).
    pub compile_plans: bool,
    /// Minimum pending examples before a `covered_set` call is spread over
    /// the worker pool.
    pub parallel_threshold: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            threads: 1,
            eval_budget: DEFAULT_EVAL_NODE_BUDGET,
            cache_coverage: true,
            cache_capacity: 16_384,
            compile_plans: true,
            parallel_threshold: 8,
        }
    }
}

impl EngineConfig {
    /// Returns a copy with the given worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Returns a copy with the given per-test node budget.
    pub fn with_eval_budget(mut self, budget: usize) -> Self {
        self.eval_budget = budget;
        self
    }

    /// Returns a copy with memoization disabled (benchmark baseline).
    pub fn without_cache(mut self) -> Self {
        self.cache_coverage = false;
        self
    }

    /// Returns a copy with plan compilation disabled (benchmark baseline).
    pub fn without_compiled_plans(mut self) -> Self {
        self.compile_plans = false;
        self
    }
}

/// Prior knowledge a caller can hand to [`Engine::covered_set`] to skip
/// redundant tests.
#[derive(Debug, Clone, Copy, Default)]
pub enum Prior<'a> {
    /// No prior knowledge: test every example (cache permitting).
    #[default]
    None,
    /// These examples are known covered (legacy explicit form).
    Known(&'a HashSet<Tuple>),
    /// The queried clause generalizes this clause, so everything the parent
    /// is cached as covering is covered — the generality order of
    /// Section 7.5.4 as an engine invariant.
    GeneralizationOf(&'a Clause),
}

/// Positive/negative coverage counts for one clause of a batch — the
/// engine-level shape of the learners' `ClauseCoverage`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClauseCounts {
    /// Number of positive examples covered.
    pub positive: usize,
    /// Number of negative examples covered.
    pub negative: usize,
}

/// A pluggable per-example coverage test driven by [`CoverageRuntime`]:
/// the database-evaluation engine and the subsumption-based coverage engine
/// in `castor-core` differ only in this trait's methods.
pub trait CoverageTester {
    /// Evaluates one (canonical clause, example) pair, counting the test in
    /// the runtime's metrics.
    fn test(&self, canonical: &Clause, example: &Tuple) -> CoverageOutcome;

    /// Builds the `'static` task executed by worker threads for a batch:
    /// the closure must own (`Arc`-clone) everything it touches.
    fn parallel_task(
        &self,
        canonical: &Clause,
        examples: &Arc<Vec<Tuple>>,
    ) -> Box<dyn Fn(usize) -> CoverageOutcome + Send + Sync + 'static>;

    /// Builds the `'static` task evaluating `(clause slot, example index)`
    /// pairs from a multi-clause batch — the worker-side counterpart of
    /// [`CoverageRuntime::covered_sets_batch`]. The closure must own
    /// (`Arc`-clone) everything it touches.
    fn pair_task(
        &self,
        canonicals: &Arc<Vec<Clause>>,
        examples: &Arc<Vec<Tuple>>,
        pairs: &Arc<Vec<(usize, usize)>>,
    ) -> Box<dyn Fn(usize) -> CoverageOutcome + Send + Sync + 'static>;
}

/// The orchestration shared by every coverage engine: canonical-clause
/// keying, prior handling (including the generality order), batched memo
/// lookup/writeback, and worker-pool dispatch. Parameterized by a
/// [`CoverageTester`] so the database executor and the θ-subsumption tester
/// stay a single code path.
#[derive(Debug)]
pub struct CoverageRuntime {
    cache: CoverageCache,
    pool: Arc<WorkerPool>,
    metrics: Arc<EngineStats>,
    cache_coverage: bool,
    parallel_threshold: usize,
}

impl CoverageRuntime {
    /// Builds a runtime from the engine configuration and a (possibly
    /// shared) worker pool.
    pub fn new(config: &EngineConfig, pool: Arc<WorkerPool>) -> Self {
        CoverageRuntime {
            cache: CoverageCache::new(config.cache_capacity),
            pool,
            metrics: Arc::new(EngineStats::new()),
            cache_coverage: config.cache_coverage,
            parallel_threshold: config.parallel_threshold,
        }
    }

    /// The worker pool this runtime dispatches on.
    pub fn pool(&self) -> &Arc<WorkerPool> {
        &self.pool
    }

    /// The shared counters (testers bump `coverage_tests` and
    /// `budget_exhausted` through this handle).
    pub fn metrics(&self) -> &Arc<EngineStats> {
        &self.metrics
    }

    /// Snapshot of the runtime counters.
    pub fn report(&self) -> EngineReport {
        self.metrics.snapshot()
    }

    /// Tri-state coverage test for one example through the memo cache.
    pub fn try_covers<T: CoverageTester>(
        &self,
        tester: &T,
        canonical: &Clause,
        example: &Tuple,
    ) -> CoverageOutcome {
        if self.cache_coverage {
            if let Some(outcome) = self.cache.get(canonical, example) {
                EngineStats::bump(&self.metrics.cache_hits);
                return outcome;
            }
            EngineStats::bump(&self.metrics.cache_misses);
        }
        let outcome = tester.test(canonical, example);
        if self.cache_coverage {
            self.cache.insert(canonical, example, outcome);
        }
        outcome
    }

    /// The subset of `examples` covered by the canonical clause. `prior`
    /// feeds the generality order; pending examples are spread over the
    /// worker pool when there are enough of them.
    pub fn covered_set<T: CoverageTester>(
        &self,
        tester: &T,
        canonical: &Clause,
        examples: &[Tuple],
        prior: Prior<'_>,
    ) -> HashSet<Tuple> {
        let mut covered: HashSet<Tuple> = HashSet::new();
        let mut skip: HashSet<Tuple> = HashSet::new();
        // `cacheable_skips`: only generality-derived facts go into the memo
        // table. Entries from Prior::Known are the *caller's* claim — they
        // shape this result but must not poison the shared cache.
        let mut cacheable_skips = false;
        match prior {
            Prior::None => {}
            Prior::Known(known) => {
                for e in examples {
                    if known.contains(e) {
                        covered.insert(e.clone());
                        skip.insert(e.clone());
                    }
                }
            }
            Prior::GeneralizationOf(parent) => {
                let parent_key = canonicalize(parent);
                for e in self.cache.covered_subset(&parent_key, examples) {
                    covered.insert(e.clone());
                    skip.insert(e);
                }
                cacheable_skips = true;
            }
        }
        if !skip.is_empty() {
            EngineStats::add(&self.metrics.generality_skips, skip.len());
            if self.cache_coverage && cacheable_skips {
                self.cache.insert_many(
                    canonical,
                    skip.iter().map(|e| (e.clone(), CoverageOutcome::Covered)),
                );
            }
        }

        // Answer what the cache can (one lock for the whole batch), then
        // evaluate the remainder.
        let mut pending: Vec<Tuple> = Vec::new();
        let cached = if self.cache_coverage {
            self.cache.get_batch(canonical, examples)
        } else {
            vec![None; examples.len()]
        };
        let mut hits = 0usize;
        for (e, cached) in examples.iter().zip(cached) {
            if skip.contains(e) || covered.contains(e) {
                continue;
            }
            match cached {
                Some(outcome) => {
                    hits += 1;
                    if outcome.is_covered() {
                        covered.insert(e.clone());
                    }
                }
                None => pending.push(e.clone()),
            }
        }
        if self.cache_coverage {
            EngineStats::add(&self.metrics.cache_hits, hits);
            EngineStats::add(&self.metrics.cache_misses, pending.len());
        }
        if pending.is_empty() {
            return covered;
        }

        let outcomes: Vec<CoverageOutcome> =
            if self.pool.size() > 1 && pending.len() >= self.parallel_threshold {
                let examples = Arc::new(pending.clone());
                let task = tester.parallel_task(canonical, &examples);
                self.pool.map_indices(examples.len(), task)
            } else {
                pending.iter().map(|e| tester.test(canonical, e)).collect()
            };
        if self.cache_coverage {
            self.cache.insert_many(
                canonical,
                pending.iter().cloned().zip(outcomes.iter().copied()),
            );
        }
        for (e, outcome) in pending.into_iter().zip(outcomes) {
            if outcome.is_covered() {
                covered.insert(e);
            }
        }
        covered
    }

    /// Per-clause covered subsets for a whole batch of candidate clauses,
    /// generic over the tester: α-equivalent candidates are deduplicated,
    /// priors and the memo cache are consulted once per batch (single cache
    /// lock), and the remaining (clause, example) pairs are evaluated as one
    /// flat work list on the pool. This is the fallback the trie-backed
    /// [`Engine`] path shares its pre/post-processing with, and the primary
    /// batch path of the θ-subsumption coverage engine in `castor-core`.
    ///
    /// `priors` is either empty (no prior knowledge) or exactly one
    /// [`Prior`] per clause.
    pub fn covered_sets_batch<T: CoverageTester>(
        &self,
        tester: &T,
        clauses: &[Clause],
        examples: &[Tuple],
        priors: &[Prior<'_>],
    ) -> Vec<HashSet<Tuple>> {
        if clauses.is_empty() {
            return Vec::new();
        }
        let mut prep = self.prepare_batch(clauses, priors, examples);
        let pairs: Vec<(usize, usize)> = prep
            .pending
            .iter()
            .enumerate()
            .flat_map(|(slot, exs)| exs.iter().map(move |&ei| (slot, ei)))
            .collect();
        if !pairs.is_empty() {
            let outcomes = self.evaluate_pairs(tester, &prep.unique, examples, &pairs);
            self.absorb_pair_outcomes(&prep.unique, examples, &pairs, &outcomes, &mut prep.covered);
        }
        prep.finish()
    }

    /// The batch pre-pass shared by every batched path: canonicalize and
    /// deduplicate the candidates, fold per-candidate priors into known
    /// coverage (counting generality skips and caching the sound ones), and
    /// answer what the memo cache can under a single lock. What remains is
    /// the per-slot list of example indices that genuinely need evaluation.
    fn prepare_batch(
        &self,
        clauses: &[Clause],
        priors: &[Prior<'_>],
        examples: &[Tuple],
    ) -> BatchPrep {
        debug_assert!(
            priors.is_empty() || priors.len() == clauses.len(),
            "priors must be empty or parallel to the clause batch"
        );
        let mut unique: Vec<Clause> = Vec::new();
        let mut slot_of: Vec<usize> = Vec::with_capacity(clauses.len());
        let mut index: fx::FxHashMap<Clause, usize> = fx::FxHashMap::default();
        for clause in clauses {
            let canonical = canonicalize(clause);
            let slot = *index.entry(canonical.clone()).or_insert_with(|| {
                unique.push(canonical);
                unique.len() - 1
            });
            slot_of.push(slot);
        }

        let mut covered: Vec<HashSet<Tuple>> = vec![HashSet::new(); unique.len()];
        // Only generality-derived skips may be written back to the shared
        // cache; `Prior::Known` entries are the caller's claim.
        let mut cacheable: Vec<Vec<Tuple>> = vec![Vec::new(); unique.len()];
        for (i, prior) in priors.iter().enumerate() {
            let slot = slot_of[i];
            match prior {
                Prior::None => {}
                Prior::Known(known) => {
                    for e in examples {
                        if known.contains(e) {
                            covered[slot].insert(e.clone());
                        }
                    }
                }
                Prior::GeneralizationOf(parent) => {
                    let parent_key = canonicalize(parent);
                    for e in self.cache.covered_subset(&parent_key, examples) {
                        if covered[slot].insert(e.clone()) {
                            cacheable[slot].push(e);
                        }
                    }
                }
            }
        }
        let skips: usize = covered.iter().map(HashSet::len).sum();
        if skips > 0 {
            EngineStats::add(&self.metrics.generality_skips, skips);
        }
        if self.cache_coverage {
            for (slot, derived) in cacheable.into_iter().enumerate() {
                if !derived.is_empty() {
                    self.cache.insert_many(
                        &unique[slot],
                        derived.into_iter().map(|e| (e, CoverageOutcome::Covered)),
                    );
                }
            }
        }

        let rows = if self.cache_coverage {
            self.cache.get_batch_multi(&unique, examples)
        } else {
            vec![vec![None; examples.len()]; unique.len()]
        };
        let mut pending: Vec<Vec<usize>> = vec![Vec::new(); unique.len()];
        let mut hits = 0usize;
        let mut misses = 0usize;
        for (slot, row) in rows.into_iter().enumerate() {
            for (ei, cached) in row.into_iter().enumerate() {
                if covered[slot].contains(&examples[ei]) {
                    continue;
                }
                match cached {
                    Some(outcome) => {
                        hits += 1;
                        if outcome.is_covered() {
                            covered[slot].insert(examples[ei].clone());
                        }
                    }
                    None => {
                        misses += 1;
                        pending[slot].push(ei);
                    }
                }
            }
        }
        if self.cache_coverage {
            EngineStats::add(&self.metrics.cache_hits, hits);
            EngineStats::add(&self.metrics.cache_misses, misses);
        }
        BatchPrep {
            unique,
            slot_of,
            covered,
            pending,
        }
    }

    /// Evaluates a flat `(slot, example index)` work list, on the pool when
    /// it is large enough. Testers bump `coverage_tests`/`budget_exhausted`
    /// themselves.
    fn evaluate_pairs<T: CoverageTester>(
        &self,
        tester: &T,
        unique: &[Clause],
        examples: &[Tuple],
        pairs: &[(usize, usize)],
    ) -> Vec<CoverageOutcome> {
        if self.pool.size() > 1 && pairs.len() >= self.parallel_threshold {
            let canonicals = Arc::new(unique.to_vec());
            let examples = Arc::new(examples.to_vec());
            let pairs = Arc::new(pairs.to_vec());
            let task = tester.pair_task(&canonicals, &examples, &pairs);
            self.pool.map_indices(pairs.len(), task)
        } else {
            pairs
                .iter()
                .map(|&(slot, ei)| tester.test(&unique[slot], &examples[ei]))
                .collect()
        }
    }

    /// Writes evaluated pair outcomes back to the memo cache (grouped per
    /// clause, one lock each) and folds covered verdicts into the per-slot
    /// covered sets.
    fn absorb_pair_outcomes(
        &self,
        unique: &[Clause],
        examples: &[Tuple],
        pairs: &[(usize, usize)],
        outcomes: &[CoverageOutcome],
        covered: &mut [HashSet<Tuple>],
    ) {
        if self.cache_coverage {
            // One pass: bucket outcomes by slot, then one insert_many per
            // clause that actually evaluated something.
            let mut by_slot: Vec<Vec<(Tuple, CoverageOutcome)>> = vec![Vec::new(); unique.len()];
            for (&(slot, ei), &outcome) in pairs.iter().zip(outcomes) {
                by_slot[slot].push((examples[ei].clone(), outcome));
            }
            for (slot, slot_outcomes) in by_slot.into_iter().enumerate() {
                if !slot_outcomes.is_empty() {
                    self.cache.insert_many(&unique[slot], slot_outcomes);
                }
            }
        }
        for (&(slot, ei), outcome) in pairs.iter().zip(outcomes) {
            if outcome.is_covered() {
                covered[slot].insert(examples[ei].clone());
            }
        }
    }
}

/// The shared pre-pass state of one batched evaluation: canonical unique
/// clauses, the mapping from the caller's clause order onto them, known
/// coverage (priors + cache), and the (slot → example indices) work that
/// still needs evaluation.
struct BatchPrep {
    unique: Vec<Clause>,
    slot_of: Vec<usize>,
    covered: Vec<HashSet<Tuple>>,
    pending: Vec<Vec<usize>>,
}

impl BatchPrep {
    /// Maps the per-slot covered sets back onto the caller's clause order.
    fn finish(self) -> Vec<HashSet<Tuple>> {
        let BatchPrep {
            slot_of, covered, ..
        } = self;
        slot_of.iter().map(|&s| covered[s].clone()).collect()
    }
}

/// The database-backed evaluation engine: statistics, compiled plans,
/// memoized coverage, and a persistent worker pool behind one front end.
#[derive(Debug)]
pub struct Engine {
    db: Arc<DatabaseInstance>,
    db_stats: DatabaseStatistics,
    plans: Mutex<fx::FxHashMap<Clause, Arc<ClausePlan>>>,
    runtime: CoverageRuntime,
    config: EngineConfig,
}

impl Engine {
    /// Builds an engine over a snapshot of `db`. The instance is deep-cloned
    /// once (tuples and indexes) so worker threads can share it; callers
    /// that already hold an `Arc` should use [`Engine::from_arc`] instead.
    pub fn new(db: &DatabaseInstance, config: EngineConfig) -> Self {
        Engine::from_arc(Arc::new(db.clone()), config)
    }

    /// Builds an engine sharing `db` without copying it.
    pub fn from_arc(db: Arc<DatabaseInstance>, config: EngineConfig) -> Self {
        let db_stats = DatabaseStatistics::gather(&db);
        let pool = Arc::new(WorkerPool::new(config.threads));
        Engine {
            db_stats,
            plans: Mutex::new(fx::FxHashMap::default()),
            runtime: CoverageRuntime::new(&config, pool),
            config,
            db,
        }
    }

    /// The database the engine evaluates against.
    pub fn db(&self) -> &DatabaseInstance {
        &self.db
    }

    /// The statistics snapshot taken at build time.
    pub fn statistics(&self) -> &DatabaseStatistics {
        &self.db_stats
    }

    /// The engine's worker pool. `castor-core`'s subsumption coverage
    /// engine accepts this handle so one learner run drives a single pool.
    pub fn pool(&self) -> &Arc<WorkerPool> {
        self.runtime.pool()
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Snapshot of the engine counters.
    pub fn report(&self) -> EngineReport {
        self.runtime.report()
    }

    /// The compiled plan for a canonical clause, compiling on first use.
    /// Bounded like the coverage cache: at capacity the table is cleared
    /// rather than growing without limit.
    fn plan_for(&self, canonical: &Clause) -> Arc<ClausePlan> {
        let mut plans = self.plans.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(plan) = plans.get(canonical) {
            EngineStats::bump(&self.runtime.metrics().plan_cache_hits);
            return Arc::clone(plan);
        }
        if plans.len() >= self.config.cache_capacity {
            plans.clear();
        }
        let plan = Arc::new(ClausePlan::compile(canonical, &self.db_stats));
        EngineStats::bump(&self.runtime.metrics().plans_compiled);
        plans.insert(canonical.clone(), Arc::clone(&plan));
        plan
    }

    /// Tri-state coverage test for one example, going through the cache and
    /// the compiled plan.
    pub fn try_covers(&self, clause: &Clause, example: &Tuple) -> CoverageOutcome {
        let canonical = canonicalize(clause);
        self.runtime.try_covers(self, &canonical, example)
    }

    /// Boolean coverage test (exhausted budgets count as "not covered").
    pub fn covers(&self, clause: &Clause, example: &Tuple) -> bool {
        self.try_covers(clause, example).is_covered()
    }

    /// The subset of `examples` covered by `clause`. `prior` feeds the
    /// generality order: examples covered by a clause this one generalizes
    /// are accepted without a test. Pending examples are spread over the
    /// worker pool when there are enough of them.
    pub fn covered_set(
        &self,
        clause: &Clause,
        examples: &[Tuple],
        prior: Prior<'_>,
    ) -> HashSet<Tuple> {
        let canonical = canonicalize(clause);
        self.runtime.covered_set(self, &canonical, examples, prior)
    }

    /// Positive/negative coverage counts for `clause`.
    pub fn coverage_counts(
        &self,
        clause: &Clause,
        positive: &[Tuple],
        negative: &[Tuple],
    ) -> (usize, usize) {
        let pos = self.covered_set(clause, positive, Prior::None).len();
        let neg = self.covered_set(clause, negative, Prior::None).len();
        (pos, neg)
    }

    /// Positive/negative coverage counts for a whole beam of candidate
    /// clauses through the batched (shared join-prefix) evaluation path —
    /// the entry point the beam learners score candidates with.
    pub fn coverage_counts_batch(
        &self,
        clauses: &[Clause],
        positive: &[Tuple],
        negative: &[Tuple],
    ) -> Vec<ClauseCounts> {
        let pos = self.covered_sets_batch(clauses, positive);
        let neg = self.covered_sets_batch(clauses, negative);
        pos.into_iter()
            .zip(neg)
            .map(|(p, n)| ClauseCounts {
                positive: p.len(),
                negative: n.len(),
            })
            .collect()
    }

    /// The subset of `examples` covered by each clause of a candidate
    /// batch, with no prior knowledge. See
    /// [`Engine::covered_sets_batch_with_priors`].
    pub fn covered_sets_batch(
        &self,
        clauses: &[Clause],
        examples: &[Tuple],
    ) -> Vec<HashSet<Tuple>> {
        self.covered_sets_batch_with_priors(clauses, &[], examples)
    }

    /// The subset of `examples` covered by each clause of a candidate
    /// batch. Sibling candidates produced by beam refinement share a head
    /// and a body prefix; the engine folds them into a literal trie
    /// ([`BatchPlan`]), executes the shared prefix join once per example,
    /// and forks per-candidate suffixes off the materialized prefix
    /// bindings — one index probe feeds every candidate in the beam.
    ///
    /// `priors` is empty or one [`Prior`] per clause (the generality order,
    /// exactly as in [`Engine::covered_set`]). The engine falls back to
    /// per-clause compiled plans when batching cannot help: plan compilation
    /// disabled, a batch of fewer than two clauses, or candidates that share
    /// no head with any other candidate.
    pub fn covered_sets_batch_with_priors(
        &self,
        clauses: &[Clause],
        priors: &[Prior<'_>],
        examples: &[Tuple],
    ) -> Vec<HashSet<Tuple>> {
        if clauses.is_empty() {
            return Vec::new();
        }
        let metrics = self.runtime.metrics();
        EngineStats::add(&metrics.batch_clauses, clauses.len());
        if !self.config.compile_plans || clauses.len() < 2 || examples.is_empty() {
            return self
                .runtime
                .covered_sets_batch(self, clauses, examples, priors);
        }
        let mut prep = self.runtime.prepare_batch(clauses, priors, examples);
        self.evaluate_batch_pending(&mut prep, examples);
        prep.finish()
    }

    /// Evaluates every pending (slot, example) pair of a prepared batch:
    /// head-groups with at least two candidates run through a shared-prefix
    /// trie (work-stolen over the subtree × example grid), lone candidates
    /// take the per-clause compiled-plan path.
    fn evaluate_batch_pending(&self, prep: &mut BatchPrep, examples: &[Tuple]) {
        let metrics = self.runtime.metrics();
        let slot_space = prep.unique.len();
        let mut groups: fx::FxHashMap<&Atom, Vec<usize>> = fx::FxHashMap::default();
        for (slot, clause) in prep.unique.iter().enumerate() {
            if !prep.pending[slot].is_empty() {
                groups.entry(&clause.head).or_default().push(slot);
            }
        }

        let mut singles: Vec<(usize, usize)> = Vec::new();
        let mut plans: Vec<Arc<BatchPlan>> = Vec::new();
        // (slot, example index, outcome) verdicts settled without a search:
        // empty-bodied candidates are covered iff the head binds.
        let mut evaluated: Vec<(usize, usize, CoverageOutcome)> = Vec::new();
        let mut trivial_tests = 0usize;
        for (head, slots) in groups {
            if slots.len() == 1 {
                let s = slots[0];
                singles.extend(prep.pending[s].iter().map(|&ei| (s, ei)));
                continue;
            }
            let bodies: Vec<(usize, &[castor_logic::Atom])> = slots
                .iter()
                .map(|&s| (s, prep.unique[s].body.as_slice()))
                .collect();
            let plan = BatchPlan::compile(head, &bodies, &self.db_stats);
            if !plan.root_accepting.is_empty() {
                let head_clause = Clause::fact(head.clone());
                for &s in &plan.root_accepting {
                    for &ei in &prep.pending[s] {
                        let outcome =
                            if castor_logic::evaluation::bind_head(&head_clause, &examples[ei])
                                .is_some()
                            {
                                CoverageOutcome::Covered
                            } else {
                                CoverageOutcome::NotCovered
                            };
                        evaluated.push((s, ei, outcome));
                        trivial_tests += 1;
                    }
                }
            }
            plans.push(Arc::new(plan));
        }

        // The work grid: rows are trie subtrees (across all head groups),
        // columns are examples; each cell decides every live candidate of
        // its subtree for its example.
        let subtrees: Vec<(usize, usize)> = plans
            .iter()
            .enumerate()
            .flat_map(|(pi, plan)| plan.roots.iter().map(move |&root| (pi, root)))
            .collect();
        let mut mask: Vec<Vec<bool>> = vec![vec![false; slot_space]; examples.len()];
        for (slot, exs) in prep.pending.iter().enumerate() {
            for &ei in exs {
                mask[ei][slot] = true;
            }
        }
        let budget = self.config.eval_budget;
        let cells = subtrees.len() * examples.len();
        type Item = (Vec<(usize, CoverageOutcome)>, BatchItemStats);
        let items: Vec<Item> =
            if self.runtime.pool().size() > 1 && cells >= self.config.parallel_threshold {
                let plans = Arc::new(plans.clone());
                let subtrees_shared = Arc::new(subtrees.clone());
                let examples_shared = Arc::new(examples.to_vec());
                let mask = Arc::new(mask);
                let db = Arc::clone(&self.db);
                self.runtime
                    .pool()
                    .map_grid(subtrees.len(), examples.len(), move |row, col| {
                        let (pi, root) = subtrees_shared[row];
                        batch::evaluate_subtree(
                            &plans[pi],
                            root,
                            &db,
                            &examples_shared[col],
                            &mask[col],
                            budget,
                        )
                    })
            } else {
                let mut out: Vec<Item> = Vec::with_capacity(cells);
                for &(pi, root) in &subtrees {
                    for (ei, example) in examples.iter().enumerate() {
                        out.push(batch::evaluate_subtree(
                            &plans[pi], root, &self.db, example, &mask[ei], budget,
                        ));
                    }
                }
                out
            };

        let mut agg = BatchItemStats::default();
        for (idx, (outcomes, stats)) in items.into_iter().enumerate() {
            // map_grid and the inline loop are both row-major over
            // (subtree, example).
            let ei = idx % examples.len();
            agg.absorb(&stats);
            evaluated.extend(outcomes.into_iter().map(|(slot, o)| (slot, ei, o)));
        }
        EngineStats::add(&metrics.coverage_tests, agg.tests + trivial_tests);
        EngineStats::add(&metrics.budget_exhausted, agg.budget_exhausted);
        EngineStats::add(&metrics.batch_prefix_hits, agg.prefix_hits);
        EngineStats::add(&metrics.batch_suffix_forks, agg.suffix_forks);
        EngineStats::add(&metrics.batches, plans.len());

        let pairs: Vec<(usize, usize)> = evaluated.iter().map(|&(s, ei, _)| (s, ei)).collect();
        let outcomes: Vec<CoverageOutcome> = evaluated.iter().map(|&(_, _, o)| o).collect();
        self.runtime.absorb_pair_outcomes(
            &prep.unique,
            examples,
            &pairs,
            &outcomes,
            &mut prep.covered,
        );

        if !singles.is_empty() {
            let outcomes = self
                .runtime
                .evaluate_pairs(self, &prep.unique, examples, &singles);
            self.runtime.absorb_pair_outcomes(
                &prep.unique,
                examples,
                &singles,
                &outcomes,
                &mut prep.covered,
            );
        }
    }
}

impl CoverageTester for Engine {
    fn test(&self, canonical: &Clause, example: &Tuple) -> CoverageOutcome {
        let metrics = self.runtime.metrics();
        EngineStats::bump(&metrics.coverage_tests);
        let mut budget = EvalBudget::new(self.config.eval_budget);
        let outcome = if self.config.compile_plans {
            let plan = self.plan_for(canonical);
            executor::covers_with_plan(canonical, &plan, &self.db, example, &mut budget)
        } else {
            castor_logic::covers_example_budgeted(canonical, &self.db, example, &mut budget)
        };
        if outcome.is_exhausted() {
            EngineStats::bump(&metrics.budget_exhausted);
        }
        outcome
    }

    fn parallel_task(
        &self,
        canonical: &Clause,
        examples: &Arc<Vec<Tuple>>,
    ) -> Box<dyn Fn(usize) -> CoverageOutcome + Send + Sync + 'static> {
        let db = Arc::clone(&self.db);
        let metrics = Arc::clone(self.runtime.metrics());
        let clause = canonical.clone();
        let budget = self.config.eval_budget;
        let examples = Arc::clone(examples);
        let plan = self.config.compile_plans.then(|| self.plan_for(canonical));
        Box::new(move |i| {
            EngineStats::bump(&metrics.coverage_tests);
            let mut node_budget = EvalBudget::new(budget);
            let outcome = match &plan {
                Some(plan) => {
                    executor::covers_with_plan(&clause, plan, &db, &examples[i], &mut node_budget)
                }
                None => castor_logic::covers_example_budgeted(
                    &clause,
                    &db,
                    &examples[i],
                    &mut node_budget,
                ),
            };
            if outcome.is_exhausted() {
                EngineStats::bump(&metrics.budget_exhausted);
            }
            outcome
        })
    }

    fn pair_task(
        &self,
        canonicals: &Arc<Vec<Clause>>,
        examples: &Arc<Vec<Tuple>>,
        pairs: &Arc<Vec<(usize, usize)>>,
    ) -> Box<dyn Fn(usize) -> CoverageOutcome + Send + Sync + 'static> {
        let db = Arc::clone(&self.db);
        let metrics = Arc::clone(self.runtime.metrics());
        let budget = self.config.eval_budget;
        let canonicals = Arc::clone(canonicals);
        let examples = Arc::clone(examples);
        let pairs = Arc::clone(pairs);
        let plans: Option<Vec<Arc<ClausePlan>>> = self
            .config
            .compile_plans
            .then(|| canonicals.iter().map(|c| self.plan_for(c)).collect());
        Box::new(move |i| {
            let (slot, ei) = pairs[i];
            EngineStats::bump(&metrics.coverage_tests);
            let mut node_budget = EvalBudget::new(budget);
            let outcome = match &plans {
                Some(plans) => executor::covers_with_plan(
                    &canonicals[slot],
                    &plans[slot],
                    &db,
                    &examples[ei],
                    &mut node_budget,
                ),
                None => castor_logic::covers_example_budgeted(
                    &canonicals[slot],
                    &db,
                    &examples[ei],
                    &mut node_budget,
                ),
            };
            if outcome.is_exhausted() {
                EngineStats::bump(&metrics.budget_exhausted);
            }
            outcome
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use castor_logic::Atom;
    use castor_relational::{RelationSymbol, Schema};

    fn db() -> DatabaseInstance {
        let mut schema = Schema::new("demo");
        schema.add_relation(RelationSymbol::new("publication", &["title", "person"]));
        let mut db = DatabaseInstance::empty(&schema);
        for (t, p) in [
            ("p1", "ann"),
            ("p1", "bob"),
            ("p2", "carol"),
            ("p2", "dan"),
            ("p3", "eve"),
        ] {
            db.insert("publication", Tuple::from_strs(&[t, p])).unwrap();
        }
        db
    }

    fn collaborated(x: &str, y: &str, p: &str) -> Clause {
        Clause::new(
            Atom::vars("collaborated", &[x, y]),
            vec![
                Atom::vars("publication", &[p, x]),
                Atom::vars("publication", &[p, y]),
            ],
        )
    }

    #[test]
    fn engine_coverage_matches_reference_semantics() {
        let db = db();
        let engine = Engine::new(&db, EngineConfig::default());
        let clause = collaborated("x", "y", "p");
        for example in [
            Tuple::from_strs(&["ann", "bob"]),
            Tuple::from_strs(&["ann", "carol"]),
            Tuple::from_strs(&["eve", "eve"]),
        ] {
            assert_eq!(
                engine.covers(&clause, &example),
                castor_logic::covers_example(&clause, &db, &example),
                "engine disagrees on {example}"
            );
        }
    }

    #[test]
    fn repeated_scoring_hits_the_cache() {
        let db = db();
        let engine = Engine::new(&db, EngineConfig::default());
        let examples = [
            Tuple::from_strs(&["ann", "bob"]),
            Tuple::from_strs(&["carol", "dan"]),
        ];
        // Alpha-variant clauses must share cache entries.
        engine.covered_set(&collaborated("x", "y", "p"), &examples, Prior::None);
        let before = engine.report();
        engine.covered_set(&collaborated("u", "v", "w"), &examples, Prior::None);
        let after = engine.report();
        assert_eq!(after.coverage_tests, before.coverage_tests);
        assert_eq!(after.cache_hits, before.cache_hits + examples.len());
        assert_eq!(after.plans_compiled, 1);
    }

    #[test]
    fn generality_prior_skips_parent_covered_examples() {
        let db = db();
        let engine = Engine::new(&db, EngineConfig::default());
        let parent = collaborated("x", "y", "p");
        let examples = [
            Tuple::from_strs(&["ann", "bob"]),
            Tuple::from_strs(&["ann", "carol"]),
        ];
        let parent_covered = engine.covered_set(&parent, &examples, Prior::None);
        assert_eq!(parent_covered.len(), 1);
        // A strictly more general clause (one literal dropped).
        let child = Clause::new(
            Atom::vars("collaborated", &["x", "y"]),
            vec![Atom::vars("publication", &["p", "x"])],
        );
        let before = engine.report();
        let child_covered = engine.covered_set(&child, &examples, Prior::GeneralizationOf(&parent));
        let after = engine.report();
        assert!(child_covered.contains(&Tuple::from_strs(&["ann", "bob"])));
        assert_eq!(after.generality_skips, before.generality_skips + 1);
    }

    #[test]
    fn uncached_config_reevaluates_every_time() {
        let db = db();
        let engine = Engine::new(&db, EngineConfig::default().without_cache());
        let clause = collaborated("x", "y", "p");
        let e = Tuple::from_strs(&["ann", "bob"]);
        engine.covers(&clause, &e);
        engine.covers(&clause, &e);
        let report = engine.report();
        assert_eq!(report.coverage_tests, 2);
        assert_eq!(report.cache_hits, 0);
    }

    #[test]
    fn interpreted_fallback_agrees_with_compiled_plans() {
        let db = db();
        let compiled = Engine::new(&db, EngineConfig::default());
        let interpreted = Engine::new(&db, EngineConfig::default().without_compiled_plans());
        let clause = collaborated("x", "y", "p");
        let examples: Vec<Tuple> = vec![
            Tuple::from_strs(&["ann", "bob"]),
            Tuple::from_strs(&["carol", "dan"]),
            Tuple::from_strs(&["ann", "dan"]),
            Tuple::from_strs(&["eve", "eve"]),
        ];
        assert_eq!(
            compiled.covered_set(&clause, &examples, Prior::None),
            interpreted.covered_set(&clause, &examples, Prior::None)
        );
    }

    #[test]
    fn parallel_and_sequential_paths_agree() {
        let db = db();
        let sequential = Engine::new(&db, EngineConfig::default());
        let parallel = Engine::new(&db, EngineConfig::default().with_threads(4));
        let clause = collaborated("x", "y", "p");
        let base = [
            Tuple::from_strs(&["ann", "bob"]),
            Tuple::from_strs(&["carol", "dan"]),
            Tuple::from_strs(&["ann", "dan"]),
            Tuple::from_strs(&["eve", "eve"]),
        ];
        let many: Vec<Tuple> = base.iter().cycle().take(64).cloned().collect();
        assert_eq!(
            sequential.covered_set(&clause, &many, Prior::None),
            parallel.covered_set(&clause, &many, Prior::None)
        );
    }

    #[test]
    fn budget_exhaustion_is_reported_not_silent() {
        let db = db();
        let engine = Engine::new(&db, EngineConfig::default().with_eval_budget(0));
        let clause = collaborated("x", "y", "p");
        assert!(!engine.covers(&clause, &Tuple::from_strs(&["ann", "bob"])));
        assert_eq!(engine.report().budget_exhausted, 1);
    }

    /// A beam of siblings sharing the collaborated-clause prefix.
    fn sibling_beam() -> Vec<Clause> {
        let mut base = collaborated("x", "y", "p");
        base.push(Atom::vars("publication", &["q", "x"]));
        let mut with_self = collaborated("x", "y", "p");
        with_self.push(Atom::vars("publication", &["p", "p2"]));
        vec![collaborated("x", "y", "p"), base, with_self]
    }

    fn batch_examples() -> Vec<Tuple> {
        vec![
            Tuple::from_strs(&["ann", "bob"]),
            Tuple::from_strs(&["carol", "dan"]),
            Tuple::from_strs(&["ann", "carol"]),
            Tuple::from_strs(&["eve", "eve"]),
        ]
    }

    #[test]
    fn batched_counts_match_per_clause_scoring() {
        let db = db();
        let batched = Engine::new(&db, EngineConfig::default());
        let solo = Engine::new(&db, EngineConfig::default());
        let beam = sibling_beam();
        let positive = batch_examples();
        let negative = vec![Tuple::from_strs(&["bob", "nobody"])];
        let counts = batched.coverage_counts_batch(&beam, &positive, &negative);
        for (clause, counts) in beam.iter().zip(counts) {
            let (pos, neg) = solo.coverage_counts(clause, &positive, &negative);
            assert_eq!(
                (counts.positive, counts.negative),
                (pos, neg),
                "on {clause}"
            );
        }
        let report = batched.report();
        assert!(report.batches >= 1, "trie path not taken: {report}");
        assert_eq!(report.batch_clauses, beam.len() * 2); // pos + neg pass
        assert!(report.batch_prefix_hits > 0, "no shared probes: {report}");
    }

    #[test]
    fn batched_sets_share_cache_with_per_clause_path() {
        let db = db();
        let engine = Engine::new(&db, EngineConfig::default());
        let beam = sibling_beam();
        let examples = batch_examples();
        let sets = engine.covered_sets_batch(&beam, &examples);
        // Re-scoring the same candidates per-clause is pure cache hits.
        let before = engine.report();
        for (clause, set) in beam.iter().zip(&sets) {
            assert_eq!(&engine.covered_set(clause, &examples, Prior::None), set);
        }
        let after = engine.report();
        assert_eq!(after.coverage_tests, before.coverage_tests);
        assert_eq!(
            after.cache_hits,
            before.cache_hits + beam.len() * examples.len()
        );
    }

    #[test]
    fn duplicate_candidates_are_deduplicated() {
        let db = db();
        let engine = Engine::new(&db, EngineConfig::default());
        // α-equivalent duplicates must share one evaluation.
        let beam = vec![collaborated("x", "y", "p"), collaborated("u", "v", "w")];
        let examples = batch_examples();
        let sets = engine.covered_sets_batch(&beam, &examples);
        assert_eq!(sets[0], sets[1]);
        assert_eq!(engine.report().coverage_tests, examples.len());
    }

    #[test]
    fn batched_parallel_and_sequential_agree() {
        let db = db();
        let sequential = Engine::new(&db, EngineConfig::default());
        let parallel = Engine::new(&db, EngineConfig::default().with_threads(4));
        let beam = sibling_beam();
        let many: Vec<Tuple> = batch_examples().into_iter().cycle().take(64).collect();
        assert_eq!(
            sequential.covered_sets_batch(&beam, &many),
            parallel.covered_sets_batch(&beam, &many)
        );
    }

    #[test]
    fn batch_falls_back_without_compiled_plans() {
        let db = db();
        let compiled = Engine::new(&db, EngineConfig::default());
        let interpreted = Engine::new(&db, EngineConfig::default().without_compiled_plans());
        let beam = sibling_beam();
        let examples = batch_examples();
        assert_eq!(
            compiled.covered_sets_batch(&beam, &examples),
            interpreted.covered_sets_batch(&beam, &examples)
        );
        // No trie ran on the interpreted side.
        assert_eq!(interpreted.report().batches, 0);
        assert_eq!(interpreted.report().batch_clauses, beam.len());
    }

    #[test]
    fn batch_priors_apply_the_generality_order() {
        let db = db();
        let engine = Engine::new(&db, EngineConfig::default());
        let parent = collaborated("x", "y", "p");
        let examples = batch_examples();
        engine.covered_set(&parent, &examples, Prior::None);
        // Two children generalizing the parent (one literal dropped each).
        let child_a = Clause::new(
            Atom::vars("collaborated", &["x", "y"]),
            vec![Atom::vars("publication", &["p", "x"])],
        );
        let child_b = Clause::new(
            Atom::vars("collaborated", &["x", "y"]),
            vec![Atom::vars("publication", &["p", "y"])],
        );
        let beam = vec![child_a.clone(), child_b.clone()];
        let priors = vec![
            Prior::GeneralizationOf(&parent),
            Prior::GeneralizationOf(&parent),
        ];
        let before = engine.report();
        let sets = engine.covered_sets_batch_with_priors(&beam, &priors, &examples);
        let after = engine.report();
        assert!(after.generality_skips > before.generality_skips);
        let fresh = Engine::new(&db, EngineConfig::default());
        assert_eq!(sets[0], fresh.covered_set(&child_a, &examples, Prior::None));
        assert_eq!(sets[1], fresh.covered_set(&child_b, &examples, Prior::None));
    }

    #[test]
    fn empty_bodied_candidates_resolve_by_head_binding() {
        let db = db();
        let engine = Engine::new(&db, EngineConfig::default());
        let beam = vec![
            Clause::fact(Atom::vars("collaborated", &["x", "y"])),
            collaborated("x", "y", "p"),
            Clause::new(
                Atom::vars("collaborated", &["x", "y"]),
                vec![Atom::vars("publication", &["p", "x"])],
            ),
        ];
        let examples = batch_examples();
        let sets = engine.covered_sets_batch(&beam, &examples);
        // The most general clause covers everything its head binds — all
        // examples here.
        assert_eq!(sets[0].len(), examples.len());
        let solo = Engine::new(&db, EngineConfig::default());
        for (clause, set) in beam.iter().zip(&sets) {
            assert_eq!(set, &solo.covered_set(clause, &examples, Prior::None));
        }
    }

    #[test]
    fn batched_budget_exhaustion_is_counted() {
        let db = db();
        let engine = Engine::new(&db, EngineConfig::default().with_eval_budget(0));
        let beam = sibling_beam();
        let examples = batch_examples();
        let sets = engine.covered_sets_batch(&beam, &examples);
        assert!(sets.iter().all(HashSet::is_empty));
        assert!(engine.report().budget_exhausted > 0);
    }
}
