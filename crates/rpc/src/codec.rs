//! Compact binary encoding for everything that crosses the wire.
//!
//! Dependency-free by design (no serde in-tree): integers are LEB128
//! varints (signed ones zigzagged), strings are length-prefixed UTF-8,
//! floats are their IEEE-754 bits in little-endian order, and structured
//! values compose those primitives field by field in declared order. The
//! protocol version in every frame header ([`crate::frame`]) governs
//! layout evolution — there are no per-field tags to pay for on the hot
//! path.
//!
//! Decoding is total: every read is bounds-checked and every enum tag
//! validated, so a malformed or truncated payload produces a
//! [`CodecError`], never a panic or an out-of-bounds read.

use castor_engine::{ClauseCounts, EngineReport};
use castor_learners::{LearnerParams, LearningTask};
use castor_logic::{Atom, Clause, Definition, Term};
use castor_relational::{
    MutationBatch, MutationOp, MutationSummary, RelationalError, Tuple, Value,
};
use castor_service::ServerReport;
use std::collections::{BTreeSet, HashSet};
use std::fmt;

/// A decoding failure: what was being decoded and why it failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    /// Human-readable description of the malformed input.
    pub message: String,
}

impl CodecError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        CodecError {
            message: message.into(),
        }
    }
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed payload: {}", self.message)
    }
}

impl std::error::Error for CodecError {}

/// Growable output buffer with the primitive writers.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// A fresh, empty buffer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// One raw byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// LEB128 varint.
    pub fn put_uvarint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Zigzagged LEB128 varint for signed integers.
    pub fn put_ivarint(&mut self, v: i64) {
        self.put_uvarint(((v << 1) ^ (v >> 63)) as u64);
    }

    /// `usize` as a varint.
    pub fn put_usize(&mut self, v: usize) {
        self.put_uvarint(v as u64);
    }

    /// IEEE-754 bits, little-endian.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// One boolean byte.
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Length-prefixed UTF-8.
    pub fn put_str(&mut self, v: &str) {
        self.put_usize(v.len());
        self.buf.extend_from_slice(v.as_bytes());
    }
}

/// Bounds-checked reader over an encoded payload.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `buf`, positioned at its start.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Whether every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Fails unless the payload was consumed exactly — trailing garbage is
    /// as malformed as a truncation.
    pub fn finish(&self) -> Result<(), CodecError> {
        if self.is_exhausted() {
            Ok(())
        } else {
            Err(CodecError::new(format!(
                "{} trailing bytes after payload",
                self.buf.len() - self.pos
            )))
        }
    }

    /// One raw byte.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        let Some(&byte) = self.buf.get(self.pos) else {
            return Err(CodecError::new("unexpected end of payload"));
        };
        self.pos += 1;
        Ok(byte)
    }

    /// LEB128 varint (at most 10 bytes).
    pub fn get_uvarint(&mut self) -> Result<u64, CodecError> {
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.get_u8()?;
            if shift == 63 && byte > 1 {
                return Err(CodecError::new("varint overflows u64"));
            }
            value |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
            if shift > 63 {
                return Err(CodecError::new("varint longer than 10 bytes"));
            }
        }
    }

    /// Zigzagged LEB128 varint.
    pub fn get_ivarint(&mut self) -> Result<i64, CodecError> {
        let v = self.get_uvarint()?;
        Ok(((v >> 1) as i64) ^ -((v & 1) as i64))
    }

    /// `usize` from a varint, rejecting values beyond the platform width.
    pub fn get_usize(&mut self) -> Result<usize, CodecError> {
        usize::try_from(self.get_uvarint()?)
            .map_err(|_| CodecError::new("length exceeds platform usize"))
    }

    /// A length prefix for a collection about to be decoded: bounded by
    /// the bytes actually remaining, so a forged huge length cannot force
    /// a huge allocation before decoding fails.
    pub fn get_len(&mut self) -> Result<usize, CodecError> {
        let len = self.get_usize()?;
        if len > self.buf.len() - self.pos {
            return Err(CodecError::new(format!(
                "declared length {len} exceeds remaining payload"
            )));
        }
        Ok(len)
    }

    /// IEEE-754 bits, little-endian.
    pub fn get_f64(&mut self) -> Result<f64, CodecError> {
        let end = self.pos + 8;
        let Some(bytes) = self.buf.get(self.pos..end) else {
            return Err(CodecError::new("unexpected end of payload in f64"));
        };
        self.pos = end;
        Ok(f64::from_bits(u64::from_le_bytes(
            bytes.try_into().expect("slice is 8 bytes"),
        )))
    }

    /// One boolean byte (0 or 1 only).
    pub fn get_bool(&mut self) -> Result<bool, CodecError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(CodecError::new(format!("invalid bool byte {other}"))),
        }
    }

    /// Length-prefixed UTF-8.
    pub fn get_str(&mut self) -> Result<String, CodecError> {
        let len = self.get_len()?;
        let end = self.pos + len;
        let bytes = &self.buf[self.pos..end];
        self.pos = end;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::new("string is not UTF-8"))
    }
}

/// A value with a wire encoding. Field order is the struct's declared
/// order; enums lead with a one-byte tag.
pub trait Wire: Sized {
    /// Appends this value's encoding to `w`.
    fn encode(&self, w: &mut ByteWriter);
    /// Decodes one value, consuming exactly its bytes.
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError>;
}

/// Encodes a standalone value into a fresh buffer.
pub fn to_bytes<T: Wire>(value: &T) -> Vec<u8> {
    let mut w = ByteWriter::new();
    value.encode(&mut w);
    w.into_bytes()
}

/// Decodes a standalone value, requiring the buffer to be consumed
/// exactly.
pub fn from_bytes<T: Wire>(bytes: &[u8]) -> Result<T, CodecError> {
    let mut r = ByteReader::new(bytes);
    let value = T::decode(&mut r)?;
    r.finish()?;
    Ok(value)
}

impl Wire for String {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_str(self);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        r.get_str()
    }
}

impl Wire for usize {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_usize(*self);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        r.get_usize()
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.encode(w);
            }
        }
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            other => Err(CodecError::new(format!("invalid Option tag {other}"))),
        }
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_usize(self.len());
        for item in self {
            item.encode(w);
        }
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let len = r.get_len()?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl Wire for Value {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            Value::Str(s) => {
                w.put_u8(0);
                w.put_str(s);
            }
            Value::Int(i) => {
                w.put_u8(1);
                w.put_ivarint(*i);
            }
        }
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            0 => Ok(Value::str(r.get_str()?)),
            1 => Ok(Value::Int(r.get_ivarint()?)),
            other => Err(CodecError::new(format!("invalid Value tag {other}"))),
        }
    }
}

impl Wire for Tuple {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_usize(self.arity());
        for value in self.iter() {
            value.encode(w);
        }
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let arity = r.get_len()?;
        let mut values = Vec::with_capacity(arity);
        for _ in 0..arity {
            values.push(Value::decode(r)?);
        }
        Ok(Tuple::new(values))
    }
}

impl Wire for HashSet<Tuple> {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_usize(self.len());
        for tuple in self {
            tuple.encode(w);
        }
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let len = r.get_len()?;
        let mut out = HashSet::with_capacity(len);
        for _ in 0..len {
            out.insert(Tuple::decode(r)?);
        }
        Ok(out)
    }
}

impl Wire for BTreeSet<String> {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_usize(self.len());
        for item in self {
            w.put_str(item);
        }
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let len = r.get_len()?;
        let mut out = BTreeSet::new();
        for _ in 0..len {
            out.insert(r.get_str()?);
        }
        Ok(out)
    }
}

impl Wire for Term {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            Term::Var(name) => {
                w.put_u8(0);
                w.put_str(name);
            }
            Term::Const(value) => {
                w.put_u8(1);
                value.encode(w);
            }
        }
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            0 => Ok(Term::Var(r.get_str()?)),
            1 => Ok(Term::Const(Value::decode(r)?)),
            other => Err(CodecError::new(format!("invalid Term tag {other}"))),
        }
    }
}

impl Wire for Atom {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_str(&self.relation);
        self.terms.encode(w);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let relation = r.get_str()?;
        let terms = Vec::<Term>::decode(r)?;
        Ok(Atom { relation, terms })
    }
}

impl Wire for Clause {
    fn encode(&self, w: &mut ByteWriter) {
        self.head.encode(w);
        self.body.encode(w);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let head = Atom::decode(r)?;
        let body = Vec::<Atom>::decode(r)?;
        Ok(Clause { head, body })
    }
}

impl Wire for Definition {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_str(&self.target);
        self.clauses.encode(w);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let target = r.get_str()?;
        let clauses = Vec::<Clause>::decode(r)?;
        Ok(Definition::new(target, clauses))
    }
}

impl Wire for ClauseCounts {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_usize(self.positive);
        w.put_usize(self.negative);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(ClauseCounts {
            positive: r.get_usize()?,
            negative: r.get_usize()?,
        })
    }
}

impl Wire for MutationBatch {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_usize(self.ops().len());
        for op in self.ops() {
            match op {
                MutationOp::Insert { relation, tuple } => {
                    w.put_u8(0);
                    w.put_str(relation);
                    tuple.encode(w);
                }
                MutationOp::Remove { relation, tuple } => {
                    w.put_u8(1);
                    w.put_str(relation);
                    tuple.encode(w);
                }
            }
        }
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let len = r.get_len()?;
        let mut batch = MutationBatch::new();
        for _ in 0..len {
            let tag = r.get_u8()?;
            let relation = r.get_str()?;
            let tuple = Tuple::decode(r)?;
            batch = match tag {
                0 => batch.insert(relation, tuple),
                1 => batch.remove(relation, tuple),
                other => {
                    return Err(CodecError::new(format!("invalid MutationOp tag {other}")));
                }
            };
        }
        Ok(batch)
    }
}

impl Wire for MutationSummary {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_usize(self.inserted);
        w.put_usize(self.removed);
        self.changed_relations.encode(w);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(MutationSummary {
            inserted: r.get_usize()?,
            removed: r.get_usize()?,
            changed_relations: BTreeSet::<String>::decode(r)?,
        })
    }
}

impl Wire for RelationalError {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            RelationalError::UnknownRelation(name) => {
                w.put_u8(0);
                w.put_str(name);
            }
            RelationalError::UnknownAttribute {
                relation,
                attribute,
            } => {
                w.put_u8(1);
                w.put_str(relation);
                w.put_str(attribute);
            }
            RelationalError::ArityMismatch {
                relation,
                expected,
                actual,
            } => {
                w.put_u8(2);
                w.put_str(relation);
                w.put_usize(*expected);
                w.put_usize(*actual);
            }
            RelationalError::ConstraintViolation(msg) => {
                w.put_u8(3);
                w.put_str(msg);
            }
            RelationalError::DuplicateRelation(name) => {
                w.put_u8(4);
                w.put_str(name);
            }
        }
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(match r.get_u8()? {
            0 => RelationalError::UnknownRelation(r.get_str()?),
            1 => RelationalError::UnknownAttribute {
                relation: r.get_str()?,
                attribute: r.get_str()?,
            },
            2 => RelationalError::ArityMismatch {
                relation: r.get_str()?,
                expected: r.get_usize()?,
                actual: r.get_usize()?,
            },
            3 => RelationalError::ConstraintViolation(r.get_str()?),
            4 => RelationalError::DuplicateRelation(r.get_str()?),
            other => {
                return Err(CodecError::new(format!(
                    "invalid RelationalError tag {other}"
                )));
            }
        })
    }
}

impl Wire for LearnerParams {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_usize(self.constant_positions.len());
        for (relation, position) in &self.constant_positions {
            w.put_str(relation);
            w.put_usize(*position);
        }
        w.put_usize(self.clause_length);
        w.put_usize(self.max_depth);
        w.put_usize(self.max_iterations);
        w.put_f64(self.min_precision);
        w.put_usize(self.min_pos);
        w.put_usize(self.beam_width);
        w.put_usize(self.sample_size);
        w.put_usize(self.max_recall_per_relation);
        w.put_usize(self.max_distinct_variables);
        w.put_bool(self.allow_constants);
        w.put_usize(self.max_constants_per_attribute);
        w.put_usize(self.threads);
        w.put_usize(self.eval_budget);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let len = r.get_len()?;
        let mut constant_positions = BTreeSet::new();
        for _ in 0..len {
            let relation = r.get_str()?;
            let position = r.get_usize()?;
            constant_positions.insert((relation, position));
        }
        Ok(LearnerParams {
            constant_positions,
            clause_length: r.get_usize()?,
            max_depth: r.get_usize()?,
            max_iterations: r.get_usize()?,
            min_precision: r.get_f64()?,
            min_pos: r.get_usize()?,
            beam_width: r.get_usize()?,
            sample_size: r.get_usize()?,
            max_recall_per_relation: r.get_usize()?,
            max_distinct_variables: r.get_usize()?,
            allow_constants: r.get_bool()?,
            max_constants_per_attribute: r.get_usize()?,
            threads: r.get_usize()?,
            eval_budget: r.get_usize()?,
        })
    }
}

impl Wire for castor_core::CastorConfig {
    fn encode(&self, w: &mut ByteWriter) {
        self.params.encode(w);
        w.put_bool(self.use_general_inds);
        w.put_bool(self.promote_general_inds);
        w.put_bool(self.safe_clauses);
        w.put_bool(self.use_stored_procedures);
        w.put_bool(self.minimize_clauses);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(castor_core::CastorConfig {
            params: LearnerParams::decode(r)?,
            use_general_inds: r.get_bool()?,
            promote_general_inds: r.get_bool()?,
            safe_clauses: r.get_bool()?,
            use_stored_procedures: r.get_bool()?,
            minimize_clauses: r.get_bool()?,
        })
    }
}

impl Wire for LearningTask {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_str(&self.target);
        w.put_usize(self.target_arity);
        self.positive.encode(w);
        self.negative.encode(w);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let target = r.get_str()?;
        let target_arity = r.get_usize()?;
        let positive = Vec::<Tuple>::decode(r)?;
        let negative = Vec::<Tuple>::decode(r)?;
        for example in positive.iter().chain(negative.iter()) {
            if example.arity() != target_arity {
                return Err(CodecError::new(format!(
                    "example arity {} does not match target arity {target_arity}",
                    example.arity()
                )));
            }
        }
        Ok(LearningTask {
            target,
            target_arity,
            positive,
            negative,
        })
    }
}

impl Wire for castor_service::LearnAlgorithm {
    fn encode(&self, w: &mut ByteWriter) {
        use castor_service::LearnAlgorithm::*;
        match self {
            Foil(params) => {
                w.put_u8(0);
                params.encode(w);
            }
            Progol(params) => {
                w.put_u8(1);
                params.encode(w);
            }
            Golem(params) => {
                w.put_u8(2);
                params.encode(w);
            }
            ProGolem(params) => {
                w.put_u8(3);
                params.encode(w);
            }
            Castor(config) => {
                w.put_u8(4);
                config.encode(w);
            }
        }
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        use castor_service::LearnAlgorithm::*;
        Ok(match r.get_u8()? {
            0 => Foil(LearnerParams::decode(r)?),
            1 => Progol(LearnerParams::decode(r)?),
            2 => Golem(LearnerParams::decode(r)?),
            3 => ProGolem(LearnerParams::decode(r)?),
            4 => Castor(Box::new(castor_core::CastorConfig::decode(r)?)),
            other => {
                return Err(CodecError::new(format!(
                    "invalid LearnAlgorithm tag {other}"
                )));
            }
        })
    }
}

impl Wire for EngineReport {
    fn encode(&self, w: &mut ByteWriter) {
        for field in [
            self.coverage_tests,
            self.cache_hits,
            self.cache_misses,
            self.cross_variant_hits,
            self.cross_variant_translations,
            self.generality_skips,
            self.budget_exhausted,
            self.exhaustions_evicted,
            self.plans_compiled,
            self.plan_cache_hits,
            self.plans_invalidated,
            self.plans_recosted,
            self.cache_clauses_invalidated,
            self.mutation_batches,
            self.batches,
            self.batch_clauses,
            self.batch_prefix_hits,
            self.batch_suffix_forks,
            self.batch_plans_compiled,
            self.batch_plan_cache_hits,
            self.batch_plans_invalidated,
        ] {
            w.put_usize(field);
        }
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(EngineReport {
            coverage_tests: r.get_usize()?,
            cache_hits: r.get_usize()?,
            cache_misses: r.get_usize()?,
            cross_variant_hits: r.get_usize()?,
            cross_variant_translations: r.get_usize()?,
            generality_skips: r.get_usize()?,
            budget_exhausted: r.get_usize()?,
            exhaustions_evicted: r.get_usize()?,
            plans_compiled: r.get_usize()?,
            plan_cache_hits: r.get_usize()?,
            plans_invalidated: r.get_usize()?,
            plans_recosted: r.get_usize()?,
            cache_clauses_invalidated: r.get_usize()?,
            mutation_batches: r.get_usize()?,
            batches: r.get_usize()?,
            batch_clauses: r.get_usize()?,
            batch_prefix_hits: r.get_usize()?,
            batch_suffix_forks: r.get_usize()?,
            batch_plans_compiled: r.get_usize()?,
            batch_plan_cache_hits: r.get_usize()?,
            batch_plans_invalidated: r.get_usize()?,
        })
    }
}

impl Wire for ServerReport {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_usize(self.sessions_accepted);
        w.put_usize(self.sessions_rejected);
        w.put_usize(self.sessions_active);
        w.put_usize(self.jobs_submitted);
        w.put_usize(self.jobs_rejected);
        w.put_usize(self.queue_drains);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(ServerReport {
            sessions_accepted: r.get_usize()?,
            sessions_rejected: r.get_usize()?,
            sessions_active: r.get_usize()?,
            jobs_submitted: r.get_usize()?,
            jobs_rejected: r.get_usize()?,
            queue_drains: r.get_usize()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + fmt::Debug>(value: T) {
        let bytes = to_bytes(&value);
        assert_eq!(from_bytes::<T>(&bytes).unwrap(), value);
    }

    #[test]
    fn varints_roundtrip_at_the_boundaries() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX - 1, u64::MAX] {
            let mut w = ByteWriter::new();
            w.put_uvarint(v);
            let bytes = w.into_bytes();
            let mut r = ByteReader::new(&bytes);
            assert_eq!(r.get_uvarint().unwrap(), v);
            assert!(r.is_exhausted());
        }
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, -300, 300] {
            let mut w = ByteWriter::new();
            w.put_ivarint(v);
            let bytes = w.into_bytes();
            assert_eq!(ByteReader::new(&bytes).get_ivarint().unwrap(), v);
        }
    }

    #[test]
    fn logic_types_roundtrip() {
        roundtrip(Value::str("alice"));
        roundtrip(Value::int(-42));
        roundtrip(Tuple::from_strs(&["a", "b"]));
        roundtrip(Term::var("x"));
        roundtrip(Term::constant("k"));
        let clause = Clause::new(
            Atom::vars("head", &["x", "y"]),
            vec![
                Atom::vars("body", &["x", "z"]),
                Atom::new("lit", vec![Term::var("z"), Term::constant("c")]),
            ],
        );
        roundtrip(clause.clone());
        roundtrip(Definition::new("head", vec![clause]));
        roundtrip(ClauseCounts {
            positive: 3,
            negative: 1,
        });
    }

    #[test]
    fn mutation_and_report_types_roundtrip() {
        roundtrip(
            MutationBatch::new()
                .insert("r", Tuple::from_strs(&["a"]))
                .remove("s", Tuple::from_strs(&["b", "c"])),
        );
        roundtrip(MutationSummary {
            inserted: 2,
            removed: 1,
            changed_relations: ["r".to_string(), "s".to_string()].into_iter().collect(),
        });
        roundtrip(RelationalError::ArityMismatch {
            relation: "r".into(),
            expected: 2,
            actual: 3,
        });
        roundtrip(EngineReport {
            coverage_tests: 123,
            exhaustions_evicted: 7,
            batch_plans_invalidated: 9,
            ..Default::default()
        });
        roundtrip(ServerReport {
            sessions_accepted: 1,
            sessions_rejected: 2,
            sessions_active: 3,
            jobs_submitted: 4,
            jobs_rejected: 5,
            queue_drains: 6,
        });
    }

    #[test]
    fn learner_config_types_roundtrip() {
        let mut params = LearnerParams::large_dataset();
        params
            .constant_positions
            .insert(("bond".to_string(), 2usize));
        roundtrip(params.clone());
        let config = castor_core::CastorConfig {
            params,
            use_general_inds: true,
            ..Default::default()
        };
        roundtrip(config);
        roundtrip(LearningTask::new(
            "t",
            1,
            vec![Tuple::from_strs(&["a"])],
            vec![Tuple::from_strs(&["b"])],
        ));
        roundtrip(castor_service::LearnAlgorithm::Foil(
            LearnerParams::default(),
        ));
    }

    #[test]
    fn truncated_and_malformed_payloads_fail_cleanly() {
        let bytes = to_bytes(&Tuple::from_strs(&["abc", "def"]));
        for cut in 0..bytes.len() {
            assert!(
                from_bytes::<Tuple>(&bytes[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
        // Trailing garbage is rejected.
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(from_bytes::<Tuple>(&padded).is_err());
        // Invalid enum tag.
        assert!(from_bytes::<Term>(&[9]).is_err());
        // A forged huge collection length fails before allocating.
        let mut w = ByteWriter::new();
        w.put_uvarint(u64::MAX - 2);
        assert!(from_bytes::<Vec<String>>(&w.into_bytes()).is_err());
    }
}
