//! The readiness-driven RPC server core: one epoll event loop driving
//! every connection, replacing the two-threads-per-connection model.
//!
//! One thread owns the listener, a wake [`EventFd`], and every accepted
//! connection. Sockets run non-blocking; epoll (level-triggered) says
//! which are readable/writable, and a per-connection state machine does
//! the rest:
//!
//! ```text
//!            accept                Hello ok
//!   listener ------> [Handshake] ----------> [Open] ---+
//!                        |                     |       | read: frames -> jobs
//!                        | bad first frame     |       | write: outq -> wbuf -> socket
//!                        v                     v       |
//!                 [error frame queued,   EOF / error <-+
//!                  close after flush] ->  cancel session, drop conn
//! ```
//!
//! Jobs still dispatch onto the per-database runner queues exactly as
//! before; what changes is how completions come back. Instead of a
//! writer thread blocking in `join()`, every submitted handle gets a
//! completion hook ([`castor_service::JobHandle::on_complete`]) that
//! pushes the connection's token onto the wake queue and signals its
//! eventfd — the loop wakes, polls the handle without blocking, and
//! resumes encoding. The threaded writer's semantics are preserved
//! exactly:
//!
//! * responses leave in submission order (the write queue is drained
//!   strictly head-first; an unfinished job at the head blocks encoding,
//!   never reorders);
//! * lazy responses (reports, metrics, trace dumps) are evaluated only
//!   when they reach the head — after every earlier job of this
//!   connection has completed — so a pipelined `Report` observes the
//!   jobs submitted before it;
//! * v2 stream frames consume connection-scoped flow-control credit; a
//!   spent budget parks the stream (credit grants arrive on the read
//!   path and resume it) without blocking the loop;
//! * a disconnect — EOF, `EPOLLRDHUP`, or a socket error — fires the
//!   session's cancel token and drops the connection, reclaiming the
//!   admission slot.
//!
//! Writes are buffered per connection with partial-write resumption: a
//! `WouldBlock` mid-frame leaves the buffer positioned where the kernel
//! stopped, `EPOLLOUT` interest is registered, and the flush resumes on
//! the next writability event. Fault injection stays byte-exact: the
//! [`FaultStream`] wrapper caps reads/writes at the scheduled
//! thresholds, and delay faults are confirmed only by byte-moving calls
//! (see the fault module docs), so `WouldBlock` outcomes cannot burn a
//! scheduled fault.
//!
//! The loop exports its own health as metrics: a
//! `castor_rpc_loop_connections` gauge, a
//! `castor_rpc_loop_ready_batches_total` counter (epoll wakeups that
//! carried events), and a `castor_rpc_loop_wake_ns` histogram (latency
//! from a runner thread signalling a completion to the loop observing
//! it).

use crate::fault::{FaultStats, FaultStream};
use crate::frame::{
    write_response_v, ErrorCode, FrameAccumulator, Request, Response, StreamBody,
    COVERED_CHUNK_SETS, DEFAULT_STREAM_CREDIT, PROTOCOL_V2,
};
use crate::server::{frame_error_response, with_wire_deadline, RpcConfig};
use crate::sys::{Epoll, EpollEvent, EventFd, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use castor_engine::{LearnProgress, ProgressSink};
use castor_obs::{Counter, Gauge, Histogram, Obs};
use castor_service::{
    CoverageJob, Job, JobHandle, JobResult, LearnJob, ScoreJob, Server, ServerError, Session,
};
use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::TcpListener;
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKER: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;

/// Stop encoding new responses into a connection's write buffer once
/// this many bytes are pending: bounds per-connection memory against a
/// slow reader without stalling anyone else.
const WBUF_TARGET: usize = 256 * 1024;

/// How runner threads reach the loop: push the completed connection's
/// token (plus the signal timestamp, for the wake-latency histogram)
/// and ring the eventfd.
struct Waker {
    eventfd: EventFd,
    pending: Mutex<Vec<(u64, u64)>>,
}

impl Waker {
    fn notify(&self, token: u64, now_ns: u64) {
        self.pending
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push((token, now_ns));
        self.eventfd.signal();
    }

    fn drain(&self) -> Vec<(u64, u64)> {
        self.eventfd.drain();
        std::mem::take(&mut *self.pending.lock().unwrap_or_else(|e| e.into_inner()))
    }
}

/// Where a connection is in its lifecycle.
enum ConnState {
    /// Waiting for the Hello frame; no session yet.
    Handshake,
    /// Hello accepted: a live session, pinned to the Hello's version.
    Open { session: Arc<Session> },
}

/// One queued response, mirroring the threaded server's `Outbound` (plus
/// explicit stream-resumption state, which the threaded writer kept on
/// its stack while blocking).
enum Pending {
    Ready(u64, Response),
    Job(u64, JobHandle),
    Lazy(u64, Box<dyn FnOnce() -> Response + Send>),
    /// A v2 covered result being streamed as flow-controlled chunks.
    CoveredStream {
        id: u64,
        trace: u64,
        chunks: VecDeque<Vec<std::collections::HashSet<castor_relational::Tuple>>>,
        seq: u64,
        total: u64,
        start_ns: u64,
    },
    /// A v2 learn: the sink pushes progress events here from the runner
    /// thread (never blocking) and wakes the loop; the terminal result
    /// follows once the handle completes and the queue is drained.
    LearnStream {
        id: u64,
        handle: JobHandle,
        events: Arc<Mutex<VecDeque<LearnProgress>>>,
        seq: u64,
    },
}

struct Conn {
    stream: FaultStream,
    state: ConnState,
    /// Negotiated protocol version; 1 until the Hello pins it (pre-Hello
    /// failures are answered at v1, the one version every client reads).
    version: u8,
    decoder: FrameAccumulator,
    outq: VecDeque<Pending>,
    /// Encoded-but-unsent bytes; `wpos` is the partial-write cursor.
    wbuf: Vec<u8>,
    wpos: usize,
    /// Remaining v2 stream-frame budget (grants add, stream frames take).
    credit: u64,
    /// Set after a framing/handshake error: flush what is queued, then
    /// close. Reading stops (the stream cannot be resynchronized).
    close_after_flush: bool,
    /// The interest mask currently registered with epoll.
    interest: u32,
}

impl Conn {
    fn unsent(&self) -> usize {
        self.wbuf.len() - self.wpos
    }

    fn queue_error(&mut self, id: u64, code: ErrorCode, limit: usize, message: String) {
        self.outq.push_back(Pending::Ready(
            id,
            Response::Error {
                code,
                limit,
                message,
                retry_after_ms: 0,
            },
        ));
    }
}

/// What pumping one connection concluded.
#[derive(PartialEq, Eq)]
enum Pumped {
    Alive,
    Dead,
}

struct EventLoop {
    listener: TcpListener,
    service: Arc<Server>,
    config: RpcConfig,
    shutdown: Arc<AtomicBool>,
    fault_stats: Arc<FaultStats>,
    epoll: Epoll,
    waker: Arc<Waker>,
    obs: Arc<Obs>,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    /// Accept-order index for arming fault schedules (independent of the
    /// epoll token so plans target "the first connection" exactly as the
    /// threaded core did).
    conn_index: u64,
    reply_ns: Arc<Histogram>,
    loop_connections: Arc<Gauge>,
    ready_batches: Arc<Counter>,
    wake_ns: Arc<Histogram>,
    /// Per-phase loop profiling (`castor_rpc_loop_phase_ns{phase=...}`):
    /// where a loop iteration's time actually goes — draining sockets,
    /// dispatching parsed frames onto runner queues, encoding responses,
    /// or flushing write buffers — so a saturated loop can be diagnosed
    /// from metrics alone.
    phase_read_ns: Arc<Histogram>,
    phase_dispatch_ns: Arc<Histogram>,
    phase_encode_ns: Arc<Histogram>,
    phase_flush_ns: Arc<Histogram>,
}

/// Runs the event loop to completion (the shutdown flag, checked on
/// every wakeup, ends it). Called on the dedicated `castor-rpc-loop`
/// thread by [`crate::RpcServer::bind`].
pub(crate) fn run(
    listener: TcpListener,
    service: Arc<Server>,
    config: RpcConfig,
    shutdown: Arc<AtomicBool>,
    fault_stats: Arc<FaultStats>,
) {
    let Ok(epoll) = Epoll::new() else { return };
    let Ok(eventfd) = EventFd::new() else { return };
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    if epoll
        .add(listener.as_raw_fd(), EPOLLIN, TOKEN_LISTENER)
        .is_err()
    {
        return;
    }
    if epoll.add(eventfd.raw(), EPOLLIN, TOKEN_WAKER).is_err() {
        return;
    }
    let obs = Arc::clone(service.obs());
    let registry = obs.registry();
    let mut el = EventLoop {
        reply_ns: registry.histogram(
            "castor_rpc_reply_encode_ns",
            "Nanoseconds spent encoding and writing one response frame.",
        ),
        loop_connections: registry.gauge(
            "castor_rpc_loop_connections",
            "Connections currently registered with the RPC event loop.",
        ),
        ready_batches: registry.counter(
            "castor_rpc_loop_ready_batches_total",
            "Epoll wakeups of the RPC event loop that carried ready events.",
        ),
        wake_ns: registry.histogram(
            "castor_rpc_loop_wake_ns",
            "Nanoseconds from a job-completion signal to the event loop observing it.",
        ),
        phase_read_ns: registry.labeled_histogram(
            "castor_rpc_loop_phase_ns",
            "Nanoseconds one event-loop phase took for one ready connection.",
            &[("phase", "read")],
        ),
        phase_dispatch_ns: registry.labeled_histogram(
            "castor_rpc_loop_phase_ns",
            "Nanoseconds one event-loop phase took for one ready connection.",
            &[("phase", "dispatch")],
        ),
        phase_encode_ns: registry.labeled_histogram(
            "castor_rpc_loop_phase_ns",
            "Nanoseconds one event-loop phase took for one ready connection.",
            &[("phase", "encode")],
        ),
        phase_flush_ns: registry.labeled_histogram(
            "castor_rpc_loop_phase_ns",
            "Nanoseconds one event-loop phase took for one ready connection.",
            &[("phase", "flush")],
        ),
        listener,
        service,
        config,
        shutdown,
        fault_stats,
        epoll,
        waker: Arc::new(Waker {
            eventfd,
            pending: Mutex::new(Vec::new()),
        }),
        obs,
        conns: HashMap::new(),
        next_token: FIRST_CONN_TOKEN,
        conn_index: 0,
    };
    el.run_loop();
}

impl EventLoop {
    fn run_loop(&mut self) {
        let mut events = vec![EpollEvent::default(); 256];
        let mut scratch = vec![0u8; 64 * 1024];
        loop {
            // The 500ms timeout is a belt-and-braces shutdown check; the
            // normal path is the Drop impl's connect() nudge making the
            // listener readable.
            let n = match self.epoll.wait(&mut events, 500) {
                Ok(n) => n,
                Err(_) => return,
            };
            if self.shutdown.load(Ordering::SeqCst) {
                // Cancel whatever is still running so runner queues drain
                // promptly; dropping the sessions reclaims their slots.
                for (_, conn) in self.conns.drain() {
                    if let ConnState::Open { session } = &conn.state {
                        session.cancel();
                    }
                }
                self.loop_connections.set(0);
                return;
            }
            if n > 0 {
                self.ready_batches.inc();
            }
            let mut to_pump: Vec<u64> = Vec::new();
            for ev in &events[..n] {
                let token = { ev.data };
                let ready = { ev.events };
                match token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKER => {
                        let now_ns = self.obs.now_ns();
                        for (conn_token, signalled_ns) in self.waker.drain() {
                            if signalled_ns > 0 && now_ns >= signalled_ns {
                                self.wake_ns.record_ns(now_ns - signalled_ns);
                            }
                            to_pump.push(conn_token);
                        }
                    }
                    _ => {
                        if ready & (EPOLLIN | EPOLLRDHUP | EPOLLERR | EPOLLHUP) != 0 {
                            self.read_ready(token, &mut scratch);
                        }
                        to_pump.push(token);
                    }
                }
            }
            for token in to_pump {
                if self.conns.contains_key(&token) && self.pump(token) == Pumped::Dead {
                    self.drop_conn(token);
                }
            }
        }
    }

    /// Accepts until the listener would block, registering each new
    /// connection in the Handshake state.
    fn accept_ready(&mut self) {
        loop {
            let stream = match self.listener.accept() {
                Ok((stream, _)) => stream,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            };
            let _ = stream.set_nodelay(true);
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            // Same accept-order fault arming as the threaded core, so
            // deterministic chaos plans reproduce across both.
            let fault_state = self
                .config
                .fault_plan
                .as_ref()
                .and_then(|plan| plan.arm(self.conn_index, &self.fault_stats));
            self.conn_index += 1;
            let stream = FaultStream::new(stream, fault_state);
            let token = self.next_token;
            self.next_token += 1;
            if self
                .epoll
                .add(stream.as_raw_fd(), EPOLLIN | EPOLLRDHUP, token)
                .is_err()
            {
                continue;
            }
            self.conns.insert(
                token,
                Conn {
                    stream,
                    state: ConnState::Handshake,
                    version: crate::frame::PROTOCOL_V1,
                    decoder: FrameAccumulator::new(
                        self.config.max_frame_bytes,
                        self.config.max_protocol_version,
                    ),
                    outq: VecDeque::new(),
                    wbuf: Vec::new(),
                    wpos: 0,
                    credit: 0,
                    close_after_flush: false,
                    interest: EPOLLIN | EPOLLRDHUP,
                },
            );
            self.loop_connections.set(self.conns.len() as i64);
        }
    }

    /// Drains the socket into the frame accumulator and dispatches every
    /// complete frame. A disconnect or unrecoverable frame error is
    /// recorded on the connection; the subsequent pump acts on it.
    fn read_ready(&mut self, token: u64, scratch: &mut [u8]) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if conn.close_after_flush {
            return;
        }
        let mut disconnected = false;
        let read_timer = self.obs.timer();
        loop {
            match conn.stream.read(scratch) {
                Ok(0) => {
                    disconnected = true;
                    break;
                }
                Ok(n) => conn.decoder.feed(&scratch[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    disconnected = true;
                    break;
                }
            }
        }
        read_timer.stop_ns(&self.phase_read_ns);
        // Frames already buffered are dispatched even when the read
        // ended in EOF — the client may have pipelined requests and
        // half-closed; the threaded reader behaved identically, parsing
        // everything it had before seeing the close.
        let dispatch_timer = self.obs.timer();
        while let Some(next) = {
            let conn = self.conns.get_mut(&token).expect("conn present");
            if conn.close_after_flush {
                None
            } else {
                conn.decoder.next_request()
            }
        } {
            match next {
                Ok((request_id, version, request)) => {
                    self.dispatch(token, request_id, version, request);
                }
                Err((request_id, error)) => {
                    let conn = self.conns.get_mut(&token).expect("conn present");
                    if let Some((code, limit, message)) = frame_error_response(&error) {
                        // Payload decode failures parsed the header, so
                        // the error frame echoes the client's request id
                        // (0 only for header-level failures).
                        conn.queue_error(request_id.unwrap_or(0), code, limit, message);
                    }
                    // Framing is byte-positional: no resync after a bad
                    // frame, so flush the error and close.
                    conn.close_after_flush = true;
                }
            }
        }
        dispatch_timer.stop_ns(&self.phase_dispatch_ns);
        if disconnected {
            let conn = self.conns.get_mut(&token).expect("conn present");
            // The client is gone: nothing further can be read and any
            // response we still hold has no reader worth waiting for.
            // Cancel in-flight work and close once the pump runs.
            if let ConnState::Open { session } = &conn.state {
                session.cancel();
            }
            conn.close_after_flush = true;
        }
    }

    /// Handles one complete request frame: the Hello exchange in the
    /// Handshake state, the full dispatch table once Open. Mirrors the
    /// threaded `handshake` + `read_loop` exactly.
    fn dispatch(&mut self, token: u64, request_id: u64, version: u8, request: Request) {
        let conn = self.conns.get_mut(&token).expect("conn present");
        match &conn.state {
            ConnState::Handshake => {
                // Non-Hello and admission failures answer at the frame's
                // version (it parsed, so the client speaks it).
                conn.version = version;
                let Request::Hello {
                    database,
                    eval_budget,
                    stream_credit,
                } = request
                else {
                    conn.queue_error(
                        request_id,
                        ErrorCode::Protocol,
                        0,
                        "first frame must be Hello".to_string(),
                    );
                    conn.close_after_flush = true;
                    return;
                };
                let session = match self.service.session(&database) {
                    Ok(session) => session,
                    Err(error) => {
                        let (code, limit) = match &error {
                            ServerError::UnknownDatabase(_) => (ErrorCode::UnknownDatabase, 0),
                            ServerError::SessionLimit { limit } => {
                                (ErrorCode::SessionLimit, *limit)
                            }
                            ServerError::DuplicateDatabase(_) => (ErrorCode::Protocol, 0),
                        };
                        conn.queue_error(request_id, code, limit, error.to_string());
                        conn.close_after_flush = true;
                        return;
                    }
                };
                let session = match eval_budget {
                    Some(budget) => session.with_eval_budget(budget),
                    None => session,
                };
                conn.state = ConnState::Open {
                    session: Arc::new(session),
                };
                conn.credit = stream_credit.unwrap_or(DEFAULT_STREAM_CREDIT);
                conn.outq
                    .push_back(Pending::Ready(request_id, Response::HelloOk));
            }
            ConnState::Open { session } => {
                let session = Arc::clone(session);
                self.dispatch_open(token, &session, request_id, request);
            }
        }
    }

    /// The Open-state dispatch table — request kinds map onto queue items
    /// exactly as the threaded reader's `Outbound` construction did.
    fn dispatch_open(
        &mut self,
        token: u64,
        session: &Arc<Session>,
        request_id: u64,
        request: Request,
    ) {
        let pending = match request {
            Request::Hello { .. } => {
                let conn = self.conns.get_mut(&token).expect("conn present");
                conn.queue_error(
                    request_id,
                    ErrorCode::Protocol,
                    0,
                    "session already open".to_string(),
                );
                return;
            }
            Request::Coverage {
                clauses,
                examples,
                deadline_ms,
            } => {
                let job =
                    with_wire_deadline(CoverageJob::new(clauses, examples), deadline_ms, |j, d| {
                        j.with_deadline(d)
                    });
                let handle = session.submit_traced(Job::Coverage(job), request_id);
                self.arm_completion(&handle, token);
                Pending::Job(request_id, handle)
            }
            Request::Score {
                clauses,
                positive,
                negative,
                deadline_ms,
            } => {
                let job = with_wire_deadline(
                    ScoreJob::new(clauses, positive, negative),
                    deadline_ms,
                    |j, d| j.with_deadline(d),
                );
                let handle = session.submit_traced(Job::Score(job), request_id);
                self.arm_completion(&handle, token);
                Pending::Job(request_id, handle)
            }
            Request::Learn {
                task,
                algorithm,
                deadline_ms,
            } => {
                let job =
                    with_wire_deadline(LearnJob::new(task, algorithm), deadline_ms, |j, d| {
                        j.with_deadline(d)
                    });
                let version = self
                    .conns
                    .get(&token)
                    .map(|c| c.version)
                    .unwrap_or(crate::frame::PROTOCOL_V1);
                if version >= PROTOCOL_V2 {
                    // Progress events cross from the runner thread through
                    // this queue; every push also wakes the loop so frames
                    // flush promptly. The runner clears the engine's sink
                    // before completing the handle, so once `try_poll`
                    // returns the queue is final.
                    let events: Arc<Mutex<VecDeque<LearnProgress>>> =
                        Arc::new(Mutex::new(VecDeque::new()));
                    let sink: ProgressSink = {
                        let events = Arc::clone(&events);
                        let waker = Arc::clone(&self.waker);
                        let obs = Arc::clone(&self.obs);
                        Arc::new(move |p: &LearnProgress| {
                            events
                                .lock()
                                .unwrap_or_else(|e| e.into_inner())
                                .push_back(p.clone());
                            waker.notify(token, obs.now_ns());
                        })
                    };
                    let handle = session.submit_traced_with_progress(
                        Job::Learn(Box::new(job)),
                        request_id,
                        Some(sink),
                    );
                    self.arm_completion(&handle, token);
                    Pending::LearnStream {
                        id: request_id,
                        handle,
                        events,
                        seq: 0,
                    }
                } else {
                    let handle = session.submit_traced(Job::Learn(Box::new(job)), request_id);
                    self.arm_completion(&handle, token);
                    Pending::Job(request_id, handle)
                }
            }
            Request::Mutate(batch) => {
                let handle = session.submit_traced(Job::Mutate(batch), request_id);
                self.arm_completion(&handle, token);
                Pending::Job(request_id, handle)
            }
            // Lazy responses are evaluated at the head of the queue,
            // after every earlier job completed — pipelined reports see
            // their deltas, matching in-process semantics.
            Request::Report => {
                let session = Arc::clone(session);
                Pending::Lazy(
                    request_id,
                    Box::new(move || Response::Report(session.report())),
                )
            }
            Request::ServerReport => {
                let session = Arc::clone(session);
                let service = Arc::clone(&self.service);
                Pending::Lazy(
                    request_id,
                    Box::new(move || {
                        let engine = service.report(session.database()).unwrap_or_default();
                        Response::ServerReport {
                            engine,
                            server: service.server_report(),
                        }
                    }),
                )
            }
            Request::Metrics => {
                let service = Arc::clone(&self.service);
                Pending::Lazy(
                    request_id,
                    Box::new(move || Response::Metrics(service.metrics_text())),
                )
            }
            Request::TraceDump => {
                let service = Arc::clone(&self.service);
                Pending::Lazy(
                    request_id,
                    Box::new(move || Response::TraceDump(service.trace_json())),
                )
            }
            // Credit grants act immediately — possibly resuming a stream
            // parked at the queue head — and have no response frame.
            Request::StreamCredit { grant } => {
                let conn = self.conns.get_mut(&token).expect("conn present");
                if conn.version >= PROTOCOL_V2 {
                    conn.credit = conn.credit.saturating_add(grant);
                } else {
                    conn.queue_error(
                        request_id,
                        ErrorCode::Protocol,
                        0,
                        "stream credit requires protocol v2".to_string(),
                    );
                }
                return;
            }
        };
        let conn = self.conns.get_mut(&token).expect("conn present");
        conn.outq.push_back(pending);
    }

    /// Arms the completion hook that brings a finished job back to the
    /// loop. Firing is idempotent-cheap: a spurious wake pumps a
    /// connection that has nothing to do.
    fn arm_completion(&self, handle: &JobHandle, token: u64) {
        let waker = Arc::clone(&self.waker);
        let obs = Arc::clone(&self.obs);
        handle.on_complete(move || waker.notify(token, obs.now_ns()));
    }

    /// Encodes whatever the head of the queue allows, flushes the write
    /// buffer as far as the socket accepts, and updates epoll interest.
    fn pump(&mut self, token: u64) -> Pumped {
        let encode_timer = self.obs.timer();
        let encoded = self.encode_ready(token);
        encode_timer.stop_ns(&self.phase_encode_ns);
        if encoded == Pumped::Dead {
            return Pumped::Dead;
        }
        let conn = self.conns.get_mut(&token).expect("conn present");
        // Flush with partial-write resumption: `wpos` marks how far the
        // kernel got; a WouldBlock leaves it mid-frame and EPOLLOUT
        // interest resumes the flush on the next writability event.
        let flush_timer = self.obs.timer();
        while conn.wpos < conn.wbuf.len() {
            match conn.stream.write(&conn.wbuf[conn.wpos..]) {
                Ok(0) => return Pumped::Dead,
                Ok(n) => conn.wpos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return Pumped::Dead,
            }
        }
        flush_timer.stop_ns(&self.phase_flush_ns);
        if conn.wpos == conn.wbuf.len() {
            conn.wbuf.clear();
            conn.wpos = 0;
        } else if conn.wpos >= WBUF_TARGET {
            conn.wbuf.drain(..conn.wpos);
            conn.wpos = 0;
        }
        if conn.close_after_flush && conn.outq.is_empty() && conn.wbuf.is_empty() {
            return Pumped::Dead;
        }
        let mut want = EPOLLRDHUP;
        if !conn.close_after_flush {
            want |= EPOLLIN;
        }
        if !conn.wbuf.is_empty() {
            want |= EPOLLOUT;
        }
        if want != conn.interest {
            if self
                .epoll
                .modify(conn.stream.as_raw_fd(), want, token)
                .is_err()
            {
                return Pumped::Dead;
            }
            conn.interest = want;
        }
        Pumped::Alive
    }

    /// Drains the response queue head-first into the write buffer, up to
    /// the buffering target. Stops (without reordering) at the first item
    /// that cannot make progress: an unfinished job, or a stream frame
    /// with no credit.
    fn encode_ready(&mut self, token: u64) -> Pumped {
        loop {
            let conn = self.conns.get_mut(&token).expect("conn present");
            if conn.unsent() >= WBUF_TARGET {
                return Pumped::Alive;
            }
            let Some(head) = conn.outq.front_mut() else {
                return Pumped::Alive;
            };
            match head {
                Pending::Ready(..) | Pending::Lazy(..) => {
                    let (id, response) = match conn.outq.pop_front().expect("head exists") {
                        Pending::Ready(id, response) => (id, response),
                        Pending::Lazy(id, produce) => (id, produce()),
                        _ => unreachable!("matched above"),
                    };
                    self.encode_response(token, id, id, &response);
                }
                Pending::Job(id, handle) => {
                    let Some(result) = handle.try_poll() else {
                        // Head not done: everything behind it waits (order
                        // on the wire is submission order). The completion
                        // hook wakes us.
                        return Pumped::Alive;
                    };
                    let id = *id;
                    let trace = handle.trace_id();
                    conn.outq.pop_front();
                    match result {
                        Ok(JobResult::Covered(sets)) if conn.version >= PROTOCOL_V2 => {
                            // v2 streams covered sets as flow-controlled
                            // chunks; an empty result still sends one
                            // (empty) final chunk so the request completes.
                            let chunks: VecDeque<_> = if sets.is_empty() {
                                VecDeque::from([Vec::new()])
                            } else {
                                sets.chunks(COVERED_CHUNK_SETS)
                                    .map(|chunk| chunk.to_vec())
                                    .collect()
                            };
                            let total = chunks.len() as u64;
                            let start_ns = self.obs.now_ns();
                            conn.outq.push_front(Pending::CoveredStream {
                                id,
                                trace,
                                chunks,
                                seq: 0,
                                total,
                                start_ns,
                            });
                        }
                        Ok(JobResult::Covered(sets)) => {
                            self.encode_response(token, id, trace, &Response::Covered(sets));
                        }
                        Ok(JobResult::Scores(counts)) => {
                            self.encode_response(token, id, trace, &Response::Scores(counts));
                        }
                        Ok(JobResult::Learned(definition)) => {
                            self.encode_response(token, id, trace, &Response::Learned(definition));
                        }
                        Ok(JobResult::Mutated(summary)) => {
                            self.encode_response(token, id, trace, &Response::Mutated(summary));
                        }
                        Err(error) => {
                            self.encode_response(
                                token,
                                id,
                                trace,
                                &Response::from_job_error(error),
                            );
                        }
                    }
                }
                Pending::CoveredStream {
                    id,
                    trace,
                    chunks,
                    seq,
                    total,
                    start_ns,
                } => {
                    if chunks.is_empty() {
                        let (trace, start_ns) = (*trace, *start_ns);
                        conn.outq.pop_front();
                        let dur_ns = self.obs.record_since(&self.reply_ns, start_ns);
                        if dur_ns > 0 {
                            self.obs.span_measured(
                                "rpc.server.reply",
                                trace,
                                start_ns,
                                dur_ns,
                                Vec::new(),
                            );
                        }
                        continue;
                    }
                    if conn.credit == 0 {
                        if conn.close_after_flush {
                            // The read path is done, so no grant can ever
                            // arrive: the stream is permanently wedged.
                            // Tear down — the threaded writer's credit
                            // gate closes on teardown the same way.
                            return Pumped::Dead;
                        }
                        // Parked mid-stream: a StreamCredit grant on the
                        // read path resumes this head.
                        return Pumped::Alive;
                    }
                    conn.credit -= 1;
                    let chunk = chunks.pop_front().expect("non-empty");
                    let frame = Response::Stream {
                        seq: *seq,
                        last: *seq + 1 == *total,
                        body: StreamBody::CoveredChunk(chunk),
                    };
                    *seq += 1;
                    let (id, version) = (*id, conn.version);
                    write_response_v(&mut conn.wbuf, version, id, &frame)
                        .expect("vec writes cannot fail");
                }
                Pending::LearnStream {
                    id,
                    handle,
                    events,
                    seq,
                } => {
                    let next = events.lock().unwrap_or_else(|e| e.into_inner()).pop_front();
                    if let Some(progress) = next {
                        if conn.credit == 0 {
                            if conn.close_after_flush {
                                // No grant can ever arrive (see the
                                // covered-stream park above).
                                return Pumped::Dead;
                            }
                            // Put it back: parked until a grant arrives.
                            events
                                .lock()
                                .unwrap_or_else(|e| e.into_inner())
                                .push_front(progress);
                            return Pumped::Alive;
                        }
                        conn.credit -= 1;
                        let frame = Response::Stream {
                            seq: *seq,
                            last: false,
                            body: StreamBody::Progress(progress),
                        };
                        *seq += 1;
                        let (id, version) = (*id, conn.version);
                        write_response_v(&mut conn.wbuf, version, id, &frame)
                            .expect("vec writes cannot fail");
                        continue;
                    }
                    let Some(result) = handle.try_poll() else {
                        return Pumped::Alive;
                    };
                    // The runner drops the sink before completing the
                    // handle, so the queue is final; one more drain pass
                    // above has already emptied it. Terminal frame now.
                    let id = *id;
                    let trace = handle.trace_id();
                    let response = match result {
                        Ok(JobResult::Learned(definition)) => Response::Learned(definition),
                        Ok(_) => Response::Error {
                            code: ErrorCode::Panicked,
                            limit: 0,
                            message: "learn job returned a non-learn result".to_string(),
                            retry_after_ms: 0,
                        },
                        Err(error) => Response::from_job_error(error),
                    };
                    conn.outq.pop_front();
                    self.encode_response(token, id, trace, &response);
                }
            }
        }
    }

    /// Encodes one ordinary (non-stream) response into the write buffer,
    /// timing it into `castor_rpc_reply_encode_ns` and recording the
    /// `rpc.server.reply` span under the request's trace id.
    fn encode_response(&mut self, token: u64, request_id: u64, trace: u64, response: &Response) {
        let conn = self.conns.get_mut(&token).expect("conn present");
        let start_ns = self.obs.now_ns();
        let timer = self.obs.timer();
        write_response_v(&mut conn.wbuf, conn.version, request_id, response)
            .expect("vec writes cannot fail");
        if timer.is_live() {
            let dur_ns = timer.stop_ns(&self.reply_ns);
            self.obs
                .span_measured("rpc.server.reply", trace, start_ns, dur_ns, Vec::new());
        }
    }

    /// Deregisters and drops one connection: the session (if open) is
    /// cancelled, its admission slot released on drop.
    fn drop_conn(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            let _ = self.epoll.delete(conn.stream.as_raw_fd());
            if let ConnState::Open { session } = &conn.state {
                session.cancel();
            }
            self.loop_connections.set(self.conns.len() as i64);
        }
    }
}
