//! A retrying, reconnecting wrapper around [`RpcClient`].
//!
//! [`RetryClient`] mirrors the blocking client's convenience API but
//! survives transport failures: dropped connections are re-established,
//! idempotent requests are replayed under a capped exponential backoff
//! with decorrelated jitter, and load-shedding rejections honor the
//! server's retry-after hint. The line it will not cross is **ambiguity**:
//! a non-idempotent request (mutation, learn) that fails *after* it was
//! sent is surfaced as [`RpcError::Ambiguous`] instead of being replayed,
//! because the server may have applied it — replaying could double-apply.
//!
//! What is safe to replay:
//!
//! | request                          | on transport failure        |
//! |----------------------------------|-----------------------------|
//! | coverage / score / reports / metrics / trace | reconnect and replay |
//! | mutate / learn, failure **before** send      | reconnect and replay |
//! | mutate / learn, failure **after** send       | [`RpcError::Ambiguous`] |
//! | any request the server *answered* with `Rejected` | replay after the hint (the server never queued it) |
//!
//! Every retry, reconnect, exhaustion, and ambiguity is counted on the
//! wrapper's own observability handle ([`RetryClient::obs`]), so a chaos
//! suite can assert exactly how hard the client had to work.

use crate::client::{ClientConfig, RpcClient, RpcError};
use castor_engine::{ClauseCounts, EngineReport, LearnProgress};
use castor_learners::LearningTask;
use castor_logic::{Clause, Definition};
use castor_obs::{Counter, Obs};
use castor_relational::{MutationBatch, MutationSummary, Tuple};
use castor_service::{LearnAlgorithm, ServerReport};
use std::collections::HashSet;
use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// When and how hard to retry.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts per request, the first included.
    pub max_attempts: u32,
    /// First backoff sleep; later sleeps jitter upward from here.
    pub base_backoff: Duration,
    /// Cap on any single backoff sleep.
    pub max_backoff: Duration,
    /// Wall-clock budget across all of one request's attempts; when it
    /// runs out the next failure is final even if attempts remain.
    pub budget: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_secs(1),
            budget: Duration::from_secs(5),
        }
    }
}

impl RetryPolicy {
    /// Sets the attempt cap (builder style).
    pub fn with_max_attempts(mut self, attempts: u32) -> Self {
        self.max_attempts = attempts.max(1);
        self
    }

    /// Sets the base backoff (builder style).
    pub fn with_base_backoff(mut self, base: Duration) -> Self {
        self.base_backoff = base;
        self
    }

    /// Sets the backoff cap (builder style).
    pub fn with_max_backoff(mut self, cap: Duration) -> Self {
        self.max_backoff = cap;
        self
    }

    /// Sets the wall-clock budget (builder style).
    pub fn with_budget(mut self, budget: Duration) -> Self {
        self.budget = budget;
        self
    }
}

/// A reconnecting, retrying RPC client (see the module docs for the
/// replay-safety rules).
#[derive(Debug)]
pub struct RetryClient {
    addrs: Vec<SocketAddr>,
    database: String,
    config: ClientConfig,
    policy: RetryPolicy,
    conn: Option<RpcClient>,
    /// Decorrelated-jitter state: the previous sleep, and the RNG.
    prev_backoff: Duration,
    rng: u64,
    /// Shared topology epoch (cluster routing): bumped by the router on
    /// every membership change. A server's `retry_after_ms` hint observed
    /// under an older epoch may come from a member that no longer owns
    /// the shard, so it is capped at the policy's base backoff instead of
    /// being honored in full. `None` outside a cluster.
    topology_epoch: Option<Arc<AtomicU64>>,
    /// Trace id to stamp on the next operation's request frames (all
    /// attempts), forwarded from an upstream caller for cross-process
    /// trace stitching.
    next_trace: Option<u64>,
    obs: Arc<Obs>,
    retries: Arc<Counter>,
    reconnects: Arc<Counter>,
    exhausted: Arc<Counter>,
    ambiguous: Arc<Counter>,
}

impl RetryClient {
    /// A retrying client for `database` at `addr` with default config and
    /// policy. No connection is opened until the first request.
    pub fn new(addr: impl ToSocketAddrs, database: &str) -> Result<RetryClient, RpcError> {
        RetryClient::with_config(
            addr,
            database,
            ClientConfig::default(),
            RetryPolicy::default(),
        )
    }

    /// [`RetryClient::new`] under explicit connection and retry knobs.
    pub fn with_config(
        addr: impl ToSocketAddrs,
        database: &str,
        config: ClientConfig,
        policy: RetryPolicy,
    ) -> Result<RetryClient, RpcError> {
        let addrs: Vec<SocketAddr> = addr
            .to_socket_addrs()
            .map_err(|e| RpcError::Io(e.to_string()))?
            .collect();
        if addrs.is_empty() {
            return Err(RpcError::Io("address resolved to nothing".to_string()));
        }
        let obs = Obs::enabled_default();
        let r = obs.registry();
        let retries = r.counter(
            "castor_client_retries_total",
            "Requests replayed after a retryable failure.",
        );
        let reconnects = r.counter(
            "castor_client_reconnects_total",
            "Connections re-established after a transport failure.",
        );
        let exhausted = r.counter(
            "castor_client_retry_exhausted_total",
            "Requests that failed every attempt inside the retry budget.",
        );
        let ambiguous = r.counter(
            "castor_client_ambiguous_total",
            "Non-idempotent requests whose outcome is unknown (sent, then the transport failed).",
        );
        let prev_backoff = policy.base_backoff;
        Ok(RetryClient {
            addrs,
            database: database.to_string(),
            config,
            policy,
            conn: None,
            prev_backoff,
            // Any nonzero constant works: determinism of the *schedule*
            // does not matter for correctness (only fault plans need
            // seeds), it just must not be zero for the xorshift step.
            rng: 0x853C_49E6_748F_EA9B,
            topology_epoch: None,
            next_trace: None,
            obs,
            retries,
            reconnects,
            exhausted,
            ambiguous,
        })
    }

    /// Reseeds the jitter RNG (deterministic backoff schedules in tests).
    pub fn with_jitter_seed(mut self, seed: u64) -> Self {
        self.rng = seed | 1;
        self
    }

    /// Attaches a shared topology epoch (builder style). A cluster router
    /// bumps the epoch on every membership change; retry-after hints
    /// observed before a bump are treated as stale — capped at the
    /// policy's base backoff instead of honored in full, because they
    /// describe the queue of a member that may no longer own the shard.
    pub fn with_topology_epoch(mut self, epoch: Arc<AtomicU64>) -> Self {
        self.topology_epoch = Some(epoch);
        self
    }

    /// Stamps the next operation's request frames (all attempts) with
    /// `trace` instead of per-connection sequential ids, so an upstream
    /// caller's spans stitch to this client's and the server's (see
    /// [`RpcClient::use_trace_id`]).
    pub fn use_trace_id(&mut self, trace: u64) {
        self.next_trace = Some(trace);
    }

    /// The current topology epoch, or 0 when none is attached.
    fn epoch_now(&self) -> u64 {
        self.topology_epoch
            .as_ref()
            .map_or(0, |e| e.load(Ordering::SeqCst))
    }

    /// The wrapper's observability handle: retry/reconnect/exhausted/
    /// ambiguous counters.
    pub fn obs(&self) -> &Arc<Obs> {
        &self.obs
    }

    /// Whether a connection is currently established.
    pub fn is_connected(&self) -> bool {
        self.conn.is_some()
    }

    /// Drops the current connection (the next request reconnects). Chaos
    /// tests use this to simulate client-side restarts.
    pub fn disconnect(&mut self) {
        self.conn = None;
    }

    fn xorshift(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }

    /// Decorrelated jitter: sleep uniform in `[base, prev * 3]`, capped.
    /// Spreads a thundering herd of retrying clients across time instead
    /// of synchronizing them on powers of two.
    fn next_backoff(&mut self) -> Duration {
        let base = self.policy.base_backoff.as_millis() as u64;
        let high = (self.prev_backoff.as_millis() as u64)
            .saturating_mul(3)
            .max(base + 1);
        let span = high - base;
        let sleep =
            Duration::from_millis(base + self.xorshift() % span).min(self.policy.max_backoff);
        self.prev_backoff = sleep;
        sleep
    }

    fn ensure_conn(&mut self) -> Result<&mut RpcClient, RpcError> {
        if self.conn.is_none() {
            let client =
                RpcClient::connect_config(self.addrs.as_slice(), &self.database, &self.config)?;
            self.conn = Some(client);
        }
        Ok(self.conn.as_mut().expect("just ensured"))
    }

    /// Runs `op` with retries that are safe **only for idempotent
    /// requests**: transport failures drop the connection and replay on a
    /// fresh one; `Rejected` keeps the connection and sleeps at least the
    /// server's retry-after hint; semantic errors return immediately.
    fn retry_idempotent<T>(
        &mut self,
        mut op: impl FnMut(&mut RpcClient) -> Result<T, RpcError>,
    ) -> Result<T, RpcError> {
        let started = Instant::now();
        let mut attempts = 0u32;
        let trace = self.next_trace.take();
        loop {
            attempts += 1;
            let epoch_before = self.epoch_now();
            let result = match self.ensure_conn() {
                Ok(client) => {
                    if let Some(trace) = trace {
                        client.use_trace_id(trace);
                    }
                    op(client)
                }
                Err(e) => Err(e),
            };
            let error = match result {
                Ok(value) => return Ok(value),
                Err(error) => error,
            };
            if !error.is_retryable_for_idempotent() {
                return Err(error);
            }
            let rejected_hint = match &error {
                RpcError::Remote { retry_after_ms, .. } if error.is_admission_rejection() => {
                    Some(Duration::from_millis(*retry_after_ms))
                }
                _ => None,
            };
            if rejected_hint.is_none() {
                // Transport-level failure: the connection is poisoned
                // (framing is byte-positional, there is no resync). A live
                // connection torn down here is re-established by the next
                // attempt's `ensure_conn`.
                if self.conn.take().is_some() {
                    self.reconnects.inc();
                }
            }
            if attempts >= self.policy.max_attempts || started.elapsed() >= self.policy.budget {
                self.exhausted.inc();
                return Err(RpcError::RetryExhausted {
                    attempts,
                    last: Box::new(error),
                });
            }
            self.retries.inc();
            let backoff = self.next_backoff();
            let epoch_changed = self.epoch_now() != epoch_before;
            // An overloaded server's hint wins over local jitter: clients
            // must not come back before the queue can have drained. But a
            // hint observed across a membership change describes a member
            // that may no longer own the shard, so it is capped at the
            // base backoff instead of honored in full.
            std::thread::sleep(rejected_hint.map_or(backoff, |hint| {
                honored_hint(hint, self.policy.base_backoff, epoch_changed).max(backoff)
            }));
        }
    }

    /// Runs a **non-idempotent** `op` at most once per established
    /// session. Connection establishment is retried (nothing has been
    /// sent yet, so it is safe); once `op` runs, a transport failure is
    /// [`RpcError::Ambiguous`] — except `Rejected`, which the server
    /// answers *before* queueing, so it is replayed like the idempotent
    /// case.
    fn once_per_send<T>(
        &mut self,
        mut op: impl FnMut(&mut RpcClient) -> Result<T, RpcError>,
        what: &str,
    ) -> Result<T, RpcError> {
        let started = Instant::now();
        let mut attempts = 0u32;
        let trace = self.next_trace.take();
        loop {
            attempts += 1;
            let epoch_before = self.epoch_now();
            // Phase 1 (retryable): get a connection. Failures here cannot
            // have sent the request.
            match self.ensure_conn() {
                Ok(_) => {}
                Err(error) => {
                    if attempts >= self.policy.max_attempts
                        || started.elapsed() >= self.policy.budget
                    {
                        self.exhausted.inc();
                        return Err(RpcError::RetryExhausted {
                            attempts,
                            last: Box::new(error),
                        });
                    }
                    self.retries.inc();
                    let backoff = self.next_backoff();
                    std::thread::sleep(backoff);
                    continue;
                }
            }
            // Phase 2 (at most once per session): send and await.
            let client = self.conn.as_mut().expect("just ensured");
            if let Some(trace) = trace {
                client.use_trace_id(trace);
            }
            let error = match op(client) {
                Ok(value) => return Ok(value),
                Err(error) => error,
            };
            match &error {
                RpcError::Remote { retry_after_ms, .. } if error.is_admission_rejection() => {
                    // The server answered: the job was never queued.
                    // Replaying cannot double-apply.
                    if attempts >= self.policy.max_attempts
                        || started.elapsed() >= self.policy.budget
                    {
                        self.exhausted.inc();
                        return Err(RpcError::RetryExhausted {
                            attempts,
                            last: Box::new(error),
                        });
                    }
                    self.retries.inc();
                    let hint = Duration::from_millis(*retry_after_ms);
                    let backoff = self.next_backoff();
                    let epoch_changed = self.epoch_now() != epoch_before;
                    std::thread::sleep(
                        honored_hint(hint, self.policy.base_backoff, epoch_changed).max(backoff),
                    );
                }
                RpcError::Io(_) | RpcError::Timeout(_) | RpcError::Malformed(_) => {
                    // The request left this process and no authoritative
                    // answer came back: applied-or-not is unknowable here.
                    self.conn = None;
                    self.ambiguous.inc();
                    return Err(RpcError::Ambiguous {
                        message: format!("{what} failed after send: {error}"),
                    });
                }
                _ => return Err(error),
            }
        }
    }

    /// Covered subsets, replayed transparently across transport failures
    /// (see [`RpcClient::covered_sets`]).
    pub fn covered_sets(
        &mut self,
        clauses: Vec<Clause>,
        examples: Vec<Tuple>,
    ) -> Result<Vec<HashSet<Tuple>>, RpcError> {
        self.retry_idempotent(|c| c.covered_sets(clauses.clone(), examples.clone()))
    }

    /// Deadline-carrying coverage, replayed transparently. The deadline
    /// is re-sent whole on each attempt — it is the per-attempt patience,
    /// not a shared budget across attempts.
    pub fn covered_sets_deadline(
        &mut self,
        clauses: Vec<Clause>,
        examples: Vec<Tuple>,
        deadline_ms: Option<u64>,
    ) -> Result<Vec<HashSet<Tuple>>, RpcError> {
        self.retry_idempotent(|c| {
            c.covered_sets_deadline(clauses.clone(), examples.clone(), deadline_ms)
        })
    }

    /// Fused scoring, replayed transparently (see [`RpcClient::score`]).
    pub fn score(
        &mut self,
        clauses: Vec<Clause>,
        positive: Vec<Tuple>,
        negative: Vec<Tuple>,
    ) -> Result<Vec<ClauseCounts>, RpcError> {
        self.retry_idempotent(|c| c.score(clauses.clone(), positive.clone(), negative.clone()))
    }

    /// Session counter deltas, replayed transparently. Note that a
    /// reconnect opens a *new* session, whose deltas restart from zero.
    pub fn report(&mut self) -> Result<EngineReport, RpcError> {
        self.retry_idempotent(|c| c.report())
    }

    /// Server totals, replayed transparently.
    pub fn server_report(&mut self) -> Result<(EngineReport, ServerReport), RpcError> {
        self.retry_idempotent(|c| c.server_report())
    }

    /// The metric exposition, replayed transparently.
    pub fn metrics(&mut self) -> Result<String, RpcError> {
        self.retry_idempotent(|c| c.metrics())
    }

    /// The trace dump, replayed transparently.
    pub fn trace_dump(&mut self) -> Result<String, RpcError> {
        self.retry_idempotent(|c| c.trace_dump())
    }

    /// Runs a learner — **not** replayed after send (a learn holds the
    /// queue; replaying doubles the work): post-send transport failures
    /// surface as [`RpcError::Ambiguous`].
    pub fn learn(
        &mut self,
        task: LearningTask,
        algorithm: LearnAlgorithm,
    ) -> Result<Definition, RpcError> {
        self.once_per_send(|c| c.learn(task.clone(), algorithm.clone()), "learn")
    }

    /// [`RetryClient::learn`] returning the covering-round progress the
    /// server streamed (empty on a v1 connection); same replay rules.
    pub fn learn_with_progress(
        &mut self,
        task: LearningTask,
        algorithm: LearnAlgorithm,
    ) -> Result<(Definition, Vec<LearnProgress>), RpcError> {
        self.once_per_send(
            |c| c.learn_with_progress(task.clone(), algorithm.clone()),
            "learn",
        )
    }

    /// Deadline-carrying learn, same replay rules as [`RetryClient::learn`].
    pub fn learn_deadline(
        &mut self,
        task: LearningTask,
        algorithm: LearnAlgorithm,
        deadline_ms: Option<u64>,
    ) -> Result<Definition, RpcError> {
        self.once_per_send(
            |c| c.learn_deadline(task.clone(), algorithm.clone(), deadline_ms),
            "learn",
        )
    }

    /// Applies a mutation batch — **not** replayed after send (the server
    /// may have applied it): post-send transport failures surface as
    /// [`RpcError::Ambiguous`]. Reconcile via
    /// [`RetryClient::server_report`] (mutation counters/epochs) before
    /// resubmitting.
    pub fn apply(&mut self, batch: MutationBatch) -> Result<MutationSummary, RpcError> {
        self.once_per_send(|c| c.apply(batch.clone()), "mutation batch")
    }
}

/// How much of a server's retry-after hint to honor. A hint observed
/// across a topology-epoch bump (cluster membership change) is stale —
/// it described the queue of whatever member owned the shard *before*
/// the move — so it is capped at the policy's base backoff; a fresh hint
/// is honored in full.
fn honored_hint(hint: Duration, base_backoff: Duration, epoch_changed: bool) -> Duration {
    if epoch_changed {
        hint.min(base_backoff)
    } else {
        hint
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_jitters_within_decorrelated_bounds_and_caps() {
        let mut client = RetryClient::new("127.0.0.1:9", "x")
            .unwrap()
            .with_jitter_seed(7);
        let base = client.policy.base_backoff;
        let cap = client.policy.max_backoff;
        let mut prev = base;
        for _ in 0..50 {
            let sleep = client.next_backoff();
            assert!(sleep >= base.min(cap), "sleep {sleep:?} under base");
            assert!(sleep <= (prev * 3).min(cap), "sleep {sleep:?} over 3x prev");
            prev = sleep;
        }
    }

    #[test]
    fn jitter_schedules_reproduce_under_one_seed() {
        let schedule = |seed: u64| -> Vec<Duration> {
            let mut c = RetryClient::new("127.0.0.1:9", "x")
                .unwrap()
                .with_jitter_seed(seed);
            (0..10).map(|_| c.next_backoff()).collect()
        };
        assert_eq!(schedule(42), schedule(42));
    }

    #[test]
    fn connect_failures_to_a_dead_port_exhaust_with_typed_error() {
        // Port 9 (discard) is almost never listening; connect fails fast.
        let mut client = RetryClient::with_config(
            "127.0.0.1:9",
            "demo",
            ClientConfig::default().with_connect_timeout(Duration::from_millis(200)),
            RetryPolicy::default()
                .with_max_attempts(2)
                .with_base_backoff(Duration::from_millis(1))
                .with_budget(Duration::from_secs(2)),
        )
        .unwrap();
        match client.report() {
            Err(RpcError::RetryExhausted { attempts, .. }) => assert_eq!(attempts, 2),
            other => panic!("expected RetryExhausted, got {other:?}"),
        }
        let exposition = client.obs().registry().expose();
        assert!(exposition.contains("castor_client_retry_exhausted_total 1"));
    }

    #[test]
    fn stale_hints_are_capped_at_base_after_an_epoch_bump() {
        let base = Duration::from_millis(10);
        let hint = Duration::from_millis(5_000);
        // Same epoch: the overloaded server's hint is honored in full.
        assert_eq!(honored_hint(hint, base, false), hint);
        // Epoch bumped mid-attempt: the hint came from a member that may
        // no longer own the shard — cap it so the retry lands promptly on
        // the new owner.
        assert_eq!(honored_hint(hint, base, true), base);
        // A hint already under base is never *raised* by the cap.
        let tiny = Duration::from_millis(2);
        assert_eq!(honored_hint(tiny, base, true), tiny);
    }
}
