//! Raw Linux syscalls for the event-loop server core: epoll, eventfd,
//! and `prlimit64` — hand-rolled with `core::arch::asm!`, the same
//! no-dependency discipline as the codec (no `libc`, no `mio`).
//!
//! Only the five syscalls the loop needs are wrapped, each behind a safe
//! RAII type: [`Epoll`] (readiness queue), [`EventFd`] (the cross-thread
//! wake channel), and [`raise_nofile_limit`] (lifts the soft fd limit to
//! the hard cap so one process can hold 10k+ sockets). File descriptors
//! are owned by `OwnedFd`/`File`, so closing is never hand-written.
//!
//! The module is Linux-only (`x86_64` and `aarch64`); on other targets
//! the RPC server falls back to the threaded core and this module is not
//! compiled at all.

#![cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]

use std::fs::File;
use std::io::{self, Read, Write};
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};

// Syscall numbers differ per architecture; everything else (flag values,
// struct layouts modulo packing) is shared.
#[cfg(target_arch = "x86_64")]
mod nr {
    pub const EPOLL_CTL: usize = 233;
    pub const EPOLL_PWAIT: usize = 281;
    pub const EVENTFD2: usize = 290;
    pub const EPOLL_CREATE1: usize = 291;
    pub const PRLIMIT64: usize = 302;
}

#[cfg(target_arch = "aarch64")]
mod nr {
    pub const EPOLL_CREATE1: usize = 20;
    pub const EPOLL_CTL: usize = 21;
    pub const EPOLL_PWAIT: usize = 22;
    pub const EVENTFD2: usize = 19;
    pub const PRLIMIT64: usize = 261;
}

/// Readiness bits (kernel `EPOLL*` values).
pub const EPOLLIN: u32 = 0x001;
/// Writable readiness.
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (always reported, never needs registering).
pub const EPOLLERR: u32 = 0x008;
/// Hangup (peer closed both directions).
pub const EPOLLHUP: u32 = 0x010;
/// Peer shut down its write half (half-close detection).
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: usize = 1;
const EPOLL_CTL_DEL: usize = 2;
const EPOLL_CTL_MOD: usize = 3;
const EPOLL_CLOEXEC: usize = 0x8_0000;
const EFD_NONBLOCK: usize = 0x800;
const EFD_CLOEXEC: usize = 0x8_0000;
const RLIMIT_NOFILE: usize = 7;

/// One readiness event, kernel ABI layout. The x86_64 ABI packs the
/// struct (12 bytes); every other architecture uses natural alignment.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Debug, Clone, Copy, Default)]
pub struct EpollEvent {
    /// Ready `EPOLL*` bits.
    pub events: u32,
    /// The token registered with the fd (the loop uses connection ids).
    pub data: u64,
}

/// Raw 6-argument syscall. Negative returns in `-4095..0` are `-errno`
/// per the kernel ABI; everything else is the success value.
#[cfg(target_arch = "x86_64")]
unsafe fn syscall6(
    nr: usize,
    a1: usize,
    a2: usize,
    a3: usize,
    a4: usize,
    a5: usize,
    a6: usize,
) -> isize {
    let ret: isize;
    unsafe {
        core::arch::asm!(
            "syscall",
            inlateout("rax") nr as isize => ret,
            in("rdi") a1,
            in("rsi") a2,
            in("rdx") a3,
            in("r10") a4,
            in("r8") a5,
            in("r9") a6,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    ret
}

#[cfg(target_arch = "aarch64")]
unsafe fn syscall6(
    nr: usize,
    a1: usize,
    a2: usize,
    a3: usize,
    a4: usize,
    a5: usize,
    a6: usize,
) -> isize {
    let ret: isize;
    unsafe {
        core::arch::asm!(
            "svc 0",
            inlateout("x0") a1 as isize => ret,
            in("x1") a2,
            in("x2") a3,
            in("x3") a4,
            in("x4") a5,
            in("x5") a6,
            in("x8") nr,
            options(nostack),
        );
    }
    ret
}

/// Converts a raw syscall return into `io::Result<usize>`.
fn check(ret: isize) -> io::Result<usize> {
    if (-4095..0).contains(&ret) {
        Err(io::Error::from_raw_os_error(-ret as i32))
    } else {
        Ok(ret as usize)
    }
}

/// An epoll instance (closed on drop).
#[derive(Debug)]
pub struct Epoll {
    fd: OwnedFd,
}

impl Epoll {
    /// `epoll_create1(EPOLL_CLOEXEC)`.
    pub fn new() -> io::Result<Epoll> {
        let fd = check(unsafe { syscall6(nr::EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0, 0, 0) })?;
        Ok(Epoll {
            fd: unsafe { OwnedFd::from_raw_fd(fd as RawFd) },
        })
    }

    fn ctl(&self, op: usize, fd: RawFd, event: Option<EpollEvent>) -> io::Result<()> {
        let mut ev = event.unwrap_or_default();
        let ptr = match event {
            Some(_) => &mut ev as *mut EpollEvent as usize,
            // DEL ignores the event; a null pointer is the documented call.
            None => 0,
        };
        check(unsafe {
            syscall6(
                nr::EPOLL_CTL,
                self.fd.as_raw_fd() as usize,
                op,
                fd as usize,
                ptr,
                0,
                0,
            )
        })
        .map(|_| ())
    }

    /// Registers `fd` for `interest` under `token`.
    pub fn add(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(
            EPOLL_CTL_ADD,
            fd,
            Some(EpollEvent {
                events: interest,
                data: token,
            }),
        )
    }

    /// Rewrites the interest set of an already-registered `fd`.
    pub fn modify(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(
            EPOLL_CTL_MOD,
            fd,
            Some(EpollEvent {
                events: interest,
                data: token,
            }),
        )
    }

    /// Deregisters `fd` (no-op errors are the caller's to ignore: a
    /// closed fd is already deregistered by the kernel).
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, None)
    }

    /// Waits for readiness events, at most `timeout_ms` milliseconds
    /// (`-1` = forever). Interrupted waits report zero events rather
    /// than an error — the loop treats both as "nothing ready".
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        // epoll_pwait with a null sigmask == epoll_wait, and it exists on
        // every architecture (aarch64 has no plain epoll_wait syscall).
        let ret = check(unsafe {
            syscall6(
                nr::EPOLL_PWAIT,
                self.fd.as_raw_fd() as usize,
                events.as_mut_ptr() as usize,
                events.len(),
                timeout_ms as usize,
                0,
                8, // sigsetsize, ignored with a null mask
            )
        });
        match ret {
            Ok(n) => Ok(n),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => Ok(0),
            Err(e) => Err(e),
        }
    }
}

/// A non-blocking eventfd: the cross-thread wake channel of the loop.
/// Runner threads [`EventFd::signal`] it when a job completes; the loop
/// polls it readable and [`EventFd::drain`]s the counter.
#[derive(Debug)]
pub struct EventFd {
    file: File,
}

impl EventFd {
    /// `eventfd2(0, EFD_NONBLOCK | EFD_CLOEXEC)`.
    pub fn new() -> io::Result<EventFd> {
        let fd =
            check(unsafe { syscall6(nr::EVENTFD2, 0, EFD_NONBLOCK | EFD_CLOEXEC, 0, 0, 0, 0) })?;
        Ok(EventFd {
            file: unsafe { File::from_raw_fd(fd as RawFd) },
        })
    }

    /// The raw fd, for epoll registration.
    pub fn raw(&self) -> RawFd {
        self.file.as_raw_fd()
    }

    /// Adds 1 to the counter, waking an epoll blocked on readability.
    /// Infallible by design: the only failure mode is a counter at
    /// `u64::MAX - 1`, which 64 bits of pending wakes cannot reach.
    pub fn signal(&self) {
        let _ = (&self.file).write(&1u64.to_le_bytes());
    }

    /// Empties the counter so the fd stops polling readable.
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        let _ = (&self.file).read(&mut buf);
    }
}

/// Lifts the soft `RLIMIT_NOFILE` to the hard cap via `prlimit64` (pid 0
/// = self) and returns the resulting `(soft, hard)` pair. Best-effort:
/// on any failure the current limits are returned unchanged.
pub fn raise_nofile_limit() -> (u64, u64) {
    #[repr(C)]
    #[derive(Default, Clone, Copy)]
    struct Rlimit64 {
        cur: u64,
        max: u64,
    }
    let mut current = Rlimit64::default();
    let got = check(unsafe {
        syscall6(
            nr::PRLIMIT64,
            0,
            RLIMIT_NOFILE,
            0,
            &mut current as *mut Rlimit64 as usize,
            0,
            0,
        )
    });
    if got.is_err() {
        return (0, 0);
    }
    if current.cur < current.max {
        let wanted = Rlimit64 {
            cur: current.max,
            max: current.max,
        };
        if check(unsafe {
            syscall6(
                nr::PRLIMIT64,
                0,
                RLIMIT_NOFILE,
                &wanted as *const Rlimit64 as usize,
                0,
                0,
                0,
            )
        })
        .is_ok()
        {
            return (wanted.cur, wanted.max);
        }
    }
    (current.cur, current.max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn epoll_reports_readability_on_a_loopback_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (accepted, _) = listener.accept().unwrap();
        accepted.set_nonblocking(true).unwrap();

        let epoll = Epoll::new().unwrap();
        epoll
            .add(accepted.as_raw_fd(), EPOLLIN | EPOLLRDHUP, 42)
            .unwrap();

        let mut events = [EpollEvent::default(); 8];
        // Nothing to read yet: a zero timeout returns no events.
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);

        client.write_all(b"ping").unwrap();
        let n = epoll.wait(&mut events, 1_000).unwrap();
        assert_eq!(n, 1);
        let (token, ready) = (events[0].data, events[0].events);
        assert_eq!(token, 42);
        assert_ne!(ready & EPOLLIN, 0);

        epoll.delete(accepted.as_raw_fd()).unwrap();
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn epoll_edge_of_interest_modification() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _client = TcpStream::connect(addr).unwrap();
        let (accepted, _) = listener.accept().unwrap();
        accepted.set_nonblocking(true).unwrap();

        let epoll = Epoll::new().unwrap();
        // A healthy socket with an empty send buffer is writable at once.
        epoll.add(accepted.as_raw_fd(), EPOLLOUT, 7).unwrap();
        let mut events = [EpollEvent::default(); 8];
        let n = epoll.wait(&mut events, 1_000).unwrap();
        assert_eq!(n, 1);
        assert_ne!(events[0].events & EPOLLOUT, 0);
        // Dropping write interest silences it.
        epoll.modify(accepted.as_raw_fd(), EPOLLIN, 7).unwrap();
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn eventfd_signals_and_drains_through_epoll() {
        let efd = EventFd::new().unwrap();
        let epoll = Epoll::new().unwrap();
        epoll.add(efd.raw(), EPOLLIN, 1).unwrap();
        let mut events = [EpollEvent::default(); 4];
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0, "starts silent");

        // Signals coalesce: many signals, one readable event, one drain.
        let writer = {
            let efd = EventFd {
                file: efd.file.try_clone().unwrap(),
            };
            std::thread::spawn(move || {
                for _ in 0..3 {
                    efd.signal();
                }
            })
        };
        writer.join().unwrap();
        assert_eq!(epoll.wait(&mut events, 1_000).unwrap(), 1);
        efd.drain();
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0, "drained");
    }

    #[test]
    fn nofile_limit_reports_a_sane_pair() {
        let (soft, hard) = raise_nofile_limit();
        assert!(soft > 0 && hard >= soft, "soft={soft} hard={hard}");
    }
}
