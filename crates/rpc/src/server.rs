//! The RPC server front end: TCP connections mapped onto
//! [`castor_service::Session`]s, behind a choice of connection core
//! ([`ServerCore`]).
//!
//! The default core on supported platforms is the readiness-driven
//! epoll event loop in [`crate::event_loop`] — one loop thread owns
//! every connection. This module also keeps the original *threaded*
//! core: one acceptor thread takes connections; each connection gets
//! one *reader* thread (parses request frames, submits jobs onto the
//! session's queue) and one *writer* thread (joins job handles in
//! submission order and streams response frames back). Because jobs of
//! one session execute in submission order, joining in order is
//! completion order — while the per-database round-robin scheduler
//! interleaves *other* sessions' jobs between them. Any number of
//! requests can be in flight on one connection; request ids are echoed so
//! the client can match responses. Both cores implement the identical
//! wire contract and are swept by the same chaos/stress suites.
//!
//! Request lifecycle:
//!
//! 1. client connects, sends `Hello { database, eval_budget }`;
//! 2. the server opens a session (admission-checked: unknown database and
//!    the server-wide session cap produce a typed error frame and close);
//! 3. requests are decoded and submitted; per-database in-flight caps
//!    reject overflow submissions with a typed error frame (the
//!    connection stays up);
//! 4. responses stream back as jobs finish, tagged with their request id;
//! 5. on disconnect the session's cancel token fires: queued jobs fail
//!    fast, the running job aborts within one candidate tuple, and the
//!    session (and its admission slot) is reclaimed.

use crate::fault::{register_fault_collector, FaultPlan, FaultStats, FaultStream};
use crate::frame::{
    read_request_versioned, write_response, write_response_v, ErrorCode, FrameError, Request,
    Response, StreamBody, COVERED_CHUNK_SETS, DEFAULT_MAX_FRAME_BYTES, DEFAULT_STREAM_CREDIT,
    PROTOCOL_V2, PROTOCOL_VERSION,
};
use castor_engine::{LearnProgress, ProgressSink};
use castor_obs::Obs;
use castor_service::{
    CoverageJob, Deadline, Job, JobHandle, JobResult, LearnJob, ScoreJob, Server, ServerError,
    Session,
};
use std::io::BufWriter;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Which connection-handling core the server runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerCore {
    /// One readiness-driven epoll event loop owning every connection
    /// (see [`crate::event_loop`]): non-blocking sockets, per-connection
    /// state machines, completions delivered over an eventfd wake path.
    /// The default on supported platforms (Linux x86_64/aarch64); falls
    /// back to [`ServerCore::Threaded`] elsewhere.
    EventLoop,
    /// The original model: one reader plus one writer thread per
    /// connection. Kept for migration comparison and as the portable
    /// fallback; semantics are identical.
    Threaded,
}

impl Default for ServerCore {
    fn default() -> Self {
        if cfg!(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        )) {
            ServerCore::EventLoop
        } else {
            ServerCore::Threaded
        }
    }
}

/// RPC front-end knobs.
#[derive(Debug, Clone)]
pub struct RpcConfig {
    /// Cap on one frame's declared length; larger frames are rejected
    /// with [`ErrorCode::FrameTooLarge`] before any allocation.
    pub max_frame_bytes: usize,
    /// Deterministic fault schedule for chaos testing (`None` in
    /// production): accepted connections are wrapped in
    /// [`FaultStream`]s armed from this plan by accept order, and every
    /// fired fault is counted in the server's
    /// `castor_fault_injected_total{kind=...}` metric family.
    pub fault_plan: Option<FaultPlan>,
    /// Highest protocol version this server negotiates (default: this
    /// build's [`PROTOCOL_VERSION`]). Set to [`crate::PROTOCOL_V1`] to
    /// emulate a pre-v2 server byte-for-byte — v2 Hellos are then
    /// rejected with [`ErrorCode::UnsupportedVersion`], exactly as the
    /// old build would.
    pub max_protocol_version: u8,
    /// Connection-handling core (default: the event loop where
    /// supported). Both cores speak the same wire protocol with the same
    /// ordering/cancellation semantics; the chaos and stress suites run
    /// against both.
    pub core: ServerCore,
}

impl Default for RpcConfig {
    fn default() -> Self {
        RpcConfig {
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            fault_plan: None,
            max_protocol_version: PROTOCOL_VERSION,
            core: ServerCore::default(),
        }
    }
}

impl RpcConfig {
    /// Returns a copy with the given frame cap.
    pub fn with_max_frame_bytes(mut self, max_frame_bytes: usize) -> Self {
        self.max_frame_bytes = max_frame_bytes;
        self
    }

    /// Returns a copy with a fault schedule armed (chaos testing).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Returns a copy capped at the given protocol version.
    pub fn with_max_protocol_version(mut self, version: u8) -> Self {
        self.max_protocol_version = version;
        self
    }

    /// Returns a copy running the given connection core.
    pub fn with_core(mut self, core: ServerCore) -> Self {
        self.core = core;
        self
    }
}

/// Connection-scoped stream flow control: the client's grants accumulate
/// here, and the connection's writer consumes one credit per
/// [`Response::Stream`] frame — blocking (only its own connection; every
/// connection has its own writer thread) when the budget is spent.
/// Closing releases any blocked consumer so teardown never deadlocks.
struct StreamCredit {
    state: Mutex<(u64, bool)>,
    woken: Condvar,
}

impl StreamCredit {
    fn new(initial: u64) -> StreamCredit {
        StreamCredit {
            state: Mutex::new((initial, false)),
            woken: Condvar::new(),
        }
    }

    /// Adds `n` stream frames to the budget.
    fn grant(&self, n: u64) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.0 = state.0.saturating_add(n);
        self.woken.notify_all();
    }

    /// Marks the connection as closing; blocked consumers return `false`.
    fn close(&self) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.1 = true;
        self.woken.notify_all();
    }

    /// Takes one credit, blocking until one is granted. Returns `false`
    /// once the connection is closing — the caller abandons the stream.
    fn consume(&self) -> bool {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if state.1 {
                return false;
            }
            if state.0 > 0 {
                state.0 -= 1;
                return true;
            }
            state = self.woken.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// A running RPC front end over a [`castor_service::Server`].
///
/// Dropping the handle stops accepting new connections (established
/// connections keep running until their clients disconnect).
pub struct RpcServer {
    service: Arc<Server>,
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    fault_stats: Arc<FaultStats>,
}

impl std::fmt::Debug for RpcServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RpcServer")
            .field("addr", &self.addr)
            .finish()
    }
}

impl RpcServer {
    /// Binds the RPC front end and starts accepting connections. Bind to
    /// port 0 to let the OS choose ([`RpcServer::local_addr`] reports it).
    pub fn bind(
        service: Arc<Server>,
        addr: impl ToSocketAddrs,
        config: RpcConfig,
    ) -> std::io::Result<RpcServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let fault_stats = Arc::new(FaultStats::default());
        if config.fault_plan.is_some() {
            // Fault counters only appear in the exposition when a plan is
            // armed — production scrapes stay free of chaos-only series.
            register_fault_collector(service.obs(), Arc::clone(&fault_stats));
        }
        let acceptor = {
            let service = Arc::clone(&service);
            let shutdown = Arc::clone(&shutdown);
            let fault_stats = Arc::clone(&fault_stats);
            match effective_core(config.core) {
                #[cfg(all(
                    target_os = "linux",
                    any(target_arch = "x86_64", target_arch = "aarch64")
                ))]
                ServerCore::EventLoop => std::thread::Builder::new()
                    .name("castor-rpc-loop".to_string())
                    .spawn(move || {
                        crate::event_loop::run(listener, service, config, shutdown, fault_stats)
                    })
                    .expect("failed to spawn event-loop thread"),
                _ => std::thread::Builder::new()
                    .name("castor-rpc-acceptor".to_string())
                    .spawn(move || accept_loop(listener, service, config, shutdown, fault_stats))
                    .expect("failed to spawn acceptor thread"),
            }
        };
        Ok(RpcServer {
            service,
            addr,
            shutdown,
            acceptor: Some(acceptor),
            fault_stats,
        })
    }

    /// The address the front end is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The service behind this front end (handy for in-process
    /// inspection: engine reports, server counters).
    pub fn service(&self) -> &Arc<Server> {
        &self.service
    }

    /// How often each fault kind of the armed [`FaultPlan`] actually
    /// fired (all zeros without a plan). Ground truth for chaos suites:
    /// must match the `castor_fault_injected_total` metric family.
    pub fn fault_stats(&self) -> &Arc<FaultStats> {
        &self.fault_stats
    }
}

/// The core that actually runs: the event loop needs the epoll/eventfd
/// syscall layer, so unsupported platforms silently get the threaded
/// fallback.
fn effective_core(requested: ServerCore) -> ServerCore {
    if cfg!(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    )) {
        requested
    } else {
        ServerCore::Threaded
    }
}

impl Drop for RpcServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Nudge the blocking accept() so the acceptor observes the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    service: Arc<Server>,
    config: RpcConfig,
    shutdown: Arc<AtomicBool>,
    fault_stats: Arc<FaultStats>,
) {
    let mut conn_index: u64 = 0;
    for stream in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        let _ = stream.set_nodelay(true);
        // Connections are armed with their fault schedule by accept
        // order: deterministic plans target "the first connection"
        // regardless of OS-level accept timing.
        let fault_state = config
            .fault_plan
            .as_ref()
            .and_then(|plan| plan.arm(conn_index, &fault_stats));
        conn_index += 1;
        let stream = FaultStream::new(stream, fault_state);
        let service = Arc::clone(&service);
        let config = config.clone();
        let _ = std::thread::Builder::new()
            .name("castor-rpc-conn".to_string())
            .spawn(move || serve_connection(stream, service, config));
    }
}

/// One item the reader hands the writer. Order in the channel is
/// response order on the wire; `Lazy` responses are *evaluated on the
/// writer thread*, after every earlier item has been joined and written,
/// so a pipelined `Report` observes the jobs submitted before it —
/// exactly like calling `Session::report()` after in-process joins.
enum Outbound {
    Ready(u64, Response),
    Job(u64, JobHandle),
    Lazy(u64, Box<dyn FnOnce() -> Response + Send>),
    /// A v2 learn: progress events stream from the runner thread through
    /// the channel and onto the wire as `Stream` frames, then the joined
    /// terminal result follows as an ordinary (credit-exempt) frame.
    LearnStream(u64, JobHandle, Receiver<LearnProgress>),
}

/// Serves one connection to completion. Errors end the connection; the
/// session (dropped at the end of this function) releases its admission
/// slot, and its cancel token aborts whatever was still running.
fn serve_connection(stream: FaultStream, service: Arc<Server>, config: RpcConfig) {
    let mut reader = match stream.try_clone() {
        Ok(reader) => reader,
        Err(_) => return,
    };
    let writer = stream;

    // Handshake: the first frame must be a well-formed Hello for a
    // database this server can admit a session to. Its version byte pins
    // the connection protocol; its trailing credit field (v2) seeds the
    // stream budget. The session is shared with the writer thread, which
    // snapshots reports in response order.
    let Some((session, version, initial_credit)) =
        handshake(&mut reader, &writer, &service, &config)
    else {
        return;
    };
    let session = Arc::new(session);
    let credit = Arc::new(StreamCredit::new(initial_credit));

    let (tx, rx): (Sender<Outbound>, Receiver<Outbound>) = channel();
    let writer_thread = {
        let obs = Arc::clone(service.obs());
        let credit = Arc::clone(&credit);
        std::thread::Builder::new()
            .name("castor-rpc-writer".to_string())
            .spawn(move || write_loop(writer, rx, obs, version, credit))
            .expect("failed to spawn writer thread")
    };

    read_loop(
        &mut reader,
        &service,
        &session,
        &config,
        &tx,
        version,
        &credit,
    );

    // The client is gone (or sent garbage): abort its in-flight work.
    // Queued jobs fail fast on the cancel token; the running job unwinds
    // through its budget loop within one candidate tuple. Closing the
    // credit gate first releases a writer blocked mid-stream on an
    // exhausted budget — otherwise the join below would deadlock on a
    // client that left without granting.
    credit.close();
    session.cancel();
    drop(tx);
    let _ = writer_thread.join();
    // `session` drops here: the admission slot is released and the
    // (drained) queue entry reclaimed.
}

/// Performs the Hello exchange; `None` means the connection is done.
/// Returns the opened session, the negotiated protocol version (the
/// Hello frame's version byte), and the connection's initial stream
/// credit. Failures *before* negotiation completes are answered at v1 —
/// the one version every client reads.
fn handshake(
    reader: &mut FaultStream,
    writer: &FaultStream,
    service: &Arc<Server>,
    config: &RpcConfig,
) -> Option<(Session, u8, u64)> {
    let mut writer = BufWriter::new(writer.try_clone().ok()?);
    let (request_id, version, request) =
        match read_request_versioned(reader, config.max_frame_bytes, config.max_protocol_version) {
            Ok(frame) => frame,
            Err((request_id, error)) => {
                if let Some((code, limit, message)) = frame_error_response(&error) {
                    let _ = write_response(
                        &mut writer,
                        request_id.unwrap_or(0),
                        &Response::Error {
                            code,
                            limit,
                            message,
                            retry_after_ms: 0,
                        },
                    );
                }
                return None;
            }
        };
    let Request::Hello {
        database,
        eval_budget,
        stream_credit,
    } = request
    else {
        let _ = write_response_v(
            &mut writer,
            version,
            request_id,
            &Response::Error {
                code: ErrorCode::Protocol,
                limit: 0,
                message: "first frame must be Hello".to_string(),
                retry_after_ms: 0,
            },
        );
        return None;
    };
    let session = match service.session(&database) {
        Ok(session) => session,
        Err(error) => {
            let (code, limit) = match &error {
                ServerError::UnknownDatabase(_) => (ErrorCode::UnknownDatabase, 0),
                ServerError::SessionLimit { limit } => (ErrorCode::SessionLimit, *limit),
                ServerError::DuplicateDatabase(_) => (ErrorCode::Protocol, 0),
            };
            let _ = write_response_v(
                &mut writer,
                version,
                request_id,
                &Response::Error {
                    code,
                    limit,
                    message: error.to_string(),
                    retry_after_ms: 0,
                },
            );
            return None;
        }
    };
    let session = match eval_budget {
        Some(budget) => session.with_eval_budget(budget),
        None => session,
    };
    if write_response_v(&mut writer, version, request_id, &Response::HelloOk).is_err() {
        return None;
    }
    Some((
        session,
        version,
        stream_credit.unwrap_or(DEFAULT_STREAM_CREDIT),
    ))
}

/// The typed error frame (if any) to send for a handshake/read failure.
/// Socket-level failures get no frame — there is no one to read it.
pub(crate) fn frame_error_response(error: &FrameError) -> Option<(ErrorCode, usize, String)> {
    match error {
        FrameError::Io(_) | FrameError::Closed => None,
        FrameError::TooLarge { declared: _, limit } => {
            Some((ErrorCode::FrameTooLarge, *limit, error.to_string()))
        }
        FrameError::Malformed(_) => Some((ErrorCode::Malformed, 0, error.to_string())),
        FrameError::Version { .. } => Some((ErrorCode::UnsupportedVersion, 0, error.to_string())),
    }
}

/// Parses request frames and feeds the writer until the client
/// disconnects or sends something unrecoverable.
#[allow(clippy::too_many_arguments)]
fn read_loop(
    reader: &mut FaultStream,
    service: &Arc<Server>,
    session: &Arc<Session>,
    config: &RpcConfig,
    tx: &Sender<Outbound>,
    version: u8,
    credit: &Arc<StreamCredit>,
) {
    loop {
        let (request_id, _, request) = match read_request_versioned(
            reader,
            config.max_frame_bytes,
            config.max_protocol_version,
        ) {
            Ok(frame) => frame,
            Err((request_id, error)) => {
                if let Some((code, limit, message)) = frame_error_response(&error) {
                    // A payload decode failure still parsed the frame
                    // header, so the error frame echoes the request id the
                    // client chose (0 only for header-level failures).
                    let _ = tx.send(Outbound::Ready(
                        request_id.unwrap_or(0),
                        Response::Error {
                            code,
                            limit,
                            message,
                            retry_after_ms: 0,
                        },
                    ));
                }
                // Framing is byte-positional: after a bad frame the stream
                // cannot be resynchronized, so the connection ends.
                return;
            }
        };
        let outbound = match request {
            Request::Hello { .. } => Outbound::Ready(
                request_id,
                Response::Error {
                    code: ErrorCode::Protocol,
                    limit: 0,
                    message: "session already open".to_string(),
                    retry_after_ms: 0,
                },
            ),
            // Jobs are submitted under the frame's request id as their
            // trace id, so every span the job produces server-side (queue
            // wait, engine evaluation, reply write) correlates with the
            // client's own spans for the same request. A wire deadline is
            // relative (milliseconds of patience the client has left) and
            // re-anchored to this server's clock here, on arrival — the
            // two hosts' clocks never need to agree.
            Request::Coverage {
                clauses,
                examples,
                deadline_ms,
            } => {
                let job =
                    with_wire_deadline(CoverageJob::new(clauses, examples), deadline_ms, |j, d| {
                        j.with_deadline(d)
                    });
                Outbound::Job(
                    request_id,
                    session.submit_traced(Job::Coverage(job), request_id),
                )
            }
            Request::Score {
                clauses,
                positive,
                negative,
                deadline_ms,
            } => {
                let job = with_wire_deadline(
                    ScoreJob::new(clauses, positive, negative),
                    deadline_ms,
                    |j, d| j.with_deadline(d),
                );
                Outbound::Job(
                    request_id,
                    session.submit_traced(Job::Score(job), request_id),
                )
            }
            Request::Learn {
                task,
                algorithm,
                deadline_ms,
            } => {
                let job =
                    with_wire_deadline(LearnJob::new(task, algorithm), deadline_ms, |j, d| {
                        j.with_deadline(d)
                    });
                if version >= PROTOCOL_V2 {
                    // A v2 learn streams covering-round progress: the sink
                    // runs on the database's runner thread and must never
                    // block, so it feeds an unbounded channel the writer
                    // drains under flow-control credit. The runner clears
                    // the engine's sink (dropping the sender) before it
                    // completes the handle, so the writer's drain always
                    // terminates before the join.
                    let (progress_tx, progress_rx) = channel::<LearnProgress>();
                    let sink: ProgressSink = Arc::new(move |p: &LearnProgress| {
                        let _ = progress_tx.send(p.clone());
                    });
                    let handle = session.submit_traced_with_progress(
                        Job::Learn(Box::new(job)),
                        request_id,
                        Some(sink),
                    );
                    Outbound::LearnStream(request_id, handle, progress_rx)
                } else {
                    Outbound::Job(
                        request_id,
                        session.submit_traced(Job::Learn(Box::new(job)), request_id),
                    )
                }
            }
            Request::Mutate(batch) => Outbound::Job(
                request_id,
                session.submit_traced(Job::Mutate(batch), request_id),
            ),
            // Reports are snapshotted lazily on the writer thread, after
            // every earlier in-flight job of this connection has completed
            // — a pipelined Report therefore includes the counter deltas of
            // the jobs submitted before it, matching in-process semantics.
            Request::Report => {
                let session = Arc::clone(session);
                Outbound::Lazy(
                    request_id,
                    Box::new(move || Response::Report(session.report())),
                )
            }
            Request::ServerReport => {
                let session = Arc::clone(session);
                let service = Arc::clone(service);
                Outbound::Lazy(
                    request_id,
                    Box::new(move || {
                        // The session exists, so the database is
                        // registered; the engine report can only fail if
                        // it were dropped, which the service never does.
                        let engine = service.report(session.database()).unwrap_or_default();
                        Response::ServerReport {
                            engine,
                            server: service.server_report(),
                        }
                    }),
                )
            }
            // Metrics and trace dumps snapshot the live registry/ring at
            // write time; like reports they are evaluated on the writer
            // thread, after every earlier response has been written.
            Request::Metrics => {
                let service = Arc::clone(service);
                Outbound::Lazy(
                    request_id,
                    Box::new(move || Response::Metrics(service.metrics_text())),
                )
            }
            Request::TraceDump => {
                let service = Arc::clone(service);
                Outbound::Lazy(
                    request_id,
                    Box::new(move || Response::TraceDump(service.trace_json())),
                )
            }
            // Credit grants act immediately (possibly unblocking a writer
            // mid-stream) and have no response frame of their own.
            Request::StreamCredit { grant } => {
                if version >= PROTOCOL_V2 {
                    credit.grant(grant);
                    continue;
                }
                Outbound::Ready(
                    request_id,
                    Response::Error {
                        code: ErrorCode::Protocol,
                        limit: 0,
                        message: "stream credit requires protocol v2".to_string(),
                        retry_after_ms: 0,
                    },
                )
            }
        };
        if tx.send(outbound).is_err() {
            return;
        }
    }
}

/// Streams responses in channel order: ready responses immediately, job
/// responses by joining their handles (jobs of one session complete in
/// submission order, so this never reorders). Exits on the first write
/// failure — the client is gone.
///
/// Each reply's encode+write is timed into
/// `castor_rpc_reply_encode_ns` and recorded as an `rpc.server.reply`
/// span under the request's trace id, closing the server-side half of a
/// wire job's trace (queue wait → engine eval → reply).
/// Applies a wire deadline to a job through its builder, when one rode
/// along on the frame.
pub(crate) fn with_wire_deadline<J>(
    job: J,
    deadline_ms: Option<u64>,
    attach: impl FnOnce(J, Deadline) -> J,
) -> J {
    match deadline_ms {
        Some(ms) => attach(job, Deadline::within(Duration::from_millis(ms))),
        None => job,
    }
}

fn write_loop(
    stream: FaultStream,
    rx: Receiver<Outbound>,
    obs: Arc<Obs>,
    version: u8,
    credit: Arc<StreamCredit>,
) {
    let reply_ns = obs.registry().histogram(
        "castor_rpc_reply_encode_ns",
        "Nanoseconds spent encoding and writing one response frame.",
    );
    let mut writer = BufWriter::new(stream);
    while let Ok(outbound) = rx.recv() {
        let (request_id, trace, response) = match outbound {
            Outbound::Ready(id, response) => (id, id, response),
            Outbound::Lazy(id, produce) => (id, id, produce()),
            Outbound::Job(id, handle) => {
                let trace = handle.trace_id();
                let response = match handle.join() {
                    Ok(JobResult::Covered(sets)) if version >= PROTOCOL_V2 => {
                        // v2 streams covered sets as flow-controlled
                        // chunks; the last chunk completes the request
                        // (no separate Covered frame follows).
                        let start_ns = obs.now_ns();
                        let timer = obs.timer();
                        if !write_covered_chunks(&mut writer, version, id, sets, &credit) {
                            return;
                        }
                        if timer.is_live() {
                            let dur_ns = timer.stop_ns(&reply_ns);
                            obs.span_measured(
                                "rpc.server.reply",
                                trace,
                                start_ns,
                                dur_ns,
                                Vec::new(),
                            );
                        }
                        continue;
                    }
                    Ok(JobResult::Covered(sets)) => Response::Covered(sets),
                    Ok(JobResult::Scores(counts)) => Response::Scores(counts),
                    Ok(JobResult::Learned(definition)) => Response::Learned(definition),
                    Ok(JobResult::Mutated(summary)) => Response::Mutated(summary),
                    Err(error) => Response::from_job_error(error),
                };
                (id, trace, response)
            }
            Outbound::LearnStream(id, handle, progress_rx) => {
                // Drain the progress stream first: the runner drops the
                // sending side before completing the handle, so this loop
                // always ends, and the join below then returns at once.
                for (seq, progress) in (0_u64..).zip(progress_rx.iter()) {
                    if !credit.consume() {
                        return;
                    }
                    let frame = Response::Stream {
                        seq,
                        last: false,
                        body: StreamBody::Progress(progress),
                    };
                    if write_response_v(&mut writer, version, id, &frame).is_err() {
                        return;
                    }
                }
                let trace = handle.trace_id();
                let response = match handle.join() {
                    Ok(JobResult::Learned(definition)) => Response::Learned(definition),
                    Ok(_) => Response::Error {
                        code: ErrorCode::Panicked,
                        limit: 0,
                        message: "learn job returned a non-learn result".to_string(),
                        retry_after_ms: 0,
                    },
                    Err(error) => Response::from_job_error(error),
                };
                (id, trace, response)
            }
        };
        let start_ns = obs.now_ns();
        let timer = obs.timer();
        if write_response_v(&mut writer, version, request_id, &response).is_err() {
            return;
        }
        if timer.is_live() {
            let dur_ns = timer.stop_ns(&reply_ns);
            obs.span_measured("rpc.server.reply", trace, start_ns, dur_ns, Vec::new());
        }
    }
}

/// Streams one coverage result as `CoveredChunk` frames, each consuming
/// one flow-control credit. An empty result still sends one (empty)
/// final chunk so the request completes. Returns `false` when the
/// connection is done (credit closed or socket gone).
fn write_covered_chunks(
    writer: &mut impl std::io::Write,
    version: u8,
    request_id: u64,
    sets: Vec<std::collections::HashSet<castor_relational::Tuple>>,
    credit: &StreamCredit,
) -> bool {
    let chunks: Vec<Vec<std::collections::HashSet<castor_relational::Tuple>>> = if sets.is_empty() {
        vec![Vec::new()]
    } else {
        sets.chunks(COVERED_CHUNK_SETS)
            .map(|chunk| chunk.to_vec())
            .collect()
    };
    let total = chunks.len();
    for (seq, chunk) in chunks.into_iter().enumerate() {
        if !credit.consume() {
            return false;
        }
        let frame = Response::Stream {
            seq: seq as u64,
            last: seq + 1 == total,
            body: StreamBody::CoveredChunk(chunk),
        };
        if write_response_v(writer, version, request_id, &frame).is_err() {
            return false;
        }
    }
    true
}
