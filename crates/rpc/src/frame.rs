//! Length-prefixed frames: the unit of exchange on a castor-rpc
//! connection.
//!
//! ```text
//! offset  size  field
//! 0       4     frame length N (u32 LE) — bytes after this prefix
//! 4       1     protocol version (PROTOCOL_V1 or PROTOCOL_V2)
//! 5       1     frame kind (request or response discriminant)
//! 6       8     request id (u64 LE) — echoed verbatim in the response
//! 14      N-10  payload (kind-specific binary, see `codec`)
//! ```
//!
//! The length prefix is read first and validated against the configured
//! maximum *before* any allocation, so an oversized or forged frame is
//! rejected with a typed error instead of a giant buffer. The version
//! byte is checked next; versions over the reader's maximum produce
//! [`ErrorCode::UnsupportedVersion`] and the connection closes. A
//! connection's version is negotiated by the client's `Hello` frame: the
//! server answers every frame at that version for the life of the
//! connection, so v1 clients see a byte-identical v1 server. Request
//! ids are chosen by the client and echoed by the server, which lets a
//! client multiplex any number of in-flight requests on one connection.

use crate::codec::{ByteReader, ByteWriter, CodecError, Wire};
use castor_engine::{EngineReport, LearnProgress};
use castor_learners::LearningTask;
use castor_logic::{Clause, Definition};
use castor_relational::{MutationBatch, MutationSummary, Tuple};
use castor_service::{LearnAlgorithm, ServerReport};
use std::collections::HashSet;
use std::fmt;
use std::io::{Read, Write};

/// Protocol v1: the original frame set (PR 5–7). Still spoken verbatim —
/// a v1 connection's frames are byte-identical to the pre-v2 build.
pub const PROTOCOL_V1: u8 = 1;

/// Protocol v2: adds streaming response frames ([`Response::Stream`])
/// with client-granted flow-control credit ([`Request::StreamCredit`],
/// plus an initial-credit field trailing `Hello`). Negotiated per
/// connection via the version byte of the client's `Hello` frame.
pub const PROTOCOL_V2: u8 = 2;

/// The highest protocol version this build speaks.
pub const PROTOCOL_VERSION: u8 = PROTOCOL_V2;

/// Stream frames a server may write before it needs a fresh
/// [`Request::StreamCredit`] grant, when the client's `Hello` carries no
/// explicit initial credit.
pub const DEFAULT_STREAM_CREDIT: u64 = 1024;

/// Covered sets per [`StreamBody::CoveredChunk`] frame when a v2
/// connection streams a coverage result.
pub const COVERED_CHUNK_SETS: usize = 8;

/// Frame header bytes after the length prefix (version + kind + request
/// id).
pub const HEADER_BYTES: usize = 10;

/// Default cap on one frame's length field (32 MiB).
pub const DEFAULT_MAX_FRAME_BYTES: usize = 32 * 1024 * 1024;

/// Why a frame could not be produced or consumed.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying socket failed (includes clean EOF between frames).
    Io(std::io::Error),
    /// The peer closed the connection cleanly at a frame boundary.
    Closed,
    /// The frame declared a length over the configured cap; nothing was
    /// allocated.
    TooLarge {
        /// The declared frame length.
        declared: usize,
        /// The configured cap.
        limit: usize,
    },
    /// The frame was structurally invalid (short header, bad payload).
    Malformed(CodecError),
    /// The peer speaks a different protocol version.
    Version {
        /// The version byte the peer sent.
        got: u8,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "socket error: {e}"),
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::TooLarge { declared, limit } => {
                write!(f, "frame of {declared} bytes exceeds the {limit}-byte cap")
            }
            FrameError::Malformed(e) => write!(f, "{e}"),
            FrameError::Version { got } => {
                write!(
                    f,
                    "peer speaks protocol version {got}, this build speaks up to {PROTOCOL_VERSION}"
                )
            }
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

impl From<CodecError> for FrameError {
    fn from(e: CodecError) -> Self {
        FrameError::Malformed(e)
    }
}

/// Typed error codes carried by [`Response::Error`] frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The version byte did not match the server's protocol.
    UnsupportedVersion = 1,
    /// The frame or payload could not be decoded.
    Malformed = 2,
    /// The frame length exceeded the server's cap.
    FrameTooLarge = 3,
    /// `Hello` named a database the server does not serve.
    UnknownDatabase = 4,
    /// The server-wide session cap rejected the connection (admission
    /// control; `limit` carries the cap).
    SessionLimit = 5,
    /// The database's in-flight job cap rejected the submission
    /// (admission control; `limit` carries the cap).
    Rejected = 6,
    /// The job was cancelled (session cancel token or disconnect).
    Cancelled = 7,
    /// A mutation op failed; the message renders the relational error.
    Mutation = 8,
    /// The job panicked on the runner thread.
    Panicked = 9,
    /// A request arrived before `Hello`, or a second `Hello`.
    Protocol = 10,
    /// The job's deadline expired before or during execution (shed from
    /// the queue, or aborted mid-run through the cancel-token path).
    DeadlineExceeded = 11,
}

impl ErrorCode {
    fn from_u8(v: u8) -> Result<ErrorCode, CodecError> {
        Ok(match v {
            1 => ErrorCode::UnsupportedVersion,
            2 => ErrorCode::Malformed,
            3 => ErrorCode::FrameTooLarge,
            4 => ErrorCode::UnknownDatabase,
            5 => ErrorCode::SessionLimit,
            6 => ErrorCode::Rejected,
            7 => ErrorCode::Cancelled,
            8 => ErrorCode::Mutation,
            9 => ErrorCode::Panicked,
            10 => ErrorCode::Protocol,
            11 => ErrorCode::DeadlineExceeded,
            other => return Err(CodecError::new(format!("invalid error code {other}"))),
        })
    }
}

/// A client→server frame body.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Opens the connection's session: the database to bind to plus an
    /// optional per-test node-budget override. Must be the first frame.
    /// The frame's version byte negotiates the connection protocol: the
    /// server answers at the client's version when it speaks it, and
    /// rejects with [`ErrorCode::UnsupportedVersion`] otherwise.
    Hello {
        /// The registered database name.
        database: String,
        /// Per-session node-budget override, if any.
        eval_budget: Option<usize>,
        /// Initial stream-frame credit (v2): how many [`Response::Stream`]
        /// frames the server may write before waiting for a
        /// [`Request::StreamCredit`] grant. Encoded as a trailing field
        /// only when present, so credit-free Hellos (every v1 client) are
        /// byte-identical to the v1 wire format. Absent means
        /// [`DEFAULT_STREAM_CREDIT`].
        stream_credit: Option<u64>,
    },
    /// [`castor_service::CoverageJob`] over the wire.
    Coverage {
        /// Candidate clauses.
        clauses: Vec<Clause>,
        /// Examples to test.
        examples: Vec<Tuple>,
        /// Relative deadline in milliseconds, re-anchored to the server's
        /// clock on arrival (gRPC-style timeout propagation). Encoded as a
        /// trailing field only when present, so frames without one are
        /// byte-identical to the previous wire format.
        deadline_ms: Option<u64>,
    },
    /// [`castor_service::ScoreJob`] over the wire.
    Score {
        /// Candidate clauses.
        clauses: Vec<Clause>,
        /// Positive examples.
        positive: Vec<Tuple>,
        /// Negative examples.
        negative: Vec<Tuple>,
        /// Relative deadline in milliseconds (see [`Request::Coverage`]).
        deadline_ms: Option<u64>,
    },
    /// [`castor_service::LearnJob`] over the wire.
    Learn {
        /// The learning task.
        task: LearningTask,
        /// The learner to run.
        algorithm: LearnAlgorithm,
        /// Relative deadline in milliseconds (see [`Request::Coverage`]).
        deadline_ms: Option<u64>,
    },
    /// A mutation batch against the session's database.
    Mutate(MutationBatch),
    /// The session's isolated engine-counter deltas.
    Report,
    /// The database's engine totals plus the serving-layer counters.
    ServerReport,
    /// The server's full metric exposition (Prometheus text format):
    /// admission/queue counters, per-database engine counters, and the
    /// queue-wait/run-time/engine-latency histograms.
    Metrics,
    /// The server's recent spans as Chrome-trace JSON (load
    /// `chrome://tracing` or Perfetto on the payload).
    TraceDump,
    /// Grants the server `grant` additional stream frames (v2 flow
    /// control; connection-scoped). Has no response frame. A server whose
    /// credit is spent blocks *its own connection's* writer until the
    /// next grant arrives — other connections are unaffected.
    StreamCredit {
        /// Additional stream frames the server may write.
        grant: u64,
    },
}

impl Request {
    fn kind(&self) -> u8 {
        match self {
            Request::Hello { .. } => 0x01,
            Request::Coverage { .. } => 0x02,
            Request::Score { .. } => 0x03,
            Request::Learn { .. } => 0x04,
            Request::Mutate(_) => 0x05,
            Request::Report => 0x06,
            Request::ServerReport => 0x07,
            Request::Metrics => 0x08,
            Request::TraceDump => 0x09,
            Request::StreamCredit { .. } => 0x0a,
        }
    }

    fn encode_payload(&self, w: &mut ByteWriter) {
        match self {
            Request::Hello {
                database,
                eval_budget,
                stream_credit,
            } => {
                w.put_str(database);
                eval_budget.encode(w);
                put_trailing_uvarint(w, *stream_credit);
            }
            Request::Coverage {
                clauses,
                examples,
                deadline_ms,
            } => {
                clauses.encode(w);
                examples.encode(w);
                put_trailing_uvarint(w, *deadline_ms);
            }
            Request::Score {
                clauses,
                positive,
                negative,
                deadline_ms,
            } => {
                clauses.encode(w);
                positive.encode(w);
                negative.encode(w);
                put_trailing_uvarint(w, *deadline_ms);
            }
            Request::Learn {
                task,
                algorithm,
                deadline_ms,
            } => {
                task.encode(w);
                algorithm.encode(w);
                put_trailing_uvarint(w, *deadline_ms);
            }
            Request::Mutate(batch) => batch.encode(w),
            Request::StreamCredit { grant } => w.put_uvarint(*grant),
            Request::Report | Request::ServerReport | Request::Metrics | Request::TraceDump => {}
        }
    }

    fn decode_payload(kind: u8, r: &mut ByteReader<'_>) -> Result<Request, CodecError> {
        Ok(match kind {
            0x01 => Request::Hello {
                database: r.get_str()?,
                eval_budget: Option::<usize>::decode(r)?,
                stream_credit: take_trailing_uvarint(r)?,
            },
            0x02 => Request::Coverage {
                clauses: Vec::<Clause>::decode(r)?,
                examples: Vec::<Tuple>::decode(r)?,
                deadline_ms: take_trailing_uvarint(r)?,
            },
            0x03 => Request::Score {
                clauses: Vec::<Clause>::decode(r)?,
                positive: Vec::<Tuple>::decode(r)?,
                negative: Vec::<Tuple>::decode(r)?,
                deadline_ms: take_trailing_uvarint(r)?,
            },
            0x04 => Request::Learn {
                task: LearningTask::decode(r)?,
                algorithm: LearnAlgorithm::decode(r)?,
                deadline_ms: take_trailing_uvarint(r)?,
            },
            0x05 => Request::Mutate(MutationBatch::decode(r)?),
            0x06 => Request::Report,
            0x07 => Request::ServerReport,
            0x08 => Request::Metrics,
            0x09 => Request::TraceDump,
            0x0a => Request::StreamCredit {
                grant: r.get_uvarint()?,
            },
            other => return Err(CodecError::new(format!("invalid request kind {other}"))),
        })
    }
}

/// Encodes an optional u64 as a trailing payload field: an absent value
/// adds no bytes, so frames without it are byte-identical to the previous
/// wire format (version-tolerant extension — the deadline and retry-after
/// fields ride on this).
fn put_trailing_uvarint(w: &mut ByteWriter, value: Option<u64>) {
    if let Some(v) = value {
        w.put_uvarint(v);
    }
}

/// Decodes a trailing u64 field if the payload carries one.
fn take_trailing_uvarint(r: &mut ByteReader<'_>) -> Result<Option<u64>, CodecError> {
    if r.is_exhausted() {
        Ok(None)
    } else {
        Ok(Some(r.get_uvarint()?))
    }
}

/// One chunk of an in-progress response on a v2 connection (the body of
/// [`Response::Stream`]).
#[derive(Debug, Clone, PartialEq)]
pub enum StreamBody {
    /// One accepted covering-round clause of a running `Learn` job, with
    /// its coverage counts — incremental progress ahead of the final
    /// [`Response::Learned`] frame.
    Progress(LearnProgress),
    /// A slice of a coverage result's per-clause covered sets, in
    /// submitted clause order. The client concatenates chunks; the chunk
    /// marked `last` completes the response (no separate
    /// [`Response::Covered`] frame follows).
    CoveredChunk(Vec<HashSet<Tuple>>),
}

impl StreamBody {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            StreamBody::Progress(p) => {
                w.put_u8(0);
                w.put_usize(p.round);
                p.clause.encode(w);
                w.put_usize(p.covered_positive);
                w.put_usize(p.covered_negative);
                w.put_usize(p.uncovered_remaining);
            }
            StreamBody::CoveredChunk(sets) => {
                w.put_u8(1);
                sets.encode(w);
            }
        }
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<StreamBody, CodecError> {
        Ok(match r.get_u8()? {
            0 => StreamBody::Progress(LearnProgress {
                round: r.get_usize()?,
                clause: Clause::decode(r)?,
                covered_positive: r.get_usize()?,
                covered_negative: r.get_usize()?,
                uncovered_remaining: r.get_usize()?,
            }),
            1 => StreamBody::CoveredChunk(Vec::<HashSet<Tuple>>::decode(r)?),
            other => return Err(CodecError::new(format!("invalid stream body tag {other}"))),
        })
    }
}

/// A server→client frame body.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The session is open; requests may flow.
    HelloOk,
    /// Per-clause covered subsets, in submitted clause order.
    Covered(Vec<HashSet<Tuple>>),
    /// Per-clause positive/negative counts.
    Scores(Vec<castor_engine::ClauseCounts>),
    /// The learned definition.
    Learned(Definition),
    /// What the mutation batch changed.
    Mutated(MutationSummary),
    /// The session's isolated counter deltas.
    Report(EngineReport),
    /// Engine totals of the bound database plus serving-layer counters.
    ServerReport {
        /// The database's combined engine counters.
        engine: EngineReport,
        /// The serving layer's admission/queue counters.
        server: ServerReport,
    },
    /// The metric exposition in Prometheus text format.
    Metrics(String),
    /// The span ring rendered as Chrome-trace JSON.
    TraceDump(String),
    /// One streamed chunk of an in-progress response (v2 only). Stream
    /// frames echo the originating request id, carry a per-request
    /// sequence number, and count against the connection's flow-control
    /// credit. A [`StreamBody::CoveredChunk`] with `last` set completes
    /// its request; [`StreamBody::Progress`] frames always have `last`
    /// clear — the job's terminal [`Response::Learned`] or
    /// [`Response::Error`] frame (credit-exempt) ends the stream.
    Stream {
        /// Position of this chunk in its request's stream, from 0.
        seq: u64,
        /// Whether this chunk completes the response.
        last: bool,
        /// The chunk itself.
        body: StreamBody,
    },
    /// A typed failure for the request id this frame echoes.
    Error {
        /// What went wrong.
        code: ErrorCode,
        /// The relevant admission limit, when the code carries one.
        limit: usize,
        /// Human-readable context.
        message: String,
        /// Load-aware backoff hint in milliseconds (0 = none): how long
        /// the client should wait before retrying, derived from the
        /// server's queue depth at rejection time. Encoded as a trailing
        /// field only when nonzero, keeping hint-free error frames
        /// byte-identical to the previous wire format.
        retry_after_ms: u64,
    },
}

impl Response {
    fn kind(&self) -> u8 {
        match self {
            Response::HelloOk => 0x81,
            Response::Covered(_) => 0x82,
            Response::Scores(_) => 0x83,
            Response::Learned(_) => 0x84,
            Response::Mutated(_) => 0x85,
            Response::Report(_) => 0x86,
            Response::ServerReport { .. } => 0x87,
            Response::Metrics(_) => 0x88,
            Response::TraceDump(_) => 0x89,
            Response::Stream { .. } => 0x8a,
            Response::Error { .. } => 0xff,
        }
    }

    fn encode_payload(&self, w: &mut ByteWriter) {
        match self {
            Response::HelloOk => {}
            Response::Covered(sets) => sets.encode(w),
            Response::Scores(counts) => counts.encode(w),
            Response::Learned(definition) => definition.encode(w),
            Response::Mutated(summary) => summary.encode(w),
            Response::Report(report) => report.encode(w),
            Response::ServerReport { engine, server } => {
                engine.encode(w);
                server.encode(w);
            }
            Response::Metrics(text) | Response::TraceDump(text) => w.put_str(text),
            Response::Stream { seq, last, body } => {
                w.put_uvarint(*seq);
                w.put_bool(*last);
                body.encode(w);
            }
            Response::Error {
                code,
                limit,
                message,
                retry_after_ms,
            } => {
                w.put_u8(*code as u8);
                w.put_usize(*limit);
                w.put_str(message);
                if *retry_after_ms != 0 {
                    w.put_uvarint(*retry_after_ms);
                }
            }
        }
    }

    fn decode_payload(kind: u8, r: &mut ByteReader<'_>) -> Result<Response, CodecError> {
        Ok(match kind {
            0x81 => Response::HelloOk,
            0x82 => Response::Covered(Vec::<HashSet<Tuple>>::decode(r)?),
            0x83 => Response::Scores(Vec::<castor_engine::ClauseCounts>::decode(r)?),
            0x84 => Response::Learned(Definition::decode(r)?),
            0x85 => Response::Mutated(MutationSummary::decode(r)?),
            0x86 => Response::Report(EngineReport::decode(r)?),
            0x87 => Response::ServerReport {
                engine: EngineReport::decode(r)?,
                server: ServerReport::decode(r)?,
            },
            0x88 => Response::Metrics(r.get_str()?),
            0x89 => Response::TraceDump(r.get_str()?),
            0x8a => Response::Stream {
                seq: r.get_uvarint()?,
                last: r.get_bool()?,
                body: StreamBody::decode(r)?,
            },
            0xff => Response::Error {
                code: ErrorCode::from_u8(r.get_u8()?)?,
                limit: r.get_usize()?,
                message: r.get_str()?,
                retry_after_ms: take_trailing_uvarint(r)?.unwrap_or(0),
            },
            other => return Err(CodecError::new(format!("invalid response kind {other}"))),
        })
    }

    /// The error response for a failed job.
    pub(crate) fn from_job_error(error: castor_service::JobError) -> Response {
        use castor_service::JobError;
        let message = error.to_string();
        match error {
            JobError::Cancelled => Response::Error {
                code: ErrorCode::Cancelled,
                limit: 0,
                message,
                retry_after_ms: 0,
            },
            JobError::Rejected {
                limit,
                retry_after_ms,
            } => Response::Error {
                code: ErrorCode::Rejected,
                limit,
                message,
                retry_after_ms,
            },
            JobError::DeadlineExceeded => Response::Error {
                code: ErrorCode::DeadlineExceeded,
                limit: 0,
                message,
                retry_after_ms: 0,
            },
            JobError::Mutation(inner) => Response::Error {
                code: ErrorCode::Mutation,
                limit: 0,
                message: inner.to_string(),
                retry_after_ms: 0,
            },
            JobError::Panicked(msg) => Response::Error {
                code: ErrorCode::Panicked,
                limit: 0,
                message: msg,
                retry_after_ms: 0,
            },
        }
    }
}

/// Writes one frame (header + payload) to `writer`, stamping `version`
/// into the header's version byte.
fn write_frame(
    writer: &mut impl Write,
    version: u8,
    kind: u8,
    request_id: u64,
    payload: &[u8],
) -> Result<(), FrameError> {
    let len = HEADER_BYTES + payload.len();
    let len32 = u32::try_from(len).map_err(|_| CodecError::new("frame length exceeds u32::MAX"))?;
    let mut header = [0u8; 4 + HEADER_BYTES];
    header[..4].copy_from_slice(&len32.to_le_bytes());
    header[4] = version;
    header[5] = kind;
    header[6..14].copy_from_slice(&request_id.to_le_bytes());
    writer.write_all(&header)?;
    writer.write_all(payload)?;
    writer.flush()?;
    Ok(())
}

/// Writes one request frame at the given protocol version.
pub fn write_request_v(
    writer: &mut impl Write,
    version: u8,
    request_id: u64,
    request: &Request,
) -> Result<(), FrameError> {
    let mut w = ByteWriter::new();
    request.encode_payload(&mut w);
    write_frame(writer, version, request.kind(), request_id, &w.into_bytes())
}

/// Writes one v1 request frame — byte-identical to the pre-v2 wire
/// format for every v1 request shape.
pub fn write_request(
    writer: &mut impl Write,
    request_id: u64,
    request: &Request,
) -> Result<(), FrameError> {
    write_request_v(writer, PROTOCOL_V1, request_id, request)
}

/// Writes one response frame at the given protocol version.
pub fn write_response_v(
    writer: &mut impl Write,
    version: u8,
    request_id: u64,
    response: &Response,
) -> Result<(), FrameError> {
    let mut w = ByteWriter::new();
    response.encode_payload(&mut w);
    write_frame(
        writer,
        version,
        response.kind(),
        request_id,
        &w.into_bytes(),
    )
}

/// Writes one v1 response frame (see [`write_request`]).
pub fn write_response(
    writer: &mut impl Write,
    request_id: u64,
    response: &Response,
) -> Result<(), FrameError> {
    write_response_v(writer, PROTOCOL_V1, request_id, response)
}

/// One parsed frame header plus its raw payload.
struct RawFrame {
    version: u8,
    kind: u8,
    request_id: u64,
    payload: Vec<u8>,
}

/// Reads one frame, enforcing `max_frame_bytes` *before* allocating the
/// payload (which is read straight into its own buffer — no second
/// copy). A clean EOF at a frame boundary is [`FrameError::Closed`].
/// Version bytes in `1..=max_version` are accepted (the negotiated
/// connection version rides in the returned frame); anything else is
/// [`FrameError::Version`].
fn read_frame(
    reader: &mut impl Read,
    max_frame_bytes: usize,
    max_version: u8,
) -> Result<RawFrame, FrameError> {
    let mut prefix = [0u8; 4];
    match reader.read_exact(&mut prefix) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
            return Err(FrameError::Closed);
        }
        Err(e) => return Err(FrameError::Io(e)),
    }
    let declared = u32::from_le_bytes(prefix) as usize;
    if declared < HEADER_BYTES {
        return Err(FrameError::Malformed(CodecError::new(format!(
            "frame length {declared} is shorter than the {HEADER_BYTES}-byte header"
        ))));
    }
    if declared > max_frame_bytes {
        return Err(FrameError::TooLarge {
            declared,
            limit: max_frame_bytes,
        });
    }
    let mut header = [0u8; HEADER_BYTES];
    reader.read_exact(&mut header)?;
    let mut payload = vec![0u8; declared - HEADER_BYTES];
    reader.read_exact(&mut payload)?;
    // The version check runs after the payload is consumed: an error
    // reply followed by a close must leave no unread bytes behind, or the
    // close degrades from FIN to RST and the peer loses the error frame.
    let version = header[0];
    if !(PROTOCOL_V1..=max_version).contains(&version) {
        return Err(FrameError::Version { got: version });
    }
    Ok(RawFrame {
        version,
        kind: header[1],
        request_id: u64::from_le_bytes(header[2..10].try_into().expect("8 header bytes")),
        payload,
    })
}

/// Reads one request frame (server side), accepting versions up to
/// `max_version` and reporting the frame's version byte alongside the
/// request — the server pins the connection to the version of the `Hello`
/// frame. On a payload decode failure the already-parsed request id rides
/// along (`Some`), so the server can correlate its typed error frame with
/// the request that caused it; header-level failures have no id (`None`).
pub fn read_request_versioned(
    reader: &mut impl Read,
    max_frame_bytes: usize,
    max_version: u8,
) -> Result<(u64, u8, Request), (Option<u64>, FrameError)> {
    let frame = read_frame(reader, max_frame_bytes, max_version).map_err(|e| (None, e))?;
    let mut r = ByteReader::new(&frame.payload);
    let decoded = Request::decode_payload(frame.kind, &mut r).and_then(|request| {
        r.finish()?;
        Ok(request)
    });
    match decoded {
        Ok(request) => Ok((frame.request_id, frame.version, request)),
        Err(e) => Err((Some(frame.request_id), e.into())),
    }
}

/// [`read_request_versioned`] at this build's maximum version, without
/// the frame's version byte.
pub fn read_request_tagged(
    reader: &mut impl Read,
    max_frame_bytes: usize,
) -> Result<(u64, Request), (Option<u64>, FrameError)> {
    read_request_versioned(reader, max_frame_bytes, PROTOCOL_VERSION)
        .map(|(id, _, request)| (id, request))
}

/// [`read_request_tagged`] without the error-side request id.
pub fn read_request(
    reader: &mut impl Read,
    max_frame_bytes: usize,
) -> Result<(u64, Request), FrameError> {
    read_request_tagged(reader, max_frame_bytes).map_err(|(_, e)| e)
}

/// Reads one response frame (client side). Accepts any version this
/// build speaks: on a negotiated connection every response carries the
/// connection version, which the client already knows.
pub fn read_response(
    reader: &mut impl Read,
    max_frame_bytes: usize,
) -> Result<(u64, Response), FrameError> {
    let frame = read_frame(reader, max_frame_bytes, PROTOCOL_VERSION)?;
    let mut r = ByteReader::new(&frame.payload);
    let response = Response::decode_payload(frame.kind, &mut r)?;
    r.finish()?;
    Ok((frame.request_id, response))
}

/// Incremental request-frame accumulation for non-blocking transports:
/// the event-loop server feeds whatever bytes a readiness-driven read
/// produced and drains complete frames, never blocking mid-frame.
///
/// Semantics mirror the blocking [`read_request_versioned`] exactly:
///
/// * the length prefix is validated against the cap **before** the
///   payload is buffered (an oversized frame errors after 4 bytes, no
///   allocation);
/// * the version byte is checked only once the full declared frame has
///   been consumed from the buffer, so the typed error + close path
///   leaves no unread bytes behind (FIN, not RST);
/// * framing is byte-positional, so any error poisons the accumulator —
///   there is no resynchronization, the connection must close.
#[derive(Debug)]
pub struct FrameAccumulator {
    buf: Vec<u8>,
    /// Consumed prefix of `buf` (compacted lazily to keep drains O(1)
    /// amortized instead of shifting the buffer per frame).
    pos: usize,
    max_frame_bytes: usize,
    max_version: u8,
    poisoned: bool,
}

impl FrameAccumulator {
    /// An empty accumulator with the connection's negotiated limits.
    pub fn new(max_frame_bytes: usize, max_version: u8) -> FrameAccumulator {
        FrameAccumulator {
            buf: Vec::new(),
            pos: 0,
            max_frame_bytes,
            max_version,
            poisoned: false,
        }
    }

    /// Appends freshly read bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        if !self.poisoned {
            self.buf.extend_from_slice(bytes);
        }
    }

    /// Bytes buffered but not yet consumed as frames.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether a framing error ended this connection's input.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    fn available(&self) -> &[u8] {
        &self.buf[self.pos..]
    }

    fn consume(&mut self, n: usize) {
        self.pos += n;
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos >= 64 * 1024 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }

    fn poison<T>(
        &mut self,
        error: (Option<u64>, FrameError),
    ) -> Option<Result<T, (Option<u64>, FrameError)>> {
        self.poisoned = true;
        self.buf.clear();
        self.pos = 0;
        Some(Err(error))
    }

    /// Drains the next complete request frame, if one is buffered.
    /// `None` means "need more bytes" (or the accumulator is poisoned);
    /// errors carry the already-parsed request id when the frame header
    /// was intact (payload decode failures), `None` for header-level
    /// failures — the same contract as [`read_request_versioned`].
    #[allow(clippy::type_complexity)]
    pub fn next_request(
        &mut self,
    ) -> Option<Result<(u64, u8, Request), (Option<u64>, FrameError)>> {
        if self.poisoned {
            return None;
        }
        let avail = self.available();
        if avail.len() < 4 {
            return None;
        }
        let declared = u32::from_le_bytes(avail[..4].try_into().expect("4 prefix bytes")) as usize;
        if declared < HEADER_BYTES {
            return self.poison((
                None,
                FrameError::Malformed(CodecError::new(format!(
                    "frame length {declared} is shorter than the {HEADER_BYTES}-byte header"
                ))),
            ));
        }
        if declared > self.max_frame_bytes {
            return self.poison((
                None,
                FrameError::TooLarge {
                    declared,
                    limit: self.max_frame_bytes,
                },
            ));
        }
        if avail.len() < 4 + declared {
            return None;
        }
        let frame = &avail[4..4 + declared];
        let version = frame[0];
        let kind = frame[1];
        let request_id = u64::from_le_bytes(frame[2..10].try_into().expect("8 header bytes"));
        let payload = frame[HEADER_BYTES..].to_vec();
        // The whole frame is consumed before the version check (see the
        // type docs: error + close must not leave unread bytes behind).
        self.consume(4 + declared);
        if !(PROTOCOL_V1..=self.max_version).contains(&version) {
            return self.poison((None, FrameError::Version { got: version }));
        }
        let mut r = ByteReader::new(&payload);
        let decoded = Request::decode_payload(kind, &mut r).and_then(|request| {
            r.finish()?;
            Ok(request)
        });
        match decoded {
            Ok(request) => Some(Ok((request_id, version, request))),
            Err(e) => self.poison((Some(request_id), e.into())),
        }
    }
}

/// Encodes a request to raw frame bytes at the given protocol version.
pub fn request_to_bytes_v(version: u8, request_id: u64, request: &Request) -> Vec<u8> {
    let mut out = Vec::new();
    write_request_v(&mut out, version, request_id, request).expect("vec writes cannot fail");
    out
}

/// Encodes a request to raw v1 frame bytes (test helper and bench
/// fodder).
pub fn request_to_bytes(request_id: u64, request: &Request) -> Vec<u8> {
    request_to_bytes_v(PROTOCOL_V1, request_id, request)
}

/// `Wire` helpers are re-exported for payload-level tooling.
pub use crate::codec::{from_bytes as payload_from_bytes, to_bytes as payload_to_bytes};

#[cfg(test)]
mod tests {
    use super::*;
    use castor_logic::Atom;

    fn roundtrip_request(request: Request) {
        let bytes = request_to_bytes(7, &request);
        let (id, decoded) = read_request(&mut bytes.as_slice(), DEFAULT_MAX_FRAME_BYTES).unwrap();
        assert_eq!(id, 7);
        assert_eq!(decoded, request);
    }

    fn roundtrip_response(response: Response) {
        let mut bytes = Vec::new();
        write_response(&mut bytes, 99, &response).unwrap();
        let (id, decoded) = read_response(&mut bytes.as_slice(), DEFAULT_MAX_FRAME_BYTES).unwrap();
        assert_eq!(id, 99);
        assert_eq!(decoded, response);
    }

    #[test]
    fn requests_roundtrip_through_frames() {
        roundtrip_request(Request::Hello {
            database: "demo".into(),
            eval_budget: Some(1234),
            stream_credit: None,
        });
        roundtrip_request(Request::Hello {
            database: "demo".into(),
            eval_budget: None,
            stream_credit: Some(64),
        });
        roundtrip_request(Request::StreamCredit { grant: 512 });
        roundtrip_request(Request::Coverage {
            clauses: vec![Clause::fact(Atom::vars("t", &["x"]))],
            examples: vec![Tuple::from_strs(&["a"])],
            deadline_ms: None,
        });
        roundtrip_request(Request::Coverage {
            clauses: vec![Clause::fact(Atom::vars("t", &["x"]))],
            examples: vec![Tuple::from_strs(&["a"])],
            deadline_ms: Some(2_500),
        });
        roundtrip_request(Request::Report);
        roundtrip_request(Request::Mutate(
            MutationBatch::new().insert("r", Tuple::from_strs(&["a"])),
        ));
        roundtrip_request(Request::Metrics);
        roundtrip_request(Request::TraceDump);
    }

    #[test]
    fn responses_roundtrip_through_frames() {
        roundtrip_response(Response::HelloOk);
        roundtrip_response(Response::Covered(vec![[Tuple::from_strs(&["a"])]
            .into_iter()
            .collect()]));
        roundtrip_response(Response::Error {
            code: ErrorCode::Rejected,
            limit: 4,
            message: "queue full".into(),
            retry_after_ms: 40,
        });
        roundtrip_response(Response::Error {
            code: ErrorCode::DeadlineExceeded,
            limit: 0,
            message: "deadline exceeded".into(),
            retry_after_ms: 0,
        });
        roundtrip_response(Response::ServerReport {
            engine: EngineReport::default(),
            server: ServerReport::default(),
        });
        roundtrip_response(Response::Metrics(
            "# HELP castor_jobs_submitted_total jobs\ncastor_jobs_submitted_total 3\n".into(),
        ));
        roundtrip_response(Response::TraceDump("{\"traceEvents\":[]}".into()));
        roundtrip_response(Response::Stream {
            seq: 3,
            last: false,
            body: StreamBody::Progress(LearnProgress {
                round: 1,
                clause: Clause::fact(Atom::vars("t", &["x"])),
                covered_positive: 5,
                covered_negative: 1,
                uncovered_remaining: 7,
            }),
        });
        roundtrip_response(Response::Stream {
            seq: 0,
            last: true,
            body: StreamBody::CoveredChunk(vec![[Tuple::from_strs(&["a"])].into_iter().collect()]),
        });
    }

    #[test]
    fn trailing_deadline_and_hint_fields_are_version_tolerant() {
        // A deadline-free request must be byte-identical to the pre-deadline
        // wire format: the trailing field is simply absent, so old peers
        // that stop reading at `examples` still parse the frame, and old
        // frames (with nothing after `examples`) decode to `None` here.
        let base = Request::Coverage {
            clauses: vec![Clause::fact(Atom::vars("t", &["x"]))],
            examples: vec![Tuple::from_strs(&["a"])],
            deadline_ms: None,
        };
        let with_deadline = Request::Coverage {
            clauses: vec![Clause::fact(Atom::vars("t", &["x"]))],
            examples: vec![Tuple::from_strs(&["a"])],
            deadline_ms: Some(1_000),
        };
        let base_bytes = request_to_bytes(1, &base);
        let deadline_bytes = request_to_bytes(1, &with_deadline);
        assert!(deadline_bytes.len() > base_bytes.len());
        // Past the 4-byte length prefix the deadline-carrying frame is the
        // base frame plus trailing bytes — the extension is purely
        // appended, never reshuffles existing fields.
        assert_eq!(&deadline_bytes[4..base_bytes.len()], &base_bytes[4..]);
        let (_, decoded) =
            read_request(&mut base_bytes.as_slice(), DEFAULT_MAX_FRAME_BYTES).unwrap();
        assert_eq!(decoded, base);

        // Same rule on the response side: a zero retry-after hint encodes
        // to nothing, keeping error frames identical to the old layout.
        let mut no_hint = Vec::new();
        write_response(
            &mut no_hint,
            2,
            &Response::Error {
                code: ErrorCode::Rejected,
                limit: 4,
                message: "q".into(),
                retry_after_ms: 0,
            },
        )
        .unwrap();
        let mut hinted = Vec::new();
        write_response(
            &mut hinted,
            2,
            &Response::Error {
                code: ErrorCode::Rejected,
                limit: 4,
                message: "q".into(),
                retry_after_ms: 40,
            },
        )
        .unwrap();
        assert!(hinted.len() > no_hint.len());
        assert_eq!(&hinted[4..no_hint.len()], &no_hint[4..]);
    }

    #[test]
    fn hello_credit_field_is_version_tolerant_and_version_byte_negotiates() {
        // A credit-free Hello is byte-identical to the v1 wire format
        // past the length prefix, so a v1 server parses it unchanged.
        let bare = Request::Hello {
            database: "demo".into(),
            eval_budget: None,
            stream_credit: None,
        };
        let with_credit = Request::Hello {
            database: "demo".into(),
            eval_budget: None,
            stream_credit: Some(16),
        };
        let bare_bytes = request_to_bytes(1, &bare);
        let credit_bytes = request_to_bytes(1, &with_credit);
        assert!(credit_bytes.len() > bare_bytes.len());
        assert_eq!(&credit_bytes[4..bare_bytes.len()], &bare_bytes[4..]);

        // The version wrappers stamp exactly the version byte and nothing
        // else: a v2 frame differs from its v1 twin only at offset 4.
        let v1 = request_to_bytes_v(PROTOCOL_V1, 1, &bare);
        let v2 = request_to_bytes_v(PROTOCOL_V2, 1, &bare);
        assert_eq!(v1[4], PROTOCOL_V1);
        assert_eq!(v2[4], PROTOCOL_V2);
        assert_eq!(&v1[..4], &v2[..4]);
        assert_eq!(&v1[5..], &v2[5..]);

        // A v1-capped reader rejects the v2 frame; a full reader reports
        // the version it accepted.
        assert!(matches!(
            read_request_versioned(&mut v2.as_slice(), 1 << 20, PROTOCOL_V1),
            Err((None, FrameError::Version { got: PROTOCOL_V2 }))
        ));
        let (_, version, _) =
            read_request_versioned(&mut v2.as_slice(), 1 << 20, PROTOCOL_VERSION).unwrap();
        assert_eq!(version, PROTOCOL_V2);
        let (_, version, _) =
            read_request_versioned(&mut v1.as_slice(), 1 << 20, PROTOCOL_VERSION).unwrap();
        assert_eq!(version, PROTOCOL_V1);
    }

    #[test]
    fn oversized_frames_are_rejected_before_allocation() {
        let mut bytes = Vec::new();
        // A forged length prefix of 1 GiB with no body behind it.
        bytes.extend_from_slice(&(1u32 << 30).to_le_bytes());
        match read_request(&mut bytes.as_slice(), 1024) {
            Err(FrameError::TooLarge { declared, limit }) => {
                assert_eq!(declared, 1 << 30);
                assert_eq!(limit, 1024);
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn truncated_and_malformed_frames_fail_cleanly() {
        let bytes = request_to_bytes(1, &Request::Report);
        // Truncation anywhere inside the frame is an error, not a hang or
        // a panic.
        for cut in 1..bytes.len() {
            assert!(read_request(&mut bytes[..cut].as_ref(), 1 << 20).is_err());
        }
        // A frame length shorter than the header is malformed.
        let mut short = Vec::new();
        short.extend_from_slice(&3u32.to_le_bytes());
        short.extend_from_slice(&[PROTOCOL_VERSION, 0x06, 0]);
        assert!(matches!(
            read_request(&mut short.as_slice(), 1 << 20),
            Err(FrameError::Malformed(_))
        ));
        // A bogus version byte is a version error.
        let mut wrong = request_to_bytes(1, &Request::Report);
        wrong[4] = 42;
        assert!(matches!(
            read_request(&mut wrong.as_slice(), 1 << 20),
            Err(FrameError::Version { got: 42 })
        ));
        // A clean EOF between frames is Closed, not an IO error.
        assert!(matches!(
            read_request(&mut [].as_slice(), 1 << 20),
            Err(FrameError::Closed)
        ));
    }

    #[test]
    fn accumulator_yields_frames_fed_byte_by_byte() {
        let mut bytes = request_to_bytes(1, &Request::Report);
        bytes.extend_from_slice(&request_to_bytes_v(
            PROTOCOL_V2,
            2,
            &Request::StreamCredit { grant: 16 },
        ));
        let mut acc = FrameAccumulator::new(DEFAULT_MAX_FRAME_BYTES, PROTOCOL_V2);
        let mut seen = Vec::new();
        for &b in &bytes {
            acc.feed(&[b]);
            while let Some(next) = acc.next_request() {
                seen.push(next.expect("clean frames decode"));
            }
        }
        assert_eq!(
            seen,
            vec![
                (1, PROTOCOL_V1, Request::Report),
                (2, PROTOCOL_V2, Request::StreamCredit { grant: 16 }),
            ]
        );
        assert_eq!(acc.buffered(), 0);
    }

    #[test]
    fn accumulator_rejects_oversized_prefix_before_buffering_payload() {
        let mut acc = FrameAccumulator::new(256, PROTOCOL_V2);
        acc.feed(&(1u32 << 28).to_le_bytes());
        match acc.next_request() {
            Some(Err((None, FrameError::TooLarge { declared, limit }))) => {
                assert_eq!(declared, 1 << 28);
                assert_eq!(limit, 256);
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
        // Poisoned: no resync, even if more bytes arrive.
        acc.feed(&request_to_bytes(1, &Request::Report));
        assert!(acc.is_poisoned());
        assert!(acc.next_request().is_none());
    }

    #[test]
    fn accumulator_checks_version_only_after_consuming_the_full_frame() {
        let mut wrong = request_to_bytes(1, &Request::Report);
        wrong[4] = 42;
        let mut acc = FrameAccumulator::new(DEFAULT_MAX_FRAME_BYTES, PROTOCOL_V2);
        // Everything but the final byte: no verdict yet — the error path
        // must consume the whole frame first (FIN, not RST).
        acc.feed(&wrong[..wrong.len() - 1]);
        assert!(acc.next_request().is_none());
        acc.feed(&wrong[wrong.len() - 1..]);
        assert!(matches!(
            acc.next_request(),
            Some(Err((None, FrameError::Version { got: 42 })))
        ));
        assert_eq!(acc.buffered(), 0, "bad frame fully consumed");
    }

    #[test]
    fn accumulator_reports_request_id_on_payload_decode_failures() {
        // A Coverage frame whose payload is garbage: the header parsed, so
        // the error echoes the request id.
        let good = request_to_bytes(9, &Request::Report);
        let mut bad = Vec::new();
        let body = [PROTOCOL_V1, 0x02, 9, 0, 0, 0, 0, 0, 0, 0, 0xFF];
        bad.extend_from_slice(&(body.len() as u32).to_le_bytes());
        bad.extend_from_slice(&body);
        let mut acc = FrameAccumulator::new(DEFAULT_MAX_FRAME_BYTES, PROTOCOL_V2);
        acc.feed(&good);
        acc.feed(&bad);
        assert!(matches!(
            acc.next_request(),
            Some(Ok((9, _, Request::Report)))
        ));
        assert!(matches!(
            acc.next_request(),
            Some(Err((Some(9), FrameError::Malformed(_))))
        ));
        assert!(acc.is_poisoned());
    }
}
