//! # castor-rpc
//!
//! The network front end of the Castor serving stack: a dependency-free
//! std-TCP wire protocol over [`castor_service`]. The paper (Picado et
//! al., SIGMOD 2017) frames Castor as a learning *service* over live
//! relational databases; `castor-service` runs multi-session learning
//! in-process, and this crate is the layer that lets anything reach it
//! over a network — the boundary every future scaling step (sharding,
//! multi-backend routing) slots behind.
//!
//! * [`frame`] — versioned length-prefixed frames with request ids (see
//!   the module docs for the byte layout), request/response bodies, and
//!   typed error codes; protocol v2 (negotiated per connection by the
//!   `Hello` frame's version byte) adds streaming response frames —
//!   learn-progress chunks and chunked covered sets — under
//!   client-granted flow-control credit, while v1 connections stay
//!   byte-identical to the pre-v2 wire format;
//! * [`codec`] — compact hand-rolled binary encoding (varints, tagged
//!   enums) for every job and result shape: clauses, tuples, mutation
//!   batches, learner configurations, engine and server reports;
//! * [`server`] — [`RpcServer`]: by default a single readiness-driven
//!   epoll event loop (see [`event_loop`]; [`ServerCore::Threaded`]
//!   keeps the original thread-per-connection core), mapping each
//!   connection onto one [`castor_service::Session`]; in-flight
//!   requests multiplex onto the per-database round-robin queues,
//!   admission rejections come back as typed error frames, and a
//!   disconnect fires the session's cancel token (queued jobs fail
//!   fast, the running one aborts within one candidate tuple, the
//!   admission slot is reclaimed);
//! * [`sys`] — libc-free epoll/eventfd syscall wrappers the event loop
//!   stands on (Linux x86_64/aarch64; other targets fall back to the
//!   threaded core);
//! * [`client`] — [`RpcClient`]: a blocking client with pipelined
//!   submits, mirroring the in-process `Session` API shape so callers
//!   can swap transports;
//! * [`retry`] — [`RetryClient`]: a reconnecting wrapper that replays
//!   idempotent requests under backoff with decorrelated jitter and
//!   refuses to replay mutations/learns after send (typed
//!   [`RpcError::Ambiguous`] instead of double-applying);
//! * [`fault`] — [`FaultPlan`]: a deterministic, seeded fault-injection
//!   hook on the server transport (torn writes, dropped/delayed reads,
//!   byte-exact socket closes) driving the chaos suite.
//!
//! ## Observability
//!
//! Wire-submitted jobs are traced under their frame request id: the
//! client records an `rpc.client.encode` span, the server records
//! `service.queue_wait`, `engine.batch_eval`, and `rpc.server.reply`
//! spans — all under the same id, so one request's life across both
//! processes greps out of the dumps. `Request::Metrics` fetches the
//! server's Prometheus-text metric exposition and `Request::TraceDump`
//! its recent spans as Chrome-trace JSON; the client's own latency view
//! ([`RpcClient::obs`]) holds `castor_rpc_encode_ns` and
//! `castor_rpc_roundtrip_ns` histograms.
//!
//! ```no_run
//! use castor_rpc::{RpcClient, RpcConfig, RpcServer};
//! use castor_service::{Server, ServerConfig};
//! use castor_relational::{DatabaseInstance, RelationSymbol, Schema, Tuple};
//! use castor_logic::{Atom, Clause};
//! use std::sync::Arc;
//!
//! let mut schema = Schema::new("demo");
//! schema.add_relation(RelationSymbol::new("publication", &["title", "person"]));
//! let mut db = DatabaseInstance::empty(&schema);
//! db.insert("publication", Tuple::from_strs(&["p1", "ann"])).unwrap();
//!
//! let service = Arc::new(Server::new(ServerConfig::default()));
//! service.register("demo", Arc::new(db)).unwrap();
//! let rpc = RpcServer::bind(service, "127.0.0.1:0", RpcConfig::default()).unwrap();
//!
//! let mut client = RpcClient::connect(rpc.local_addr(), "demo").unwrap();
//! let clause = Clause::new(
//!     Atom::vars("t", &["x"]),
//!     vec![Atom::vars("publication", &["p", "x"])],
//! );
//! let sets = client
//!     .covered_sets(vec![clause], vec![Tuple::from_strs(&["ann"])])
//!     .unwrap();
//! assert_eq!(sets[0].len(), 1);
//! ```

pub mod client;
pub mod codec;
#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
pub mod event_loop;
pub mod fault;
pub mod frame;
pub mod retry;
pub mod server;
#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
pub mod sys;

pub use client::{ClientConfig, RpcClient, RpcError, RpcHandle};
pub use codec::{ByteReader, ByteWriter, CodecError, Wire};
pub use fault::{FaultAction, FaultKind, FaultPlan, FaultStats, FaultStream};
pub use frame::{
    ErrorCode, FrameError, Request, Response, StreamBody, DEFAULT_MAX_FRAME_BYTES,
    DEFAULT_STREAM_CREDIT, PROTOCOL_V1, PROTOCOL_V2, PROTOCOL_VERSION,
};
pub use retry::{RetryClient, RetryPolicy};
pub use server::{RpcConfig, RpcServer, ServerCore};
