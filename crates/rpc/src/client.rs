//! The blocking RPC client: one TCP connection, one session.
//!
//! Requests can be *pipelined*: [`RpcClient::submit`] sends a request and
//! returns a lightweight [`RpcHandle`] immediately; [`RpcClient::join`]
//! blocks until that request's response arrives, buffering any other
//! responses that land first. The convenience methods
//! ([`RpcClient::covered_sets`], [`RpcClient::learn`], ...) are
//! submit-then-join in one call — the same shapes
//! [`castor_service::Session`] offers in-process, so callers can swap the
//! transports.

use crate::frame::{
    read_response, write_request_v, ErrorCode, FrameError, Request, Response, StreamBody,
    DEFAULT_MAX_FRAME_BYTES, DEFAULT_STREAM_CREDIT, PROTOCOL_V1, PROTOCOL_V2, PROTOCOL_VERSION,
};
use castor_engine::{ClauseCounts, EngineReport, LearnProgress};
use castor_learners::LearningTask;
use castor_logic::{Clause, Definition};
use castor_obs::{Histogram, Obs};
use castor_relational::{MutationBatch, MutationSummary, Tuple};
use castor_service::{LearnAlgorithm, ServerReport};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::io::BufWriter;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

/// Connection knobs for [`RpcClient`]. The defaults are conservative for
/// a well-behaved LAN: a bounded connect, unbounded reads/writes (jobs
/// can legitimately run long). Chaos and retry setups should set the
/// read timeout so a stalled or half-dead server turns into a typed
/// [`RpcError::Timeout`] instead of a hang.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Cap on TCP connection establishment (`None` = OS default).
    pub connect_timeout: Option<Duration>,
    /// Cap on one blocking socket read (`None` = wait forever).
    pub read_timeout: Option<Duration>,
    /// Cap on one blocking socket write (`None` = wait forever).
    pub write_timeout: Option<Duration>,
    /// Cap on received frames (servers enforce their own for requests).
    pub max_frame_bytes: usize,
    /// Per-session node-budget override sent in `Hello`.
    pub eval_budget: Option<usize>,
    /// Protocol version to speak. `None` (the default) negotiates: the
    /// client tries this build's newest version and reconnects at v1 when
    /// the server rejects it with
    /// [`ErrorCode::UnsupportedVersion`]. `Some(v)` pins the version —
    /// no fallback.
    pub protocol_version: Option<u8>,
    /// Initial stream-frame credit granted in `Hello` on a v2 connection
    /// (see [`Request::StreamCredit`]). The client replenishes
    /// automatically as it consumes stream frames; `0` grants nothing —
    /// the server will not stream to this connection until an explicit
    /// grant (starvation-test territory, not a production setting).
    pub stream_credit: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Some(Duration::from_secs(10)),
            read_timeout: None,
            write_timeout: None,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            eval_budget: None,
            protocol_version: None,
            stream_credit: DEFAULT_STREAM_CREDIT,
        }
    }
}

impl ClientConfig {
    /// Sets the connect timeout (builder style).
    pub fn with_connect_timeout(mut self, timeout: Duration) -> Self {
        self.connect_timeout = Some(timeout);
        self
    }

    /// Sets the per-read socket timeout (builder style).
    pub fn with_read_timeout(mut self, timeout: Duration) -> Self {
        self.read_timeout = Some(timeout);
        self
    }

    /// Sets the per-write socket timeout (builder style).
    pub fn with_write_timeout(mut self, timeout: Duration) -> Self {
        self.write_timeout = Some(timeout);
        self
    }

    /// Sets the received-frame cap (builder style).
    pub fn with_max_frame_bytes(mut self, max_frame_bytes: usize) -> Self {
        self.max_frame_bytes = max_frame_bytes;
        self
    }

    /// Sets the per-session node-budget override (builder style).
    pub fn with_eval_budget(mut self, budget: usize) -> Self {
        self.eval_budget = Some(budget);
        self
    }

    /// Pins the protocol version — no negotiation fallback (builder
    /// style).
    pub fn with_protocol_version(mut self, version: u8) -> Self {
        self.protocol_version = Some(version);
        self
    }

    /// Sets the initial stream-frame credit for v2 connections (builder
    /// style).
    pub fn with_stream_credit(mut self, credit: u64) -> Self {
        self.stream_credit = credit;
        self
    }
}

/// Why a client call failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RpcError {
    /// The socket failed or closed mid-exchange.
    Io(String),
    /// A socket operation exceeded its configured timeout (connect, read,
    /// or write) — distinct from [`RpcError::Io`] because a timeout on an
    /// idempotent request is safely retryable.
    Timeout(String),
    /// A frame or payload could not be decoded locally.
    Malformed(String),
    /// The server answered with a typed error frame.
    Remote {
        /// The server's error code.
        code: ErrorCode,
        /// The relevant admission limit, when the code carries one.
        limit: usize,
        /// The server's message.
        message: String,
        /// Load-aware backoff hint for rejections (0 = none); retrying
        /// clients sleep at least this long before the next attempt.
        retry_after_ms: u64,
    },
    /// The server answered with a response of the wrong shape.
    UnexpectedResponse(String),
    /// A retrying client gave up: every attempt inside its budget failed.
    /// `last` is the final attempt's error.
    RetryExhausted {
        /// How many attempts were made.
        attempts: u32,
        /// The error that ended the last attempt.
        last: Box<RpcError>,
    },
    /// A non-idempotent request (mutation, learn) failed *after* it was
    /// sent: the server may or may not have applied it, and retrying
    /// could double-apply. The caller must reconcile — e.g. compare
    /// mutation epochs via a server report — before resubmitting.
    Ambiguous {
        /// What failed, for the human reading the log.
        message: String,
    },
}

impl RpcError {
    /// Whether this is an admission-control rejection (session cap or
    /// per-database in-flight cap).
    pub fn is_admission_rejection(&self) -> bool {
        matches!(
            self,
            RpcError::Remote {
                code: ErrorCode::Rejected | ErrorCode::SessionLimit,
                ..
            }
        )
    }

    /// Whether the server cancelled the job (session cancel or
    /// disconnect).
    pub fn is_cancelled(&self) -> bool {
        matches!(
            self,
            RpcError::Remote {
                code: ErrorCode::Cancelled,
                ..
            }
        )
    }

    /// Whether the job's deadline expired server-side.
    pub fn is_deadline_exceeded(&self) -> bool {
        matches!(
            self,
            RpcError::Remote {
                code: ErrorCode::DeadlineExceeded,
                ..
            }
        )
    }

    /// Whether retrying this error on a fresh connection is safe *for an
    /// idempotent request*: transport failures, timeouts, torn frames,
    /// and load-shedding rejections qualify; typed semantic errors (bad
    /// request, unknown database, deadline exceeded) do not — the retry
    /// would fail identically.
    pub fn is_retryable_for_idempotent(&self) -> bool {
        match self {
            RpcError::Io(_) | RpcError::Timeout(_) | RpcError::Malformed(_) => true,
            RpcError::Remote { .. } => self.is_admission_rejection(),
            RpcError::UnexpectedResponse(_)
            | RpcError::RetryExhausted { .. }
            | RpcError::Ambiguous { .. } => false,
        }
    }
}

impl fmt::Display for RpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RpcError::Io(msg) => write!(f, "rpc transport failed: {msg}"),
            RpcError::Timeout(msg) => write!(f, "rpc timed out: {msg}"),
            RpcError::Malformed(msg) => write!(f, "rpc frame malformed: {msg}"),
            RpcError::Remote { code, message, .. } => {
                write!(f, "server error ({code:?}): {message}")
            }
            RpcError::UnexpectedResponse(what) => {
                write!(f, "server sent an unexpected response: {what}")
            }
            RpcError::RetryExhausted { attempts, last } => {
                write!(f, "retries exhausted after {attempts} attempts: {last}")
            }
            RpcError::Ambiguous { message } => {
                write!(
                    f,
                    "request outcome ambiguous (may or may not have been applied): {message}"
                )
            }
        }
    }
}

impl std::error::Error for RpcError {}

impl From<FrameError> for RpcError {
    fn from(error: FrameError) -> Self {
        match error {
            FrameError::Io(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                RpcError::Timeout(e.to_string())
            }
            FrameError::Io(e) => RpcError::Io(e.to_string()),
            FrameError::Closed => RpcError::Io("connection closed".to_string()),
            FrameError::TooLarge { .. } | FrameError::Malformed(_) | FrameError::Version { .. } => {
                RpcError::Malformed(error.to_string())
            }
        }
    }
}

/// A pipelined request awaiting [`RpcClient::join`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use = "join the handle to read the response"]
pub struct RpcHandle(u64);

impl RpcHandle {
    /// The request id — also the trace id the server records this
    /// request's spans under (queue wait, engine evaluation, reply
    /// write), and the one the client's `rpc.client.encode` span uses.
    pub fn id(&self) -> u64 {
        self.0
    }
}

/// Reassembly state of one request's in-progress response stream.
#[derive(Debug, Default)]
struct StreamState {
    /// The sequence number the next chunk must carry.
    next_seq: u64,
    /// Covered sets accumulated from `CoveredChunk` frames.
    chunks: Vec<HashSet<Tuple>>,
    /// Learn-progress events, in arrival (covering-round) order.
    progress: Vec<LearnProgress>,
}

/// A blocking client bound to one database session on an
/// [`crate::RpcServer`].
#[derive(Debug)]
pub struct RpcClient {
    reader: TcpStream,
    writer: BufWriter<TcpStream>,
    next_id: u64,
    /// The request id to stamp on the next submit instead of the counter
    /// (see [`RpcClient::use_trace_id`]).
    forced_id: Option<u64>,
    /// Responses that arrived while waiting for a different request id.
    pending: HashMap<u64, Response>,
    /// Partially reassembled v2 response streams, by request id.
    streams: HashMap<u64, StreamState>,
    max_frame_bytes: usize,
    /// The negotiated connection protocol version.
    version: u8,
    /// The initial credit granted in `Hello`; replenishment targets it.
    stream_credit: u64,
    /// Stream frames consumed since the last replenishment grant.
    consumed_since_grant: u64,
    /// The client's own observability handle: `rpc.client.encode` spans
    /// plus encode/roundtrip latency histograms, recorded under the same
    /// trace ids (request ids) the server records its spans under.
    obs: Arc<Obs>,
    encode_ns: Arc<Histogram>,
    roundtrip_ns: Arc<Histogram>,
    /// Submit times of in-flight requests, for the roundtrip histogram.
    started: HashMap<u64, u64>,
}

impl RpcClient {
    /// Connects and opens a session on `database` with the server's
    /// default evaluation budget.
    pub fn connect(addr: impl ToSocketAddrs, database: &str) -> Result<RpcClient, RpcError> {
        RpcClient::connect_config(addr, database, &ClientConfig::default())
    }

    /// [`RpcClient::connect`] with a per-session node-budget override and
    /// a frame cap (the cap applies to *received* frames; servers enforce
    /// their own).
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        database: &str,
        eval_budget: Option<usize>,
        max_frame_bytes: usize,
    ) -> Result<RpcClient, RpcError> {
        let config = ClientConfig {
            eval_budget,
            max_frame_bytes,
            ..ClientConfig::default()
        };
        RpcClient::connect_config(addr, database, &config)
    }

    /// [`RpcClient::connect`] under explicit [`ClientConfig`] knobs:
    /// connect/read/write timeouts, frame cap, budget override. Timeouts
    /// surface as [`RpcError::Timeout`], which a retry layer treats as
    /// safely retryable for idempotent requests.
    pub fn connect_config(
        addr: impl ToSocketAddrs,
        database: &str,
        config: &ClientConfig,
    ) -> Result<RpcClient, RpcError> {
        match config.protocol_version {
            // A pinned version is spoken as-is — no fallback.
            Some(version) => RpcClient::connect_version(&addr, database, config, version),
            // Negotiation: try this build's newest version; a server that
            // rejects it (UnsupportedVersion closes the connection, so a
            // fresh one is needed) gets a v1 retry.
            None => match RpcClient::connect_version(&addr, database, config, PROTOCOL_VERSION) {
                Err(RpcError::Remote {
                    code: ErrorCode::UnsupportedVersion,
                    ..
                }) => RpcClient::connect_version(&addr, database, config, PROTOCOL_V1),
                other => other,
            },
        }
    }

    /// Connects and performs the Hello exchange at one fixed version.
    fn connect_version(
        addr: &impl ToSocketAddrs,
        database: &str,
        config: &ClientConfig,
        version: u8,
    ) -> Result<RpcClient, RpcError> {
        let stream = connect_stream(addr, config.connect_timeout)?;
        let _ = stream.set_nodelay(true);
        stream
            .set_read_timeout(config.read_timeout)
            .map_err(|e| RpcError::Io(e.to_string()))?;
        stream
            .set_write_timeout(config.write_timeout)
            .map_err(|e| RpcError::Io(e.to_string()))?;
        let (eval_budget, max_frame_bytes) = (config.eval_budget, config.max_frame_bytes);
        let reader = stream
            .try_clone()
            .map_err(|e| RpcError::Io(e.to_string()))?;
        let obs = Obs::enabled_default();
        let encode_ns = obs.registry().histogram(
            "castor_rpc_encode_ns",
            "Nanoseconds spent encoding and writing one request frame.",
        );
        let roundtrip_ns = obs.registry().histogram(
            "castor_rpc_roundtrip_ns",
            "Nanoseconds from request submit to its response being joined.",
        );
        let mut client = RpcClient {
            reader,
            writer: BufWriter::new(stream),
            next_id: 0,
            forced_id: None,
            pending: HashMap::new(),
            streams: HashMap::new(),
            max_frame_bytes,
            version,
            stream_credit: config.stream_credit,
            consumed_since_grant: 0,
            obs,
            encode_ns,
            roundtrip_ns,
            started: HashMap::new(),
        };
        let handle = client.submit(Request::Hello {
            database: database.to_string(),
            eval_budget,
            // The credit field only exists on v2 connections; a v1 Hello
            // stays byte-identical to the pre-v2 wire format.
            stream_credit: (version >= PROTOCOL_V2).then_some(config.stream_credit),
        })?;
        match client.join(handle)? {
            Response::HelloOk => Ok(client),
            other => Err(RpcError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// The negotiated protocol version of this connection.
    pub fn protocol_version(&self) -> u8 {
        self.version
    }

    /// Stamps the *next* submitted request with `trace` instead of the
    /// sequential counter. Routers forward an upstream caller's minted
    /// trace id this way, so one logical request's spans stitch across
    /// client, router, and server processes. Minted trace ids carry the
    /// high bit ([`castor_obs`] local-trace convention) while sequential
    /// request ids count up from zero, so the two can never collide.
    pub fn use_trace_id(&mut self, trace: u64) {
        self.forced_id = Some(trace);
    }

    /// Sends one request, returning its handle without waiting for the
    /// response. Any number of requests may be in flight.
    ///
    /// The encode+write is recorded as an `rpc.client.encode` span under
    /// the request id — the same id the server uses as the job's trace id,
    /// so the client- and server-side spans of one request line up.
    pub fn submit(&mut self, request: Request) -> Result<RpcHandle, RpcError> {
        let id = match self.forced_id.take() {
            Some(forced) => forced,
            None => {
                let id = self.next_id;
                self.next_id += 1;
                id
            }
        };
        let start_ns = self.obs.now_ns();
        let timer = self.obs.timer();
        write_request_v(&mut self.writer, self.version, id, &request)?;
        if timer.is_live() {
            let dur_ns = timer.stop_ns(&self.encode_ns);
            self.obs
                .span_measured("rpc.client.encode", id, start_ns, dur_ns, Vec::new());
            self.started.insert(id, start_ns);
        }
        Ok(RpcHandle(id))
    }

    /// Blocks until the response for `handle` arrives (buffering other
    /// responses), then surfaces typed error frames as [`RpcError`].
    pub fn join(&mut self, handle: RpcHandle) -> Result<Response, RpcError> {
        loop {
            if let Some(response) = self.pending.remove(&handle.0) {
                if let Some(start_ns) = self.started.remove(&handle.0) {
                    self.obs.record_since(&self.roundtrip_ns, start_ns);
                }
                return match response {
                    Response::Error {
                        code,
                        limit,
                        message,
                        retry_after_ms,
                    } => Err(RpcError::Remote {
                        code,
                        limit,
                        message,
                        retry_after_ms,
                    }),
                    other => Ok(other),
                };
            }
            let (id, response) = read_response(&mut self.reader, self.max_frame_bytes)?;
            self.accept(id, response)?;
        }
    }

    /// Routes one received frame: stream chunks accumulate (completing
    /// into `pending` when the last chunk lands), everything else goes to
    /// `pending` directly. Consuming stream frames replenishes the
    /// server's flow-control credit once half the initial grant is spent.
    fn accept(&mut self, id: u64, response: Response) -> Result<(), RpcError> {
        let Response::Stream { seq, last, body } = response else {
            self.pending.insert(id, response);
            return Ok(());
        };
        self.consumed_since_grant += 1;
        let state = self.streams.entry(id).or_default();
        if seq != state.next_seq {
            return Err(RpcError::Malformed(format!(
                "stream chunk for request {id} arrived out of order: got seq {seq}, expected {}",
                state.next_seq
            )));
        }
        state.next_seq += 1;
        match body {
            StreamBody::Progress(progress) => {
                if last {
                    return Err(RpcError::Malformed(format!(
                        "progress stream for request {id} marked last: the terminal \
                         frame of a learn is its result, never a progress chunk"
                    )));
                }
                state.progress.push(progress);
            }
            StreamBody::CoveredChunk(mut sets) => {
                state.chunks.append(&mut sets);
                if last {
                    let state = self.streams.remove(&id).expect("stream state just touched");
                    self.pending.insert(id, Response::Covered(state.chunks));
                }
            }
        }
        self.replenish_credit()
    }

    /// Tops the server's stream credit back up after the client has
    /// consumed half its grant (batched so grants are not per-frame).
    /// Grants ride with request id 0 — [`Request::StreamCredit`] has no
    /// response frame, so the id is never echoed and cannot collide.
    fn replenish_credit(&mut self) -> Result<(), RpcError> {
        let threshold = (self.stream_credit / 2).max(1);
        if self.stream_credit == 0 || self.consumed_since_grant < threshold {
            return Ok(());
        }
        let grant = std::mem::take(&mut self.consumed_since_grant);
        write_request_v(
            &mut self.writer,
            self.version,
            0,
            &Request::StreamCredit { grant },
        )?;
        Ok(())
    }

    /// Submit-then-join for a request expecting one response shape.
    fn request(&mut self, request: Request) -> Result<Response, RpcError> {
        let handle = self.submit(request)?;
        self.join(handle)
    }

    /// Covered subsets for a batch of clauses — the wire shape of
    /// [`castor_service::Session::covered_sets`].
    pub fn covered_sets(
        &mut self,
        clauses: Vec<Clause>,
        examples: Vec<Tuple>,
    ) -> Result<Vec<HashSet<Tuple>>, RpcError> {
        self.covered_sets_deadline(clauses, examples, None)
    }

    /// [`RpcClient::covered_sets`] with a relative deadline: the server
    /// sheds the job (never touching the engine) if it is still queued
    /// when the deadline passes, and aborts it mid-run otherwise —
    /// either way the call fails with [`ErrorCode::DeadlineExceeded`].
    pub fn covered_sets_deadline(
        &mut self,
        clauses: Vec<Clause>,
        examples: Vec<Tuple>,
        deadline_ms: Option<u64>,
    ) -> Result<Vec<HashSet<Tuple>>, RpcError> {
        match self.request(Request::Coverage {
            clauses,
            examples,
            deadline_ms,
        })? {
            Response::Covered(sets) => Ok(sets),
            other => Err(RpcError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Fused positive/negative scoring — the wire shape of
    /// [`castor_service::Session::score`].
    pub fn score(
        &mut self,
        clauses: Vec<Clause>,
        positive: Vec<Tuple>,
        negative: Vec<Tuple>,
    ) -> Result<Vec<ClauseCounts>, RpcError> {
        match self.request(Request::Score {
            clauses,
            positive,
            negative,
            deadline_ms: None,
        })? {
            Response::Scores(counts) => Ok(counts),
            other => Err(RpcError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Runs a learner over the session's database — the wire shape of
    /// [`castor_service::Session::learn`].
    pub fn learn(
        &mut self,
        task: LearningTask,
        algorithm: LearnAlgorithm,
    ) -> Result<Definition, RpcError> {
        self.learn_deadline(task, algorithm, None)
    }

    /// [`RpcClient::learn`] with a relative deadline (see
    /// [`RpcClient::covered_sets_deadline`]): a deadline firing mid-learn
    /// aborts at the learner's next coverage test and the call fails with
    /// [`ErrorCode::DeadlineExceeded`] instead of a partial definition.
    pub fn learn_deadline(
        &mut self,
        task: LearningTask,
        algorithm: LearnAlgorithm,
        deadline_ms: Option<u64>,
    ) -> Result<Definition, RpcError> {
        self.learn_deadline_with_progress(task, algorithm, deadline_ms)
            .map(|(definition, _)| definition)
    }

    /// [`RpcClient::learn`] returning the covering-round progress the
    /// server streamed ahead of the result — one [`LearnProgress`] per
    /// accepted clause, in covering order. On a v1 connection the server
    /// streams nothing and the progress vector is empty.
    pub fn learn_with_progress(
        &mut self,
        task: LearningTask,
        algorithm: LearnAlgorithm,
    ) -> Result<(Definition, Vec<LearnProgress>), RpcError> {
        self.learn_deadline_with_progress(task, algorithm, None)
    }

    /// [`RpcClient::learn_with_progress`] with a relative deadline.
    pub fn learn_deadline_with_progress(
        &mut self,
        task: LearningTask,
        algorithm: LearnAlgorithm,
        deadline_ms: Option<u64>,
    ) -> Result<(Definition, Vec<LearnProgress>), RpcError> {
        let handle = self.submit(Request::Learn {
            task,
            algorithm,
            deadline_ms,
        })?;
        let result = self.join(handle);
        // The terminal frame ends the stream, so whatever progress state
        // accumulated is complete (and must not leak on the error path).
        let progress = self
            .streams
            .remove(&handle.0)
            .map(|state| state.progress)
            .unwrap_or_default();
        match result? {
            Response::Learned(definition) => Ok((definition, progress)),
            other => Err(RpcError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Applies a mutation batch — the wire shape of
    /// [`castor_service::Session::apply`].
    pub fn apply(&mut self, batch: MutationBatch) -> Result<MutationSummary, RpcError> {
        match self.request(Request::Mutate(batch))? {
            Response::Mutated(summary) => Ok(summary),
            other => Err(RpcError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// The session's isolated engine-counter deltas.
    pub fn report(&mut self) -> Result<EngineReport, RpcError> {
        match self.request(Request::Report)? {
            Response::Report(report) => Ok(report),
            other => Err(RpcError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// The database's engine totals plus the serving-layer counters.
    pub fn server_report(&mut self) -> Result<(EngineReport, ServerReport), RpcError> {
        match self.request(Request::ServerReport)? {
            Response::ServerReport { engine, server } => Ok((engine, server)),
            other => Err(RpcError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// The server's full metric exposition in Prometheus text format:
    /// admission/queue counters, per-database engine counters, and the
    /// queue-wait/run-time/engine-latency histograms.
    pub fn metrics(&mut self) -> Result<String, RpcError> {
        match self.request(Request::Metrics)? {
            Response::Metrics(text) => Ok(text),
            other => Err(RpcError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// The server's recent spans as Chrome-trace JSON (load into
    /// `chrome://tracing` or Perfetto).
    pub fn trace_dump(&mut self) -> Result<String, RpcError> {
        match self.request(Request::TraceDump)? {
            Response::TraceDump(text) => Ok(text),
            other => Err(RpcError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// The client-side observability handle: `rpc.client.encode` spans and
    /// the `castor_rpc_encode_ns` / `castor_rpc_roundtrip_ns` histograms.
    pub fn obs(&self) -> &Arc<Obs> {
        &self.obs
    }

    /// Whether any request has been written on this connection since the
    /// session opened (the Hello exchange itself does not count). A retry
    /// layer uses this to classify connection failures: a failure with
    /// nothing in flight is safely retryable even for mutations.
    pub fn has_inflight(&self) -> bool {
        !self.started.is_empty() || !self.pending.is_empty()
    }
}

/// Resolves `addr` and connects, honoring the connect timeout per
/// candidate address. `TcpStream::connect_timeout` takes a single
/// `SocketAddr`, so resolution happens here.
fn connect_stream(
    addr: impl ToSocketAddrs,
    timeout: Option<Duration>,
) -> Result<TcpStream, RpcError> {
    let addrs: Vec<SocketAddr> = addr
        .to_socket_addrs()
        .map_err(|e| RpcError::Io(e.to_string()))?
        .collect();
    if addrs.is_empty() {
        return Err(RpcError::Io("address resolved to nothing".to_string()));
    }
    let mut last = None;
    for candidate in addrs {
        let attempt = match timeout {
            Some(t) => TcpStream::connect_timeout(&candidate, t),
            None => TcpStream::connect(candidate),
        };
        match attempt {
            Ok(stream) => return Ok(stream),
            Err(e) => last = Some(e),
        }
    }
    let e = last.expect("at least one candidate was tried");
    if e.kind() == std::io::ErrorKind::TimedOut || e.kind() == std::io::ErrorKind::WouldBlock {
        Err(RpcError::Timeout(e.to_string()))
    } else {
        Err(RpcError::Io(e.to_string()))
    }
}
