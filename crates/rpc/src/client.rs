//! The blocking RPC client: one TCP connection, one session.
//!
//! Requests can be *pipelined*: [`RpcClient::submit`] sends a request and
//! returns a lightweight [`RpcHandle`] immediately; [`RpcClient::join`]
//! blocks until that request's response arrives, buffering any other
//! responses that land first. The convenience methods
//! ([`RpcClient::covered_sets`], [`RpcClient::learn`], ...) are
//! submit-then-join in one call — the same shapes
//! [`castor_service::Session`] offers in-process, so callers can swap the
//! transports.

use crate::frame::{
    read_response, write_request, ErrorCode, FrameError, Request, Response, DEFAULT_MAX_FRAME_BYTES,
};
use castor_engine::{ClauseCounts, EngineReport};
use castor_learners::LearningTask;
use castor_logic::{Clause, Definition};
use castor_obs::{Histogram, Obs};
use castor_relational::{MutationBatch, MutationSummary, Tuple};
use castor_service::{LearnAlgorithm, ServerReport};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::io::BufWriter;
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Arc;

/// Why a client call failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RpcError {
    /// The socket failed or closed mid-exchange.
    Io(String),
    /// A frame or payload could not be decoded locally.
    Malformed(String),
    /// The server answered with a typed error frame.
    Remote {
        /// The server's error code.
        code: ErrorCode,
        /// The relevant admission limit, when the code carries one.
        limit: usize,
        /// The server's message.
        message: String,
    },
    /// The server answered with a response of the wrong shape.
    UnexpectedResponse(String),
}

impl RpcError {
    /// Whether this is an admission-control rejection (session cap or
    /// per-database in-flight cap).
    pub fn is_admission_rejection(&self) -> bool {
        matches!(
            self,
            RpcError::Remote {
                code: ErrorCode::Rejected | ErrorCode::SessionLimit,
                ..
            }
        )
    }

    /// Whether the server cancelled the job (session cancel or
    /// disconnect).
    pub fn is_cancelled(&self) -> bool {
        matches!(
            self,
            RpcError::Remote {
                code: ErrorCode::Cancelled,
                ..
            }
        )
    }
}

impl fmt::Display for RpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RpcError::Io(msg) => write!(f, "rpc transport failed: {msg}"),
            RpcError::Malformed(msg) => write!(f, "rpc frame malformed: {msg}"),
            RpcError::Remote { code, message, .. } => {
                write!(f, "server error ({code:?}): {message}")
            }
            RpcError::UnexpectedResponse(what) => {
                write!(f, "server sent an unexpected response: {what}")
            }
        }
    }
}

impl std::error::Error for RpcError {}

impl From<FrameError> for RpcError {
    fn from(error: FrameError) -> Self {
        match error {
            FrameError::Io(e) => RpcError::Io(e.to_string()),
            FrameError::Closed => RpcError::Io("connection closed".to_string()),
            FrameError::TooLarge { .. } | FrameError::Malformed(_) | FrameError::Version { .. } => {
                RpcError::Malformed(error.to_string())
            }
        }
    }
}

/// A pipelined request awaiting [`RpcClient::join`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use = "join the handle to read the response"]
pub struct RpcHandle(u64);

impl RpcHandle {
    /// The request id — also the trace id the server records this
    /// request's spans under (queue wait, engine evaluation, reply
    /// write), and the one the client's `rpc.client.encode` span uses.
    pub fn id(&self) -> u64 {
        self.0
    }
}

/// A blocking client bound to one database session on an
/// [`crate::RpcServer`].
#[derive(Debug)]
pub struct RpcClient {
    reader: TcpStream,
    writer: BufWriter<TcpStream>,
    next_id: u64,
    /// Responses that arrived while waiting for a different request id.
    pending: HashMap<u64, Response>,
    max_frame_bytes: usize,
    /// The client's own observability handle: `rpc.client.encode` spans
    /// plus encode/roundtrip latency histograms, recorded under the same
    /// trace ids (request ids) the server records its spans under.
    obs: Arc<Obs>,
    encode_ns: Arc<Histogram>,
    roundtrip_ns: Arc<Histogram>,
    /// Submit times of in-flight requests, for the roundtrip histogram.
    started: HashMap<u64, u64>,
}

impl RpcClient {
    /// Connects and opens a session on `database` with the server's
    /// default evaluation budget.
    pub fn connect(addr: impl ToSocketAddrs, database: &str) -> Result<RpcClient, RpcError> {
        RpcClient::connect_with(addr, database, None, DEFAULT_MAX_FRAME_BYTES)
    }

    /// [`RpcClient::connect`] with a per-session node-budget override and
    /// a frame cap (the cap applies to *received* frames; servers enforce
    /// their own).
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        database: &str,
        eval_budget: Option<usize>,
        max_frame_bytes: usize,
    ) -> Result<RpcClient, RpcError> {
        let stream = TcpStream::connect(addr).map_err(|e| RpcError::Io(e.to_string()))?;
        let _ = stream.set_nodelay(true);
        let reader = stream
            .try_clone()
            .map_err(|e| RpcError::Io(e.to_string()))?;
        let obs = Obs::enabled_default();
        let encode_ns = obs.registry().histogram(
            "castor_rpc_encode_ns",
            "Nanoseconds spent encoding and writing one request frame.",
        );
        let roundtrip_ns = obs.registry().histogram(
            "castor_rpc_roundtrip_ns",
            "Nanoseconds from request submit to its response being joined.",
        );
        let mut client = RpcClient {
            reader,
            writer: BufWriter::new(stream),
            next_id: 0,
            pending: HashMap::new(),
            max_frame_bytes,
            obs,
            encode_ns,
            roundtrip_ns,
            started: HashMap::new(),
        };
        let handle = client.submit(Request::Hello {
            database: database.to_string(),
            eval_budget,
        })?;
        match client.join(handle)? {
            Response::HelloOk => Ok(client),
            other => Err(RpcError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Sends one request, returning its handle without waiting for the
    /// response. Any number of requests may be in flight.
    ///
    /// The encode+write is recorded as an `rpc.client.encode` span under
    /// the request id — the same id the server uses as the job's trace id,
    /// so the client- and server-side spans of one request line up.
    pub fn submit(&mut self, request: Request) -> Result<RpcHandle, RpcError> {
        let id = self.next_id;
        self.next_id += 1;
        let start_ns = self.obs.now_ns();
        let timer = self.obs.timer();
        write_request(&mut self.writer, id, &request)?;
        if timer.is_live() {
            let dur_ns = timer.stop_ns(&self.encode_ns);
            self.obs
                .span_measured("rpc.client.encode", id, start_ns, dur_ns, Vec::new());
            self.started.insert(id, start_ns);
        }
        Ok(RpcHandle(id))
    }

    /// Blocks until the response for `handle` arrives (buffering other
    /// responses), then surfaces typed error frames as [`RpcError`].
    pub fn join(&mut self, handle: RpcHandle) -> Result<Response, RpcError> {
        loop {
            if let Some(response) = self.pending.remove(&handle.0) {
                if let Some(start_ns) = self.started.remove(&handle.0) {
                    self.obs.record_since(&self.roundtrip_ns, start_ns);
                }
                return match response {
                    Response::Error {
                        code,
                        limit,
                        message,
                    } => Err(RpcError::Remote {
                        code,
                        limit,
                        message,
                    }),
                    other => Ok(other),
                };
            }
            let (id, response) = read_response(&mut self.reader, self.max_frame_bytes)?;
            self.pending.insert(id, response);
        }
    }

    /// Submit-then-join for a request expecting one response shape.
    fn request(&mut self, request: Request) -> Result<Response, RpcError> {
        let handle = self.submit(request)?;
        self.join(handle)
    }

    /// Covered subsets for a batch of clauses — the wire shape of
    /// [`castor_service::Session::covered_sets`].
    pub fn covered_sets(
        &mut self,
        clauses: Vec<Clause>,
        examples: Vec<Tuple>,
    ) -> Result<Vec<HashSet<Tuple>>, RpcError> {
        match self.request(Request::Coverage { clauses, examples })? {
            Response::Covered(sets) => Ok(sets),
            other => Err(RpcError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Fused positive/negative scoring — the wire shape of
    /// [`castor_service::Session::score`].
    pub fn score(
        &mut self,
        clauses: Vec<Clause>,
        positive: Vec<Tuple>,
        negative: Vec<Tuple>,
    ) -> Result<Vec<ClauseCounts>, RpcError> {
        match self.request(Request::Score {
            clauses,
            positive,
            negative,
        })? {
            Response::Scores(counts) => Ok(counts),
            other => Err(RpcError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Runs a learner over the session's database — the wire shape of
    /// [`castor_service::Session::learn`].
    pub fn learn(
        &mut self,
        task: LearningTask,
        algorithm: LearnAlgorithm,
    ) -> Result<Definition, RpcError> {
        match self.request(Request::Learn { task, algorithm })? {
            Response::Learned(definition) => Ok(definition),
            other => Err(RpcError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Applies a mutation batch — the wire shape of
    /// [`castor_service::Session::apply`].
    pub fn apply(&mut self, batch: MutationBatch) -> Result<MutationSummary, RpcError> {
        match self.request(Request::Mutate(batch))? {
            Response::Mutated(summary) => Ok(summary),
            other => Err(RpcError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// The session's isolated engine-counter deltas.
    pub fn report(&mut self) -> Result<EngineReport, RpcError> {
        match self.request(Request::Report)? {
            Response::Report(report) => Ok(report),
            other => Err(RpcError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// The database's engine totals plus the serving-layer counters.
    pub fn server_report(&mut self) -> Result<(EngineReport, ServerReport), RpcError> {
        match self.request(Request::ServerReport)? {
            Response::ServerReport { engine, server } => Ok((engine, server)),
            other => Err(RpcError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// The server's full metric exposition in Prometheus text format:
    /// admission/queue counters, per-database engine counters, and the
    /// queue-wait/run-time/engine-latency histograms.
    pub fn metrics(&mut self) -> Result<String, RpcError> {
        match self.request(Request::Metrics)? {
            Response::Metrics(text) => Ok(text),
            other => Err(RpcError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// The server's recent spans as Chrome-trace JSON (load into
    /// `chrome://tracing` or Perfetto).
    pub fn trace_dump(&mut self) -> Result<String, RpcError> {
        match self.request(Request::TraceDump)? {
            Response::TraceDump(text) => Ok(text),
            other => Err(RpcError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// The client-side observability handle: `rpc.client.encode` spans and
    /// the `castor_rpc_encode_ns` / `castor_rpc_roundtrip_ns` histograms.
    pub fn obs(&self) -> &Arc<Obs> {
        &self.obs
    }
}
