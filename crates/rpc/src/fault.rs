//! Deterministic fault injection for the RPC transport.
//!
//! A [`FaultPlan`] describes, per accepted connection, byte-exact points
//! at which the transport misbehaves: reads that return EOF mid-frame,
//! writes torn partway through a response, sockets closed hard, and
//! one-shot read/write stalls. The server wraps every accepted stream in
//! a [`FaultStream`]; with no plan armed the wrapper is a zero-cost
//! pass-through, so production and chaos builds share one code path.
//!
//! Determinism comes from two choices:
//!
//! * plans are generated from a seed by a private xorshift generator —
//!   the same seed always produces the same fault schedule, so a failing
//!   chaos run reproduces from the seed printed in its panic message;
//! * faults trigger on cumulative **byte offsets**, not call counts —
//!   `read_exact` is free to split a frame across any number of calls
//!   without moving the point at which the fault engages, because each
//!   call is truncated at the threshold.
//!
//! Every fault that actually fires is counted in [`FaultStats`] at
//! trigger time and exported as `castor_fault_injected_total{kind=...}`,
//! so a chaos suite can assert the metric accounting matches the injected
//! schedule exactly.
//!
//! Non-blocking streams (the event-loop server runs every accepted
//! socket non-blocking) add one rule: a `WouldBlock` or zero-byte
//! outcome moves no bytes, so it must neither advance the byte accounts
//! nor consume a one-shot delay fault. Delay faults are therefore
//! *confirmed* — marked fired and counted — only by the call that
//! actually delivers bytes; speculative reads the readiness loop issues
//! between wakeups cannot burn a scheduled fault.

use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// What a single injected fault does when its byte threshold is reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The write is cut short at the threshold and the socket is shut
    /// down: the peer sees a torn frame followed by a reset/EOF.
    TearWrite,
    /// Reads return end-of-file at the threshold (the bytes up to it are
    /// delivered intact): the peer sees a clean close mid-stream.
    DropRead,
    /// One read is delayed by [`FaultAction::delay_ms`] at the threshold,
    /// then reads proceed normally (exercises client read timeouts).
    DelayRead,
    /// The socket is shut down in both directions at the read threshold
    /// and the read fails: an abrupt connection reset.
    Close,
    /// One write is delayed by [`FaultAction::delay_ms`] at the
    /// threshold, then writes proceed normally (a stalled writer thread).
    StallWrite,
}

impl FaultKind {
    /// The metric label this kind is counted under.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::TearWrite => "tear_write",
            FaultKind::DropRead => "drop_read",
            FaultKind::DelayRead => "delay_read",
            FaultKind::Close => "close",
            FaultKind::StallWrite => "stall_write",
        }
    }

    fn is_read_side(&self) -> bool {
        matches!(
            self,
            FaultKind::DropRead | FaultKind::DelayRead | FaultKind::Close
        )
    }
}

/// One scheduled fault on one connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultAction {
    /// What happens.
    pub kind: FaultKind,
    /// Cumulative bytes (read or written on this connection, per the
    /// kind's direction) after which the fault engages.
    pub after_bytes: u64,
    /// Sleep length for the delay/stall kinds; ignored by the others.
    pub delay_ms: u64,
}

/// A deterministic fault schedule, armed per accepted connection (in
/// accept order: the first connection is index 0).
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// `faults[i]` applies to the i-th accepted connection; connections
    /// past the end run clean.
    faults: Vec<Vec<FaultAction>>,
}

impl FaultPlan {
    /// An empty plan: every connection runs clean.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// A plan with an explicit fault list per connection index.
    pub fn from_schedule(faults: Vec<Vec<FaultAction>>) -> FaultPlan {
        FaultPlan { faults }
    }

    /// A seeded plan against the **first** accepted connection (the
    /// victim); later connections — reconnects, observers — run clean.
    /// The same seed always yields the same schedule: one read-side or
    /// write-side fault (or one of each), thresholds inside the first few
    /// hundred transport bytes so handshakes and early frames are hit.
    pub fn seeded(seed: u64) -> FaultPlan {
        let mut rng = SplitMix(seed);
        let kinds = [
            FaultKind::TearWrite,
            FaultKind::DropRead,
            FaultKind::DelayRead,
            FaultKind::Close,
            FaultKind::StallWrite,
        ];
        let mut victim = Vec::new();
        let primary = kinds[(rng.next() % 5) as usize];
        victim.push(FaultAction {
            kind: primary,
            after_bytes: rng.next() % 192,
            delay_ms: 1 + rng.next() % 20,
        });
        // Half the seeds add a second fault on the opposite direction, so
        // schedules cover read+write interplay too.
        if rng.next().is_multiple_of(2) {
            let opposite: Vec<FaultKind> = kinds
                .iter()
                .copied()
                .filter(|k| k.is_read_side() != primary.is_read_side())
                .collect();
            victim.push(FaultAction {
                kind: opposite[(rng.next() as usize) % opposite.len()],
                after_bytes: rng.next() % 192,
                delay_ms: 1 + rng.next() % 20,
            });
        }
        FaultPlan {
            faults: vec![victim],
        }
    }

    /// The scheduled actions for connection `index` (empty = clean).
    pub fn actions_for(&self, index: u64) -> &[FaultAction] {
        self.faults
            .get(index as usize)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Whether any connection has scheduled faults.
    pub fn is_empty(&self) -> bool {
        self.faults.iter().all(Vec::is_empty)
    }

    /// Builds the per-connection runtime state for connection `index`.
    pub(crate) fn arm(&self, index: u64, stats: &Arc<FaultStats>) -> Option<Arc<ConnFaultState>> {
        let actions = self.actions_for(index);
        if actions.is_empty() {
            return None;
        }
        Some(Arc::new(ConnFaultState {
            inner: Mutex::new(ConnFaultInner {
                actions: actions.iter().map(|&action| Armed::new(action)).collect(),
                bytes_read: 0,
                bytes_written: 0,
                write_broken: false,
            }),
            stats: Arc::clone(stats),
        }))
    }
}

/// How often each fault kind actually fired, counted at trigger time —
/// scheduled faults a connection never reached (it died earlier) are not
/// counted, so these totals are the ground truth the metric exposition
/// must match.
#[derive(Debug, Default)]
pub struct FaultStats {
    tear_write: AtomicU64,
    drop_read: AtomicU64,
    delay_read: AtomicU64,
    close: AtomicU64,
    stall_write: AtomicU64,
}

impl FaultStats {
    fn counter(&self, kind: FaultKind) -> &AtomicU64 {
        match kind {
            FaultKind::TearWrite => &self.tear_write,
            FaultKind::DropRead => &self.drop_read,
            FaultKind::DelayRead => &self.delay_read,
            FaultKind::Close => &self.close,
            FaultKind::StallWrite => &self.stall_write,
        }
    }

    fn record(&self, kind: FaultKind) {
        self.counter(kind).fetch_add(1, Ordering::Relaxed);
    }

    /// The fire count for one kind.
    pub fn fired(&self, kind: FaultKind) -> u64 {
        self.counter(kind).load(Ordering::Relaxed)
    }

    /// `(label, count)` for every kind, including zero counts (the
    /// exposition renders all five series unconditionally, so scrapes are
    /// shape-stable across runs).
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        [
            FaultKind::TearWrite,
            FaultKind::DropRead,
            FaultKind::DelayRead,
            FaultKind::Close,
            FaultKind::StallWrite,
        ]
        .into_iter()
        .map(|kind| (kind.label(), self.fired(kind)))
        .collect()
    }

    /// Total faults fired across all kinds.
    pub fn total(&self) -> u64 {
        self.snapshot().into_iter().map(|(_, n)| n).sum()
    }
}

/// Registers the fault counters on an observability registry as a
/// `castor_fault_injected_total{kind=...}` counter family.
pub fn register_fault_collector(obs: &castor_obs::Obs, stats: Arc<FaultStats>) {
    struct FaultCollector(Arc<FaultStats>);
    impl castor_obs::Collect for FaultCollector {
        fn collect(&self, exp: &mut castor_obs::Exposition) {
            for (label, count) in self.0.snapshot() {
                exp.counter(
                    "castor_fault_injected_total",
                    "Transport faults injected by the chaos plan, by kind.",
                    &[("kind", label)],
                    count,
                );
            }
        }
    }
    obs.registry()
        .register_collector(Box::new(FaultCollector(stats)));
}

/// One action plus its one-shot trigger state.
#[derive(Debug)]
struct Armed {
    action: FaultAction,
    fired: bool,
}

impl Armed {
    fn new(action: FaultAction) -> Armed {
        Armed {
            action,
            fired: false,
        }
    }
}

#[derive(Debug)]
struct ConnFaultInner {
    actions: Vec<Armed>,
    bytes_read: u64,
    bytes_written: u64,
    /// Set once a TearWrite fired: every later write fails fast.
    write_broken: bool,
}

/// Shared fault state of one connection (the reader and writer halves of
/// the stream both point here, so byte accounting is connection-global).
#[derive(Debug)]
pub(crate) struct ConnFaultState {
    inner: Mutex<ConnFaultInner>,
    stats: Arc<FaultStats>,
}

/// What the lock-holding planner tells the unlocked I/O path to do.
enum ReadStep {
    /// Read up to this many bytes normally (capped so the next threshold
    /// lands exactly on a call boundary).
    Pass(usize),
    /// Sleep first (a DelayRead is pending), then read up to the cap.
    /// The fault stays armed until the I/O path *confirms* it with a
    /// byte-moving read (`action` indexes the armed slot), so
    /// `WouldBlock`/zero-byte attempts on non-blocking streams neither
    /// consume the one-shot nor count it as fired.
    DelayThen {
        delay: Duration,
        cap: usize,
        action: usize,
    },
    /// Deliver EOF (a DropRead fired).
    Eof,
    /// Shut the socket down and fail the read (a Close fired).
    Close,
}

enum WriteStep {
    Pass(usize),
    /// Same deferred-confirmation contract as [`ReadStep::DelayThen`].
    DelayThen {
        delay: Duration,
        cap: usize,
        action: usize,
    },
    /// Shut the socket down and fail the write (a TearWrite fired);
    /// later writes fail with `BrokenPipe`.
    Tear,
    Broken,
}

impl ConnFaultState {
    /// Decides what a read of `want` bytes should do. Reads are capped so
    /// the next threshold lands exactly on a call boundary; the account
    /// advances by the bytes *actually* read (see
    /// [`ConnFaultState::account_read`]) so short reads cannot smear the
    /// trigger point. Each side's account is only touched by its own
    /// thread, so plan-then-account is not a race.
    fn plan_read(&self, want: usize) -> ReadStep {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let at = inner.bytes_read;
        let mut allowed = want as u64;
        let mut delay = None;
        for (idx, armed) in inner.actions.iter_mut().enumerate() {
            if armed.fired || !armed.action.kind.is_read_side() {
                continue;
            }
            let threshold = armed.action.after_bytes;
            if at >= threshold {
                match armed.action.kind {
                    FaultKind::DropRead => {
                        armed.fired = true;
                        self.stats.record(armed.action.kind);
                        return ReadStep::Eof;
                    }
                    FaultKind::Close => {
                        armed.fired = true;
                        self.stats.record(armed.action.kind);
                        return ReadStep::Close;
                    }
                    // Delays stay armed: confirmed only by a byte-moving
                    // read, so a `WouldBlock` attempt cannot burn them.
                    FaultKind::DelayRead => {
                        delay = Some((idx, Duration::from_millis(armed.action.delay_ms)));
                    }
                    _ => unreachable!("read-side kinds only"),
                }
            } else {
                // Not there yet: cap this read so the threshold is hit on
                // a call boundary, regardless of how the caller chunks.
                allowed = allowed.min(threshold - at);
            }
        }
        match delay {
            Some((action, delay)) => ReadStep::DelayThen {
                delay,
                cap: allowed as usize,
                action,
            },
            None => ReadStep::Pass(allowed as usize),
        }
    }

    fn account_read(&self, n: usize) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.bytes_read += n as u64;
    }

    fn plan_write(&self, want: usize) -> WriteStep {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.write_broken {
            return WriteStep::Broken;
        }
        let at = inner.bytes_written;
        let mut allowed = want as u64;
        let mut delay = None;
        for (idx, armed) in inner.actions.iter_mut().enumerate() {
            if armed.fired || armed.action.kind.is_read_side() {
                continue;
            }
            let threshold = armed.action.after_bytes;
            if at >= threshold {
                match armed.action.kind {
                    FaultKind::TearWrite => {
                        armed.fired = true;
                        self.stats.record(armed.action.kind);
                        inner.write_broken = true;
                        return WriteStep::Tear;
                    }
                    // Deferred confirmation, same as DelayRead.
                    FaultKind::StallWrite => {
                        delay = Some((idx, Duration::from_millis(armed.action.delay_ms)));
                    }
                    _ => unreachable!("write-side kinds only"),
                }
            } else {
                allowed = allowed.min(threshold - at);
            }
        }
        match delay {
            Some((action, delay)) => WriteStep::DelayThen {
                delay,
                cap: allowed as usize,
                action,
            },
            None => WriteStep::Pass(allowed as usize),
        }
    }

    fn account_write(&self, n: usize) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.bytes_written += n as u64;
    }

    /// Marks a pending delay fault fired and counts it — called by the
    /// I/O path only after the delayed call actually moved bytes.
    fn confirm_delay(&self, action: usize) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let armed = &mut inner.actions[action];
        if !armed.fired {
            armed.fired = true;
            self.stats.record(armed.action.kind);
        }
    }
}

/// A `TcpStream` with an optional fault schedule in front of it. With no
/// schedule (`state: None`) every call forwards directly — the clean path
/// adds one `Option` check, nothing else.
#[derive(Debug)]
pub struct FaultStream {
    inner: TcpStream,
    state: Option<Arc<ConnFaultState>>,
}

impl FaultStream {
    pub(crate) fn new(inner: TcpStream, state: Option<Arc<ConnFaultState>>) -> FaultStream {
        FaultStream { inner, state }
    }

    /// Clones the stream handle; both halves share the same fault state,
    /// so byte thresholds apply to the connection, not the half.
    pub fn try_clone(&self) -> std::io::Result<FaultStream> {
        Ok(FaultStream {
            inner: self.inner.try_clone()?,
            state: self.state.clone(),
        })
    }

    /// Switches the underlying socket's blocking mode (the event-loop
    /// server runs every accepted stream non-blocking).
    pub fn set_nonblocking(&self, nonblocking: bool) -> std::io::Result<()> {
        self.inner.set_nonblocking(nonblocking)
    }

    fn shutdown_both(&self) {
        let _ = self.inner.shutdown(Shutdown::Both);
    }
}

#[cfg(unix)]
impl std::os::fd::AsRawFd for FaultStream {
    fn as_raw_fd(&self) -> std::os::fd::RawFd {
        self.inner.as_raw_fd()
    }
}

impl Read for FaultStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let Some(state) = &self.state else {
            return self.inner.read(buf);
        };
        if buf.is_empty() {
            return Ok(0);
        }
        match state.plan_read(buf.len()) {
            ReadStep::Pass(cap) => {
                let take = cap.max(1).min(buf.len());
                let n = self.inner.read(&mut buf[..take])?;
                state.account_read(n);
                Ok(n)
            }
            ReadStep::DelayThen { delay, cap, action } => {
                std::thread::sleep(delay);
                let take = cap.max(1).min(buf.len());
                let n = self.inner.read(&mut buf[..take])?;
                // `WouldBlock` propagated above without confirming; a
                // zero-byte EOF likewise leaves the fault armed.
                if n > 0 {
                    state.confirm_delay(action);
                    state.account_read(n);
                }
                Ok(n)
            }
            ReadStep::Eof => {
                self.shutdown_both();
                Ok(0)
            }
            ReadStep::Close => {
                self.shutdown_both();
                Err(std::io::Error::new(
                    std::io::ErrorKind::ConnectionReset,
                    "fault injection: connection closed",
                ))
            }
        }
    }
}

impl Write for FaultStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let Some(state) = &self.state else {
            return self.inner.write(buf);
        };
        if buf.is_empty() {
            return Ok(0);
        }
        match state.plan_write(buf.len()) {
            WriteStep::Pass(cap) => {
                let n = self.inner.write(&buf[..cap.max(1).min(buf.len())])?;
                state.account_write(n);
                Ok(n)
            }
            WriteStep::DelayThen { delay, cap, action } => {
                std::thread::sleep(delay);
                let n = self.inner.write(&buf[..cap.max(1).min(buf.len())])?;
                if n > 0 {
                    state.confirm_delay(action);
                    state.account_write(n);
                }
                Ok(n)
            }
            WriteStep::Tear => {
                self.shutdown_both();
                Err(std::io::Error::new(
                    std::io::ErrorKind::BrokenPipe,
                    "fault injection: write torn",
                ))
            }
            WriteStep::Broken => Err(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "fault injection: connection torn earlier",
            )),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// SplitMix64: tiny, seed-robust (seed 0 included), and plenty for
/// schedule generation. Private so plans can only be built through the
/// seeded constructor — keeping "same seed, same schedule" an invariant
/// rather than a convention.
struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_reproducible_and_varied() {
        for seed in 0..64 {
            assert_eq!(
                FaultPlan::seeded(seed).actions_for(0),
                FaultPlan::seeded(seed).actions_for(0),
                "seed {seed} must reproduce"
            );
            assert!(!FaultPlan::seeded(seed).is_empty());
            assert!(FaultPlan::seeded(seed).actions_for(1).is_empty());
        }
        // Different seeds must not collapse onto one schedule.
        let distinct: std::collections::HashSet<String> = (0..64)
            .map(|seed| format!("{:?}", FaultPlan::seeded(seed).actions_for(0)))
            .collect();
        assert!(
            distinct.len() > 8,
            "only {} distinct schedules",
            distinct.len()
        );
    }

    #[test]
    fn drop_read_is_byte_exact_regardless_of_chunking() {
        // A loopback socket carrying 64 bytes; the fault cuts reads at 10.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let sender = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&[7u8; 64]).unwrap();
        });
        let (accepted, _) = listener.accept().unwrap();
        let stats = Arc::new(FaultStats::default());
        let plan = FaultPlan::from_schedule(vec![vec![FaultAction {
            kind: FaultKind::DropRead,
            after_bytes: 10,
            delay_ms: 0,
        }]]);
        let state = plan.arm(0, &stats);
        let mut stream = FaultStream::new(accepted, state);
        for chunk in [3usize, 4, 2] {
            let mut buf = vec![0u8; chunk];
            stream.read_exact(&mut buf).unwrap();
        }
        // 9 bytes delivered; the 10th read crosses the threshold next call.
        let mut rest = Vec::new();
        let n = stream.read_to_end(&mut rest).unwrap();
        assert_eq!(n, 1, "exactly one byte remains before the EOF");
        assert_eq!(stats.fired(FaultKind::DropRead), 1);
        sender.join().unwrap();
    }

    #[test]
    fn tear_write_breaks_the_pipe_permanently() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (accepted, _) = listener.accept().unwrap();
        drop(client);
        let stats = Arc::new(FaultStats::default());
        let plan = FaultPlan::from_schedule(vec![vec![FaultAction {
            kind: FaultKind::TearWrite,
            after_bytes: 5,
            delay_ms: 0,
        }]]);
        let mut stream = FaultStream::new(accepted, plan.arm(0, &stats));
        assert_eq!(stream.write(&[1u8; 16]).unwrap(), 5, "capped at threshold");
        assert!(stream.write(&[1u8; 16]).is_err(), "tear fires at the cap");
        assert!(stream.write(&[1u8; 1]).is_err(), "pipe stays broken");
        assert_eq!(stats.fired(FaultKind::TearWrite), 1);
    }

    #[test]
    fn delay_faults_ignore_would_block_attempts_on_nonblocking_streams() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (accepted, _) = listener.accept().unwrap();
        let stats = Arc::new(FaultStats::default());
        let plan = FaultPlan::from_schedule(vec![vec![FaultAction {
            kind: FaultKind::DelayRead,
            after_bytes: 0,
            delay_ms: 1,
        }]]);
        let mut stream = FaultStream::new(accepted, plan.arm(0, &stats));
        stream.set_nonblocking(true).unwrap();

        // Speculative reads with nothing buffered: `WouldBlock` outcomes
        // must neither consume the one-shot delay nor count it as fired.
        for _ in 0..3 {
            let mut buf = [0u8; 8];
            let err = stream.read(&mut buf).unwrap_err();
            assert_eq!(err.kind(), std::io::ErrorKind::WouldBlock);
        }
        assert_eq!(
            stats.fired(FaultKind::DelayRead),
            0,
            "WouldBlock attempts must not burn the fault"
        );

        // The first byte-moving read confirms the delay exactly once.
        client.write_all(b"payload").unwrap();
        let mut buf = [0u8; 8];
        let n = loop {
            match stream.read(&mut buf) {
                Ok(n) => break n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) => panic!("unexpected read error: {e}"),
            }
        };
        assert!(n > 0, "bytes must flow once buffered");
        assert_eq!(stats.fired(FaultKind::DelayRead), 1);

        // Later reads run clean: the one-shot is spent.
        client.write_all(b"more").unwrap();
        stream.set_nonblocking(false).unwrap();
        let mut rest = [0u8; 4];
        stream.read_exact(&mut rest).unwrap();
        assert_eq!(stats.fired(FaultKind::DelayRead), 1);
    }

    #[test]
    fn clean_streams_pass_bytes_through_untouched() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let sender = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(b"hello").unwrap();
        });
        let (accepted, _) = listener.accept().unwrap();
        let mut stream = FaultStream::new(accepted, None);
        let mut buf = [0u8; 5];
        stream.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hello");
        sender.join().unwrap();
    }
}
