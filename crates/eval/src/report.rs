//! Plain-text rendering of experiment results in the shape of the paper's
//! tables (algorithm × schema variant, reporting precision / recall / time).

use crate::experiment::ExperimentRow;
use std::collections::BTreeSet;

/// Renders rows grouped by algorithm with one column per schema variant,
/// mirroring the layout of Tables 9–11.
pub fn render_table(title: &str, rows: &[ExperimentRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    if rows.is_empty() {
        out.push_str("(no rows)\n");
        return out;
    }
    let schemas: Vec<String> = {
        let mut seen = BTreeSet::new();
        let mut ordered = Vec::new();
        for r in rows {
            if seen.insert(r.schema.clone()) {
                ordered.push(r.schema.clone());
            }
        }
        ordered
    };
    let algorithms: Vec<String> = {
        let mut seen = BTreeSet::new();
        let mut ordered = Vec::new();
        for r in rows {
            if seen.insert(r.algorithm.clone()) {
                ordered.push(r.algorithm.clone());
            }
        }
        ordered
    };

    out.push_str(&format!("{:<24} {:<12}", "Algorithm", "Metric"));
    for s in &schemas {
        out.push_str(&format!(" {s:>16}"));
    }
    out.push('\n');

    for algorithm in &algorithms {
        for metric in ["Precision", "Recall", "Time (s)"] {
            out.push_str(&format!("{algorithm:<24} {metric:<12}"));
            for schema in &schemas {
                let cell = rows
                    .iter()
                    .find(|r| &r.algorithm == algorithm && &r.schema == schema)
                    .map(|r| match metric {
                        "Precision" => format!("{:.2}", r.precision()),
                        "Recall" => format!("{:.2}", r.recall()),
                        _ => format!("{:.2}", r.learning_time.as_secs_f64()),
                    })
                    .unwrap_or_else(|| "-".into());
                out.push_str(&format!(" {cell:>16}"));
            }
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::EvaluationResult;
    use castor_logic::Definition;
    use std::time::Duration;

    fn row(algorithm: &str, schema: &str, tp: usize, fp: usize) -> ExperimentRow {
        ExperimentRow {
            algorithm: algorithm.into(),
            family: "demo".into(),
            schema: schema.into(),
            evaluation: EvaluationResult {
                true_positives: tp,
                false_positives: fp,
                false_negatives: 1,
            },
            learning_time: Duration::from_millis(1500),
            sample_definition: Definition::empty("t"),
        }
    }

    #[test]
    fn table_has_one_column_per_schema_and_three_rows_per_algorithm() {
        let rows = vec![
            row("Castor", "Original", 9, 0),
            row("Castor", "4NF", 9, 0),
            row("FOIL", "Original", 5, 3),
            row("FOIL", "4NF", 7, 1),
        ];
        let text = render_table("Table 10: UW-CSE", &rows);
        assert!(text.contains("Table 10"));
        assert!(text.contains("Original"));
        assert!(text.contains("4NF"));
        // 2 algorithms × 3 metric lines + header + title.
        assert_eq!(text.lines().count(), 2 + 2 * 3);
        assert!(text.contains("0.90")); // Castor precision 9/10
    }

    #[test]
    fn missing_cells_render_dashes() {
        let rows = vec![row("Castor", "Original", 1, 0)];
        let text = render_table("t", &rows);
        assert!(!text.contains('-') || text.contains("Original"));
    }

    #[test]
    fn empty_rows_render_placeholder() {
        assert!(render_table("t", &[]).contains("no rows"));
    }
}
