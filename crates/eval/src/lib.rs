//! # castor-eval
//!
//! Evaluation harness for the Castor reproduction: precision/recall
//! metrics, cross-validated experiment runs over every schema variant of a
//! dataset family, schema-independence checking, and plain-text rendering
//! of the paper's result tables.

pub mod cross_variant;
pub mod experiment;
pub mod metrics;
pub mod report;

pub use cross_variant::{
    run_uwcse_cross_variant_coverage, run_uwcse_independent_coverage, CrossVariantRun, Transport,
};
pub use experiment::{run_algorithm_over_family, AlgorithmKind, ExperimentRow};
pub use metrics::{
    evaluate_definition, evaluate_definition_with_engine, evaluate_definition_with_session,
    schema_independent, EvaluationResult,
};
pub use report::render_table;
