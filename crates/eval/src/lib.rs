//! # castor-eval
//!
//! Evaluation harness for the Castor reproduction: precision/recall
//! metrics, cross-validated experiment runs over every schema variant of a
//! dataset family, schema-independence checking, and plain-text rendering
//! of the paper's result tables.

pub mod experiment;
pub mod metrics;
pub mod report;

pub use experiment::{run_algorithm_over_family, AlgorithmKind, ExperimentRow};
pub use metrics::{
    evaluate_definition, evaluate_definition_with_engine, evaluate_definition_with_session,
    schema_independent, EvaluationResult,
};
pub use report::render_table;
