//! Precision and recall of learned definitions (Section 9.1.3).

use castor_engine::Engine;
use castor_logic::{covers_example, Clause, Definition};
use castor_relational::{DatabaseInstance, Tuple};

/// Precision/recall of a definition over a test split.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EvaluationResult {
    /// True positives: covered test positives.
    pub true_positives: usize,
    /// Covered test negatives.
    pub false_positives: usize,
    /// Uncovered test positives.
    pub false_negatives: usize,
}

impl EvaluationResult {
    /// Proportion of covered examples that are true positives. An empty
    /// definition (covering nothing) has precision 0.
    pub fn precision(&self) -> f64 {
        let covered = self.true_positives + self.false_positives;
        if covered == 0 {
            0.0
        } else {
            self.true_positives as f64 / covered as f64
        }
    }

    /// Proportion of test positives covered.
    pub fn recall(&self) -> f64 {
        let positives = self.true_positives + self.false_negatives;
        if positives == 0 {
            0.0
        } else {
            self.true_positives as f64 / positives as f64
        }
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Accumulates another fold's counts (micro-averaging across folds).
    pub fn accumulate(&mut self, other: &EvaluationResult) {
        self.true_positives += other.true_positives;
        self.false_positives += other.false_positives;
        self.false_negatives += other.false_negatives;
    }
}

/// The transport-independent core of definition evaluation: run one
/// batched coverage job over the concatenated test splits through
/// `covered_sets`, then classify. Both the in-process session path and
/// the RPC client path delegate here, so their scoring arithmetic cannot
/// diverge.
fn evaluate_definition_via(
    definition: &Definition,
    test_positive: &[Tuple],
    test_negative: &[Tuple],
    covered_sets: impl FnOnce(Vec<Clause>, Vec<Tuple>) -> Vec<std::collections::HashSet<Tuple>>,
) -> EvaluationResult {
    if definition.clauses.is_empty() {
        return EvaluationResult {
            true_positives: 0,
            false_positives: 0,
            false_negatives: test_positive.len(),
        };
    }
    let mut examples: Vec<Tuple> = Vec::with_capacity(test_positive.len() + test_negative.len());
    examples.extend_from_slice(test_positive);
    examples.extend_from_slice(test_negative);
    let sets = covered_sets(definition.clauses.clone(), examples);
    let covered_by_any: std::collections::HashSet<&Tuple> =
        sets.iter().flat_map(|set| set.iter()).collect();
    let true_positives = test_positive
        .iter()
        .filter(|e| covered_by_any.contains(e))
        .count();
    let false_positives = test_negative
        .iter()
        .filter(|e| covered_by_any.contains(e))
        .count();
    EvaluationResult {
        true_positives,
        false_positives,
        false_negatives: test_positive.len() - true_positives,
    }
}

/// Evaluates a learned definition through a serving-layer session: the
/// definition's clauses and both test splits go to the session's database
/// queue as one batched coverage job, so fold evaluation shares the
/// engine's memoized coverage and compiled plans with the learner run that
/// produced the definition.
pub fn evaluate_definition_with_session(
    session: &castor_service::Session,
    definition: &Definition,
    test_positive: &[Tuple],
    test_negative: &[Tuple],
) -> EvaluationResult {
    evaluate_definition_via(
        definition,
        test_positive,
        test_negative,
        |clauses, examples| {
            session
                .covered_sets(clauses, examples)
                .expect("evaluation sessions are never cancelled")
        },
    )
}

/// Evaluates a learned definition over a live RPC connection — the wire
/// counterpart of [`evaluate_definition_with_session`]: one batched
/// coverage job travels the socket and the covered sets come back framed.
/// Results are bit-identical to the in-process path (the server executes
/// the same `CoverageJob`).
pub fn evaluate_definition_with_client(
    client: &mut castor_rpc::RpcClient,
    definition: &Definition,
    test_positive: &[Tuple],
    test_negative: &[Tuple],
) -> EvaluationResult {
    evaluate_definition_via(
        definition,
        test_positive,
        test_negative,
        |clauses, examples| {
            client
                .covered_sets(clauses, examples)
                .expect("evaluation connections are never cancelled")
        },
    )
}

/// Evaluates a learned definition through a cluster router — the sharded
/// counterpart of [`evaluate_definition_with_client`]: the router sends
/// the batched coverage job to whichever member currently owns the
/// database. Same `CoverageJob` on the owning member, same results.
pub fn evaluate_definition_with_cluster(
    session: &castor_cluster::ClusterSession<'_>,
    definition: &Definition,
    test_positive: &[Tuple],
    test_negative: &[Tuple],
) -> EvaluationResult {
    evaluate_definition_via(
        definition,
        test_positive,
        test_negative,
        |clauses, examples| {
            session
                .covered_sets(clauses, examples)
                .expect("evaluation routes are never cancelled")
        },
    )
}

/// Evaluates a learned definition through a shared evaluation engine
/// (compiled plans + memoized coverage), so repeated evaluations of
/// overlapping definitions across folds reuse cached results.
pub fn evaluate_definition_with_engine(
    engine: &Engine,
    definition: &Definition,
    test_positive: &[Tuple],
    test_negative: &[Tuple],
) -> EvaluationResult {
    let covers = |e: &Tuple| definition.clauses.iter().any(|c| engine.covers(c, e));
    let true_positives = test_positive.iter().filter(|e| covers(e)).count();
    let false_positives = test_negative.iter().filter(|e| covers(e)).count();
    EvaluationResult {
        true_positives,
        false_positives,
        false_negatives: test_positive.len() - true_positives,
    }
}

/// Evaluates a learned definition on held-out positive and negative
/// examples relative to the background database (uncached reference path).
pub fn evaluate_definition(
    definition: &Definition,
    db: &DatabaseInstance,
    test_positive: &[Tuple],
    test_negative: &[Tuple],
) -> EvaluationResult {
    let covers = |e: &Tuple| definition.clauses.iter().any(|c| covers_example(c, db, e));
    let true_positives = test_positive.iter().filter(|e| covers(e)).count();
    let false_positives = test_negative.iter().filter(|e| covers(e)).count();
    EvaluationResult {
        true_positives,
        false_positives,
        false_negatives: test_positive.len() - true_positives,
    }
}

/// Whether a set of per-variant results is schema independent in the sense
/// used by the paper's tables: equal precision and recall (within a small
/// tolerance) across every schema variant.
pub fn schema_independent(results: &[EvaluationResult], tolerance: f64) -> bool {
    let Some(first) = results.first() else {
        return true;
    };
    results.iter().all(|r| {
        (r.precision() - first.precision()).abs() <= tolerance
            && (r.recall() - first.recall()).abs() <= tolerance
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use castor_logic::{Atom, Clause};
    use castor_relational::{RelationSymbol, Schema};

    fn db() -> DatabaseInstance {
        let mut schema = Schema::new("t");
        schema.add_relation(RelationSymbol::new("p", &["x"]));
        let mut db = DatabaseInstance::empty(&schema);
        for v in ["a", "b", "c"] {
            db.insert("p", Tuple::from_strs(&[v])).unwrap();
        }
        db
    }

    fn p_definition() -> Definition {
        Definition::new(
            "t",
            vec![Clause::new(
                Atom::vars("t", &["x"]),
                vec![Atom::vars("p", &["x"])],
            )],
        )
    }

    #[test]
    fn precision_recall_computation() {
        let db = db();
        let result = evaluate_definition(
            &p_definition(),
            &db,
            &[Tuple::from_strs(&["a"]), Tuple::from_strs(&["zz"])],
            &[Tuple::from_strs(&["b"]), Tuple::from_strs(&["yy"])],
        );
        assert_eq!(result.true_positives, 1);
        assert_eq!(result.false_positives, 1);
        assert_eq!(result.false_negatives, 1);
        assert!((result.precision() - 0.5).abs() < 1e-9);
        assert!((result.recall() - 0.5).abs() < 1e-9);
        assert!((result.f1() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn engine_evaluation_matches_reference() {
        let db = db();
        let engine = Engine::new(&db, castor_engine::EngineConfig::default());
        let pos = [Tuple::from_strs(&["a"]), Tuple::from_strs(&["zz"])];
        let neg = [Tuple::from_strs(&["b"]), Tuple::from_strs(&["yy"])];
        assert_eq!(
            evaluate_definition_with_engine(&engine, &p_definition(), &pos, &neg),
            evaluate_definition(&p_definition(), &db, &pos, &neg)
        );
    }

    #[test]
    fn session_evaluation_matches_reference() {
        let db = db();
        let server = castor_service::Server::new(castor_service::ServerConfig::default());
        server
            .register("t", std::sync::Arc::new(db.clone()))
            .unwrap();
        let session = server.session("t").unwrap();
        let pos = [Tuple::from_strs(&["a"]), Tuple::from_strs(&["zz"])];
        let neg = [Tuple::from_strs(&["b"]), Tuple::from_strs(&["yy"])];
        assert_eq!(
            evaluate_definition_with_session(&session, &p_definition(), &pos, &neg),
            evaluate_definition(&p_definition(), &db, &pos, &neg)
        );
        // Empty definitions never submit a job.
        assert_eq!(
            evaluate_definition_with_session(&session, &Definition::empty("t"), &pos, &neg),
            evaluate_definition(&Definition::empty("t"), &db, &pos, &neg)
        );
    }

    #[test]
    fn empty_definition_scores_zero() {
        let db = db();
        let result = evaluate_definition(
            &Definition::empty("t"),
            &db,
            &[Tuple::from_strs(&["a"])],
            &[Tuple::from_strs(&["b"])],
        );
        assert_eq!(result.precision(), 0.0);
        assert_eq!(result.recall(), 0.0);
        assert_eq!(result.f1(), 0.0);
    }

    #[test]
    fn accumulation_micro_averages() {
        let mut total = EvaluationResult::default();
        total.accumulate(&EvaluationResult {
            true_positives: 3,
            false_positives: 1,
            false_negatives: 0,
        });
        total.accumulate(&EvaluationResult {
            true_positives: 1,
            false_positives: 1,
            false_negatives: 2,
        });
        assert_eq!(total.true_positives, 4);
        assert!((total.precision() - 4.0 / 6.0).abs() < 1e-9);
        assert!((total.recall() - 4.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn schema_independence_check() {
        let same = vec![
            EvaluationResult {
                true_positives: 5,
                false_positives: 1,
                false_negatives: 1,
            };
            3
        ];
        assert!(schema_independent(&same, 1e-9));
        let mut different = same.clone();
        different[2].false_positives = 4;
        assert!(!schema_independent(&different, 1e-9));
        assert!(schema_independent(&[], 1e-9));
    }
}
