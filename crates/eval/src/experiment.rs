//! Cross-validated experiment runs over the schema variants of a dataset
//! family, producing the rows of the paper's result tables.

use crate::metrics::{evaluate_definition_with_engine, EvaluationResult};
use castor_core::{Castor, CastorConfig};
use castor_datasets::{cross_validation_folds, DatasetVariant, SchemaFamily};
use castor_engine::Engine;
use castor_learners::{Foil, Golem, LearnerParams, ProGolem, Progol};
use castor_logic::Definition;
use std::time::{Duration, Instant};

/// The algorithms compared in the paper's experiments.
#[derive(Debug, Clone, PartialEq)]
pub enum AlgorithmKind {
    /// FOIL (greedy top-down, unrestricted hypothesis space beyond
    /// `clauselength`).
    Foil,
    /// Aleph emulating FOIL: greedy, bottom-clause bounded (the paper's
    /// "Aleph-FOIL"); the payload is the `clauselength` parameter.
    AlephFoil(usize),
    /// Aleph in its default Progol mode (the paper's "Aleph-Progol"); the
    /// payload is the `clauselength` parameter.
    AlephProgol(usize),
    /// Golem (rlgg-based bottom-up).
    Golem,
    /// ProGolem (ARMG-based bottom-up).
    ProGolem,
    /// Castor with the given configuration.
    Castor(CastorConfig),
}

impl AlgorithmKind {
    /// Display name used in the result tables.
    pub fn name(&self) -> String {
        match self {
            AlgorithmKind::Foil => "FOIL".into(),
            AlgorithmKind::AlephFoil(cl) => format!("Aleph-FOIL(cl={cl})"),
            AlgorithmKind::AlephProgol(cl) => format!("Aleph-Progol(cl={cl})"),
            AlgorithmKind::Golem => "Golem".into(),
            AlgorithmKind::ProGolem => "ProGolem".into(),
            AlgorithmKind::Castor(config) => {
                if config.use_general_inds {
                    "Castor(general INDs)".into()
                } else {
                    "Castor".into()
                }
            }
        }
    }
}

/// One row of a results table: an algorithm evaluated on one schema variant.
#[derive(Debug, Clone)]
pub struct ExperimentRow {
    /// Algorithm name.
    pub algorithm: String,
    /// Dataset family name.
    pub family: String,
    /// Schema variant name.
    pub schema: String,
    /// Micro-averaged evaluation over all folds.
    pub evaluation: EvaluationResult,
    /// Total learning time across folds.
    pub learning_time: Duration,
    /// The definition learned on the first fold (for qualitative reports).
    pub sample_definition: Definition,
}

impl ExperimentRow {
    /// Precision shortcut.
    pub fn precision(&self) -> f64 {
        self.evaluation.precision()
    }

    /// Recall shortcut.
    pub fn recall(&self) -> f64 {
        self.evaluation.recall()
    }
}

fn params_for(variant: &DatasetVariant, base: &LearnerParams) -> LearnerParams {
    LearnerParams {
        constant_positions: variant.constant_positions.clone(),
        ..base.clone()
    }
}

/// Runs one algorithm on one variant with `folds`-fold cross validation.
pub fn run_algorithm_on_variant(
    algorithm: &AlgorithmKind,
    variant: &DatasetVariant,
    base_params: &LearnerParams,
    folds: usize,
) -> ExperimentRow {
    let mut evaluation = EvaluationResult::default();
    let mut total_time = Duration::ZERO;
    let mut sample_definition = Definition::empty(variant.task.target.clone());
    // One evaluation engine per variant: its coverage cache and compiled
    // plans are shared across every fold of the run, and test-split
    // evaluation reuses results the learner already computed. The variant's
    // instance is `Arc`-shared into the engine — no deep copy.
    let engine = Engine::from_arc(
        std::sync::Arc::clone(&variant.db),
        params_for(variant, base_params).engine_config(),
    );

    for (i, fold) in cross_validation_folds(&variant.task, folds)
        .iter()
        .enumerate()
    {
        let params = params_for(variant, base_params);
        let start = Instant::now();
        let definition = match algorithm {
            AlgorithmKind::Foil => {
                let mut params = params.clone();
                params.allow_constants = true;
                Foil::new().learn_with_engine(&engine, &fold.train, &params)
            }
            AlgorithmKind::AlephFoil(clause_length) => {
                let mut params = params.clone();
                params.clause_length = *clause_length;
                params.beam_width = 1; // greedy (openlist = 1)
                Progol::new().learn_with_engine(&engine, &fold.train, &params)
            }
            AlgorithmKind::AlephProgol(clause_length) => {
                let mut params = params.clone();
                params.clause_length = *clause_length;
                params.beam_width = params.beam_width.max(3);
                Progol::new().learn_with_engine(&engine, &fold.train, &params)
            }
            AlgorithmKind::Golem => Golem::new().learn_with_engine(&engine, &fold.train, &params),
            AlgorithmKind::ProGolem => {
                ProGolem::new().learn_with_engine(&engine, &fold.train, &params)
            }
            AlgorithmKind::Castor(config) => {
                let mut config = config.clone();
                config.params = params.clone();
                config.params.threads = config.params.threads.max(base_params.threads);
                Castor::new(config)
                    .learn_shared(&variant.db, &fold.train)
                    .definition
            }
        };
        total_time += start.elapsed();
        let fold_eval = evaluate_definition_with_engine(
            &engine,
            &definition,
            &fold.test_positive,
            &fold.test_negative,
        );
        evaluation.accumulate(&fold_eval);
        if i == 0 {
            sample_definition = definition;
        }
    }

    ExperimentRow {
        algorithm: algorithm.name(),
        family: String::new(),
        schema: variant.name.clone(),
        evaluation,
        learning_time: total_time,
        sample_definition,
    }
}

/// Runs one algorithm across every schema variant of a family.
pub fn run_algorithm_over_family(
    algorithm: &AlgorithmKind,
    family: &SchemaFamily,
    base_params: &LearnerParams,
    folds: usize,
) -> Vec<ExperimentRow> {
    family
        .variants
        .iter()
        .map(|variant| {
            let mut row = run_algorithm_on_variant(algorithm, variant, base_params, folds);
            row.family = family.name.clone();
            row
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use castor_datasets::uwcse::{generate, UwCseConfig};

    fn tiny_family() -> castor_datasets::SchemaFamily {
        generate(&UwCseConfig {
            students: 12,
            professors: 4,
            courses: 5,
            noise_fraction: 0.0,
            ..Default::default()
        })
    }

    #[test]
    fn castor_rows_are_schema_independent_on_tiny_uwcse() {
        let family = tiny_family();
        let rows = run_algorithm_over_family(
            &AlgorithmKind::Castor(CastorConfig::uwcse()),
            &family,
            &LearnerParams::uwcse(),
            2,
        );
        assert_eq!(rows.len(), 4);
        let evals: Vec<EvaluationResult> = rows.iter().map(|r| r.evaluation).collect();
        assert!(
            crate::metrics::schema_independent(&evals, 1e-9),
            "Castor precision/recall must match across variants: {:?}",
            rows.iter()
                .map(|r| (r.schema.clone(), r.precision(), r.recall()))
                .collect::<Vec<_>>()
        );
        assert!(rows[0].recall() > 0.5, "Castor should learn the target");
    }

    #[test]
    fn progol_runs_on_a_single_variant() {
        let family = tiny_family();
        let variant = family.variant("Original").unwrap();
        let row = run_algorithm_on_variant(
            &AlgorithmKind::AlephProgol(4),
            variant,
            &LearnerParams::uwcse(),
            2,
        );
        assert_eq!(row.schema, "Original");
        assert!(row.learning_time > Duration::ZERO);
    }

    #[test]
    fn algorithm_names_identify_parameters() {
        assert_eq!(AlgorithmKind::AlephFoil(10).name(), "Aleph-FOIL(cl=10)");
        assert_eq!(
            AlgorithmKind::Castor(CastorConfig::default().with_general_inds()).name(),
            "Castor(general INDs)"
        );
    }
}
