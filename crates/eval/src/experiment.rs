//! Cross-validated experiment runs over the schema variants of a dataset
//! family, producing the rows of the paper's result tables.
//!
//! Runs go through the serving layer: one [`Server`] per variant run owns
//! the variant's long-lived engine (coverage cache and compiled plans
//! shared across every fold), and each fold's learner executes as a
//! [`LearnJob`] on a [`castor_service::Session`] — the same code path a
//! production deployment serves concurrent learning sessions with.

use crate::metrics::{evaluate_definition_with_session, EvaluationResult};
use castor_core::CastorConfig;
use castor_datasets::{cross_validation_folds, DatasetVariant, SchemaFamily};
use castor_learners::{LearnerParams, LearningTask};
use castor_logic::Definition;
use castor_relational::Tuple;
use castor_service::{LearnAlgorithm, LearnJob, Server, ServerConfig};
use std::time::{Duration, Instant};

/// The algorithms compared in the paper's experiments.
#[derive(Debug, Clone, PartialEq)]
pub enum AlgorithmKind {
    /// FOIL (greedy top-down, unrestricted hypothesis space beyond
    /// `clauselength`).
    Foil,
    /// Aleph emulating FOIL: greedy, bottom-clause bounded (the paper's
    /// "Aleph-FOIL"); the payload is the `clauselength` parameter.
    AlephFoil(usize),
    /// Aleph in its default Progol mode (the paper's "Aleph-Progol"); the
    /// payload is the `clauselength` parameter.
    AlephProgol(usize),
    /// Golem (rlgg-based bottom-up).
    Golem,
    /// ProGolem (ARMG-based bottom-up).
    ProGolem,
    /// Castor with the given configuration.
    Castor(CastorConfig),
}

impl AlgorithmKind {
    /// Display name used in the result tables.
    pub fn name(&self) -> String {
        match self {
            AlgorithmKind::Foil => "FOIL".into(),
            AlgorithmKind::AlephFoil(cl) => format!("Aleph-FOIL(cl={cl})"),
            AlgorithmKind::AlephProgol(cl) => format!("Aleph-Progol(cl={cl})"),
            AlgorithmKind::Golem => "Golem".into(),
            AlgorithmKind::ProGolem => "ProGolem".into(),
            AlgorithmKind::Castor(config) => {
                if config.use_general_inds {
                    "Castor(general INDs)".into()
                } else {
                    "Castor".into()
                }
            }
        }
    }
}

/// One row of a results table: an algorithm evaluated on one schema variant.
#[derive(Debug, Clone)]
pub struct ExperimentRow {
    /// Algorithm name.
    pub algorithm: String,
    /// Dataset family name.
    pub family: String,
    /// Schema variant name.
    pub schema: String,
    /// Micro-averaged evaluation over all folds.
    pub evaluation: EvaluationResult,
    /// Total learning time across folds.
    pub learning_time: Duration,
    /// The definition learned on the first fold (for qualitative reports).
    pub sample_definition: Definition,
}

impl ExperimentRow {
    /// Precision shortcut.
    pub fn precision(&self) -> f64 {
        self.evaluation.precision()
    }

    /// Recall shortcut.
    pub fn recall(&self) -> f64 {
        self.evaluation.recall()
    }
}

fn params_for(variant: &DatasetVariant, base: &LearnerParams) -> LearnerParams {
    LearnerParams {
        constant_positions: variant.constant_positions.clone(),
        ..base.clone()
    }
}

/// The serving-layer learner selection for one algorithm kind, with the
/// paper's per-algorithm parameter adjustments applied.
fn learn_algorithm_for(
    algorithm: &AlgorithmKind,
    params: &LearnerParams,
    base_params: &LearnerParams,
) -> LearnAlgorithm {
    match algorithm {
        AlgorithmKind::Foil => {
            let mut params = params.clone();
            params.allow_constants = true;
            LearnAlgorithm::Foil(params)
        }
        AlgorithmKind::AlephFoil(clause_length) => {
            let mut params = params.clone();
            params.clause_length = *clause_length;
            params.beam_width = 1; // greedy (openlist = 1)
            LearnAlgorithm::Progol(params)
        }
        AlgorithmKind::AlephProgol(clause_length) => {
            let mut params = params.clone();
            params.clause_length = *clause_length;
            params.beam_width = params.beam_width.max(3);
            LearnAlgorithm::Progol(params)
        }
        AlgorithmKind::Golem => LearnAlgorithm::Golem(params.clone()),
        AlgorithmKind::ProGolem => LearnAlgorithm::ProGolem(params.clone()),
        AlgorithmKind::Castor(config) => {
            let mut config = config.clone();
            config.params = params.clone();
            config.params.threads = config.params.threads.max(base_params.threads);
            LearnAlgorithm::Castor(Box::new(config))
        }
    }
}

/// The transport-independent cross-validation loop shared by the
/// in-process and RPC experiment runners: per fold, time one learner run
/// (`learn`), evaluate the definition on the held-out split (`evaluate`),
/// and micro-average into one row. Keeping a single copy is what lets the
/// test suite pin the two transports to identical rows.
fn run_folds(
    algorithm: &AlgorithmKind,
    variant: &DatasetVariant,
    folds: usize,
    mut learn: impl FnMut(LearningTask) -> Definition,
    mut evaluate: impl FnMut(&Definition, &[Tuple], &[Tuple]) -> EvaluationResult,
) -> ExperimentRow {
    let mut evaluation = EvaluationResult::default();
    let mut total_time = Duration::ZERO;
    let mut sample_definition = Definition::empty(variant.task.target.clone());
    for (i, fold) in cross_validation_folds(&variant.task, folds)
        .iter()
        .enumerate()
    {
        let start = Instant::now();
        let definition = learn(fold.train.clone());
        total_time += start.elapsed();
        let fold_eval = evaluate(&definition, &fold.test_positive, &fold.test_negative);
        evaluation.accumulate(&fold_eval);
        if i == 0 {
            sample_definition = definition;
        }
    }
    ExperimentRow {
        algorithm: algorithm.name(),
        family: String::new(),
        schema: variant.name.clone(),
        evaluation,
        learning_time: total_time,
        sample_definition,
    }
}

/// Runs one algorithm on one variant with `folds`-fold cross validation.
pub fn run_algorithm_on_variant(
    algorithm: &AlgorithmKind,
    variant: &DatasetVariant,
    base_params: &LearnerParams,
    folds: usize,
) -> ExperimentRow {
    // One server-owned engine per variant: its coverage cache and compiled
    // plans are shared across every fold of the run, and test-split
    // evaluation reuses results the learner already computed. The variant's
    // instance is `Arc`-shared into the engine — no deep copy.
    let params = params_for(variant, base_params);
    let server = Server::new(
        ServerConfig::default()
            .with_threads(params.threads)
            .with_engine(params.engine_config()),
    );
    server
        .register(&variant.name, std::sync::Arc::clone(&variant.db))
        .expect("variant registered once per run");
    let session = server
        .session(&variant.name)
        .expect("variant was just registered");
    run_folds(
        algorithm,
        variant,
        folds,
        |task| {
            session
                .learn(LearnJob::new(
                    task,
                    learn_algorithm_for(algorithm, &params, base_params),
                ))
                .expect("experiment sessions are never cancelled")
        },
        |definition, test_positive, test_negative| {
            evaluate_definition_with_session(&session, definition, test_positive, test_negative)
        },
    )
}

/// [`run_algorithm_on_variant`] with every job travelling a real TCP
/// socket: the run owns a loopback [`castor_rpc::RpcServer`] over the
/// variant's serving stack, and each fold's learning and evaluation go
/// through a blocking [`castor_rpc::RpcClient`]. The server executes the
/// same `LearnJob`s/`CoverageJob`s, so results are identical to the
/// in-process path — this is the deployment shape where the experiment
/// harness and the learning service run on different machines.
pub fn run_algorithm_on_variant_rpc(
    algorithm: &AlgorithmKind,
    variant: &DatasetVariant,
    base_params: &LearnerParams,
    folds: usize,
) -> ExperimentRow {
    use crate::metrics::evaluate_definition_with_client;
    use castor_rpc::{RpcClient, RpcConfig, RpcServer};

    let params = params_for(variant, base_params);
    let service = std::sync::Arc::new(Server::new(
        ServerConfig::default()
            .with_threads(params.threads)
            .with_engine(params.engine_config()),
    ));
    service
        .register(&variant.name, std::sync::Arc::clone(&variant.db))
        .expect("variant registered once per run");
    let rpc = RpcServer::bind(service, "127.0.0.1:0", RpcConfig::default())
        .expect("loopback bind for the experiment run");
    let client = std::cell::RefCell::new(
        RpcClient::connect(rpc.local_addr(), &variant.name)
            .expect("loopback connect for the experiment run"),
    );
    run_folds(
        algorithm,
        variant,
        folds,
        |task| {
            client
                .borrow_mut()
                .learn(task, learn_algorithm_for(algorithm, &params, base_params))
                .expect("experiment connections are never cancelled")
        },
        |definition, test_positive, test_negative| {
            evaluate_definition_with_client(
                &mut client.borrow_mut(),
                definition,
                test_positive,
                test_negative,
            )
        },
    )
}

/// [`run_algorithm_on_variant`] against a sharded cluster: the run owns
/// `members` loopback [`castor_rpc::RpcServer`]s, each serving the
/// variant's database *empty* (schema-registered only), and a
/// [`castor_cluster::Router`] that places the database on one member by
/// consistent hashing and replays the variant's content to it. Each
/// fold's learning and evaluation route through the owning member — the
/// same jobs as the in-process and single-server paths, so results are
/// identical; only placement and transport differ.
pub fn run_algorithm_on_variant_cluster(
    algorithm: &AlgorithmKind,
    variant: &DatasetVariant,
    base_params: &LearnerParams,
    folds: usize,
    members: usize,
) -> ExperimentRow {
    use crate::metrics::evaluate_definition_with_cluster;
    use castor_cluster::{ClusterConfig, Router};
    use castor_relational::DatabaseInstance;
    use castor_rpc::{RpcConfig, RpcServer};

    let params = params_for(variant, base_params);
    // The RpcServers must outlive the router's pooled connections.
    let mut servers = Vec::with_capacity(members);
    let mut addrs = Vec::with_capacity(members);
    for i in 0..members {
        let service = std::sync::Arc::new(Server::new(
            ServerConfig::default()
                .with_threads(params.threads)
                .with_engine(params.engine_config()),
        ));
        service
            .register(
                &variant.name,
                std::sync::Arc::new(DatabaseInstance::empty(variant.db.schema())),
            )
            .expect("variant registered once per member");
        let rpc = RpcServer::bind(service, "127.0.0.1:0", RpcConfig::default())
            .expect("loopback bind for the experiment run");
        addrs.push((format!("member-{i}"), rpc.local_addr()));
        servers.push(rpc);
    }
    let router = Router::new(addrs, ClusterConfig::default());
    router
        .register(&variant.name, &variant.db)
        .expect("initial content replays to the owning member");
    let session = router
        .session(&variant.name)
        .expect("variant was just registered");
    run_folds(
        algorithm,
        variant,
        folds,
        |task| {
            session
                .learn(task, learn_algorithm_for(algorithm, &params, base_params))
                .expect("experiment routes are never cancelled")
        },
        |definition, test_positive, test_negative| {
            evaluate_definition_with_cluster(&session, definition, test_positive, test_negative)
        },
    )
}

/// Runs one algorithm across every schema variant of a family.
pub fn run_algorithm_over_family(
    algorithm: &AlgorithmKind,
    family: &SchemaFamily,
    base_params: &LearnerParams,
    folds: usize,
) -> Vec<ExperimentRow> {
    family
        .variants
        .iter()
        .map(|variant| {
            let mut row = run_algorithm_on_variant(algorithm, variant, base_params, folds);
            row.family = family.name.clone();
            row
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use castor_datasets::uwcse::{generate, UwCseConfig};

    fn tiny_family() -> castor_datasets::SchemaFamily {
        generate(&UwCseConfig {
            students: 12,
            professors: 4,
            courses: 5,
            noise_fraction: 0.0,
            ..Default::default()
        })
    }

    #[test]
    fn castor_rows_are_schema_independent_on_tiny_uwcse() {
        let family = tiny_family();
        let rows = run_algorithm_over_family(
            &AlgorithmKind::Castor(CastorConfig::uwcse()),
            &family,
            &LearnerParams::uwcse(),
            2,
        );
        assert_eq!(rows.len(), 4);
        let evals: Vec<EvaluationResult> = rows.iter().map(|r| r.evaluation).collect();
        assert!(
            crate::metrics::schema_independent(&evals, 1e-9),
            "Castor precision/recall must match across variants: {:?}",
            rows.iter()
                .map(|r| (r.schema.clone(), r.precision(), r.recall()))
                .collect::<Vec<_>>()
        );
        assert!(rows[0].recall() > 0.5, "Castor should learn the target");
    }

    #[test]
    fn progol_runs_on_a_single_variant() {
        let family = tiny_family();
        let variant = family.variant("Original").unwrap();
        let row = run_algorithm_on_variant(
            &AlgorithmKind::AlephProgol(4),
            variant,
            &LearnerParams::uwcse(),
            2,
        );
        assert_eq!(row.schema, "Original");
        assert!(row.learning_time > Duration::ZERO);
    }

    #[test]
    fn rpc_transport_reproduces_the_in_process_rows() {
        let family = tiny_family();
        let variant = family.variant("Original").unwrap();
        let algorithm = AlgorithmKind::AlephProgol(4);
        let in_process = run_algorithm_on_variant(&algorithm, variant, &LearnerParams::uwcse(), 2);
        let over_tcp =
            run_algorithm_on_variant_rpc(&algorithm, variant, &LearnerParams::uwcse(), 2);
        // The server executes the same jobs, so the learned definitions
        // and fold metrics are identical — only the transport differs.
        assert_eq!(over_tcp.evaluation, in_process.evaluation);
        assert_eq!(over_tcp.sample_definition, in_process.sample_definition);
        assert_eq!(over_tcp.schema, in_process.schema);
    }

    #[test]
    fn cluster_transport_reproduces_the_in_process_rows() {
        let family = tiny_family();
        let variant = family.variant("Original").unwrap();
        let algorithm = AlgorithmKind::AlephProgol(4);
        let in_process = run_algorithm_on_variant(&algorithm, variant, &LearnerParams::uwcse(), 2);
        let over_cluster =
            run_algorithm_on_variant_cluster(&algorithm, variant, &LearnerParams::uwcse(), 2, 3);
        // The owning member executes the same jobs over the replayed
        // content (same relation and tuple order), so the learned
        // definitions and fold metrics are identical to the in-process
        // path — and hence also to the single-server RPC path, which the
        // sibling test pins against the same baseline.
        assert_eq!(over_cluster.evaluation, in_process.evaluation);
        assert_eq!(over_cluster.sample_definition, in_process.sample_definition);
        assert_eq!(over_cluster.schema, in_process.schema);
    }

    #[test]
    fn algorithm_names_identify_parameters() {
        assert_eq!(AlgorithmKind::AlephFoil(10).name(), "Aleph-FOIL(cl=10)");
        assert_eq!(
            AlgorithmKind::Castor(CastorConfig::default().with_general_inds()).name(),
            "Castor(general INDs)"
        );
    }
}
