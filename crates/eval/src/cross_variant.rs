//! Cross-variant coverage evaluation through one shared cache arena.
//!
//! The UW-CSE schema variants are all images of the Original schema under
//! known composition transformations, so a server can register them as
//! variants of *one logical database* ([`castor_service::Server::register_variant`],
//! anchored at the most-composed Denormalized-2 schema). A clause set
//! evaluated on one variant then serves its verdicts to the δτ-mapped
//! clause sets of every other variant: the per-variant engines key the
//! shared coverage cache by the clauses' canonical-schema image, and the
//! paper's schema-independence property (Proposition 3.7) guarantees those
//! images coincide for corresponding hypotheses.
//!
//! [`run_uwcse_cross_variant_coverage`] is the harness: it evaluates a
//! clause set expressed over the Original schema on every variant — mapped
//! into each variant's own schema first, exactly what a tenant of that
//! variant would submit — and returns per-variant covered sets plus engine
//! reports, in-process or over a real loopback RPC socket.

use castor_datasets::uwcse;
use castor_datasets::SchemaFamily;
use castor_engine::EngineReport;
use castor_logic::Clause;
use castor_relational::Tuple;
use castor_service::{Server, ServerConfig};
use castor_transform::{map_clause_through_step, CanonicalSchema, Transformation};
use std::collections::HashSet;
use std::sync::Arc;

/// How coverage jobs reach the shared-arena server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transport {
    /// Jobs submitted through in-process [`castor_service::Session`]s.
    InProcess,
    /// Jobs travel a real loopback TCP socket per variant
    /// ([`castor_rpc::RpcClient`] against one [`castor_rpc::RpcServer`]).
    Rpc,
}

/// One variant's slice of a cross-variant run.
#[derive(Debug, Clone)]
pub struct CrossVariantRun {
    /// Variant name (`"Original"`, `"4NF"`, ...).
    pub variant: String,
    /// Covered subset of the examples, per clause (clause order preserved).
    pub covered: Vec<HashSet<Tuple>>,
    /// The variant engine's counters after its jobs ran —
    /// `cross_variant_hits` counts verdicts served from another variant's
    /// work.
    pub report: EngineReport,
}

/// The UW-CSE transformations from the Original schema, in the family's
/// variant order. The Denormalized-2 entry doubles as the canonical anchor.
fn uwcse_taus() -> Vec<(&'static str, Transformation)> {
    let original = uwcse::original_schema();
    vec![
        ("Original", Transformation::identity("original-to-original")),
        ("4NF", uwcse::to_4nf(&original)),
        ("Denormalized-1", uwcse::to_denormalized1(&original)),
        ("Denormalized-2", uwcse::to_denormalized2(&original)),
    ]
}

/// Maps a clause over the Original schema into the variant produced by
/// `tau` (δτ: every composition step merges the affected literals, padding
/// unconstrained attributes with fresh variables).
fn into_variant(clause: &Clause, tau: &Transformation) -> Clause {
    let mut current = clause.clone();
    for step in tau.steps() {
        current = map_clause_through_step(&current, step);
    }
    current
}

/// Registers every UW-CSE variant of `family` on one server as variants of
/// the logical database `"uwcse"` (anchor: Denormalized-2), evaluates
/// `clauses` — expressed over the Original schema — on each variant in the
/// family's order (mapped into the variant's schema first), and returns
/// per-variant covered sets and engine reports.
///
/// Schema independence makes the covered sets identical across variants,
/// and the shared arena means every variant after the first answers most
/// probes from verdicts the first variant proved (`cross_variant_hits > 0`
/// in their reports) — in-process and over RPC alike.
pub fn run_uwcse_cross_variant_coverage(
    family: &SchemaFamily,
    clauses: &[Clause],
    examples: &[Tuple],
    threads: usize,
    transport: Transport,
) -> Vec<CrossVariantRun> {
    let original = uwcse::original_schema();
    let canonical = CanonicalSchema::anchor(&original, uwcse::to_denormalized2(&original));
    let taus = uwcse_taus();
    let server = Arc::new(Server::new(ServerConfig::default().with_threads(threads)));
    for (name, tau) in &taus {
        let variant = family
            .variant(name)
            .unwrap_or_else(|| panic!("UW-CSE family is missing the `{name}` variant"));
        server
            .register_variant(
                *name,
                Arc::clone(&variant.db),
                "uwcse",
                canonical.lens_for(tau),
            )
            .expect("each variant registers once per run");
    }
    let mut runs = Vec::with_capacity(taus.len());
    match transport {
        Transport::InProcess => {
            for (name, tau) in &taus {
                let session = server.session(name).expect("variant was just registered");
                let mapped: Vec<Clause> = clauses.iter().map(|c| into_variant(c, tau)).collect();
                let covered = session
                    .covered_sets(mapped, examples.to_vec())
                    .expect("cross-variant runs are never cancelled");
                runs.push(CrossVariantRun {
                    variant: name.to_string(),
                    covered,
                    report: server.report(name).expect("registered"),
                });
            }
        }
        Transport::Rpc => {
            use castor_rpc::{RpcClient, RpcConfig, RpcServer};
            let rpc = RpcServer::bind(Arc::clone(&server), "127.0.0.1:0", RpcConfig::default())
                .expect("loopback bind for the cross-variant run");
            for (name, tau) in &taus {
                let mut client = RpcClient::connect(rpc.local_addr(), name)
                    .expect("loopback connect for the cross-variant run");
                let mapped: Vec<Clause> = clauses.iter().map(|c| into_variant(c, tau)).collect();
                let covered = client
                    .covered_sets(mapped, examples.to_vec())
                    .expect("cross-variant runs are never cancelled");
                runs.push(CrossVariantRun {
                    variant: name.to_string(),
                    covered,
                    report: server.report(name).expect("registered"),
                });
            }
        }
    }
    runs
}

/// The from-scratch baseline: the same per-variant jobs against *independent*
/// servers (no shared arena, no variant lenses). Used by the guard tests to
/// pin the shared-arena covered sets bit-identical to isolated engines.
pub fn run_uwcse_independent_coverage(
    family: &SchemaFamily,
    clauses: &[Clause],
    examples: &[Tuple],
    threads: usize,
) -> Vec<CrossVariantRun> {
    uwcse_taus()
        .iter()
        .map(|(name, tau)| {
            let variant = family
                .variant(name)
                .unwrap_or_else(|| panic!("UW-CSE family is missing the `{name}` variant"));
            let server = Server::new(ServerConfig::default().with_threads(threads));
            server
                .register(*name, Arc::clone(&variant.db))
                .expect("one registration per isolated server");
            let session = server.session(name).expect("variant was just registered");
            let mapped: Vec<Clause> = clauses.iter().map(|c| into_variant(c, tau)).collect();
            let covered = session
                .covered_sets(mapped, examples.to_vec())
                .expect("baseline runs are never cancelled");
            CrossVariantRun {
                variant: name.to_string(),
                covered,
                report: server.report(name).expect("registered"),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use castor_datasets::uwcse::{generate, ground_truth_original, UwCseConfig};

    fn family() -> SchemaFamily {
        generate(&UwCseConfig {
            students: 10,
            professors: 3,
            courses: 4,
            noise_fraction: 0.0,
            ..Default::default()
        })
    }

    fn clauses_and_examples(family: &SchemaFamily) -> (Vec<Clause>, Vec<Tuple>) {
        let clauses = ground_truth_original().clauses;
        let task = &family.variants[0].task;
        let examples: Vec<Tuple> = task
            .positive
            .iter()
            .chain(task.negative.iter())
            .cloned()
            .collect();
        (clauses, examples)
    }

    #[test]
    fn shared_arena_matches_independent_engines_in_process() {
        let family = family();
        let (clauses, examples) = clauses_and_examples(&family);
        let shared =
            run_uwcse_cross_variant_coverage(&family, &clauses, &examples, 1, Transport::InProcess);
        let isolated = run_uwcse_independent_coverage(&family, &clauses, &examples, 1);
        assert_eq!(shared.len(), 4);
        for (s, i) in shared.iter().zip(&isolated) {
            assert_eq!(s.variant, i.variant);
            assert_eq!(
                s.covered, i.covered,
                "{}: shared-arena covered sets must be bit-identical to isolated engines",
                s.variant
            );
        }
        // Every variant covers the same logical examples (schema
        // independence of the evaluation itself).
        for run in &shared[1..] {
            assert_eq!(run.covered, shared[0].covered, "{}", run.variant);
        }
        // The first variant proved the verdicts; the others reused them.
        assert_eq!(shared[0].report.cross_variant_hits, 0);
        for run in &shared[1..] {
            assert!(
                run.report.cross_variant_hits > 0,
                "{} reused no verdicts: {:?}",
                run.variant,
                run.report
            );
        }
    }

    #[test]
    fn shared_arena_reuses_verdicts_over_rpc() {
        let family = family();
        let (clauses, examples) = clauses_and_examples(&family);
        let runs =
            run_uwcse_cross_variant_coverage(&family, &clauses, &examples, 1, Transport::Rpc);
        for run in &runs[1..] {
            assert_eq!(run.covered, runs[0].covered, "{}", run.variant);
            assert!(
                run.report.cross_variant_hits > 0,
                "{} reused no verdicts over RPC: {:?}",
                run.variant,
                run.report
            );
        }
    }
}
