//! Substitutions: finite mappings from variables to terms.

use crate::atom::Atom;
use crate::clause::Clause;
use crate::term::Term;
use std::collections::BTreeMap;
use std::fmt;

/// A substitution θ mapping variable names to terms.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Substitution {
    map: BTreeMap<String, Term>,
}

impl Substitution {
    /// The empty substitution.
    pub fn new() -> Self {
        Substitution::default()
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the substitution has no bindings.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Binds a variable to a term. Overwrites an existing binding.
    pub fn bind(&mut self, var: impl Into<String>, term: Term) {
        self.map.insert(var.into(), term);
    }

    /// Attempts to bind `var` to `term`; fails (returns `false`) if `var` is
    /// already bound to a different term. Used during subsumption search.
    pub fn try_bind(&mut self, var: &str, term: &Term) -> bool {
        match self.map.get(var) {
            Some(existing) => existing == term,
            None => {
                self.map.insert(var.to_string(), term.clone());
                true
            }
        }
    }

    /// The binding for a variable, if any.
    pub fn get(&self, var: &str) -> Option<&Term> {
        self.map.get(var)
    }

    /// Whether the variable has a binding.
    pub fn binds(&self, var: &str) -> bool {
        self.map.contains_key(var)
    }

    /// Removes a binding (used when backtracking).
    pub fn unbind(&mut self, var: &str) {
        self.map.remove(var);
    }

    /// Applies the substitution to a term.
    pub fn apply_term(&self, term: &Term) -> Term {
        match term {
            Term::Var(name) => self.map.get(name).cloned().unwrap_or_else(|| term.clone()),
            Term::Const(_) => term.clone(),
        }
    }

    /// Applies the substitution to an atom.
    pub fn apply_atom(&self, atom: &Atom) -> Atom {
        Atom {
            relation: atom.relation.clone(),
            terms: atom.terms.iter().map(|t| self.apply_term(t)).collect(),
        }
    }

    /// Applies the substitution to a clause (head and body).
    pub fn apply_clause(&self, clause: &Clause) -> Clause {
        Clause {
            head: self.apply_atom(&clause.head),
            body: clause.body.iter().map(|a| self.apply_atom(a)).collect(),
        }
    }

    /// Composes this substitution with `other`: the result first applies
    /// `self`, then `other` (i.e. `(self ∘ other)(t) = other(self(t))`).
    pub fn compose(&self, other: &Substitution) -> Substitution {
        let mut map = BTreeMap::new();
        for (var, term) in &self.map {
            map.insert(var.clone(), other.apply_term(term));
        }
        for (var, term) in &other.map {
            map.entry(var.clone()).or_insert_with(|| term.clone());
        }
        Substitution { map }
    }

    /// Iterates over `(variable, term)` bindings in variable-name order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Term)> {
        self.map.iter()
    }
}

impl fmt::Display for Substitution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.map.iter().map(|(v, t)| format!("{v}/{t}")).collect();
        write!(f, "{{{}}}", parts.join(", "))
    }
}

impl FromIterator<(String, Term)> for Substitution {
    fn from_iter<I: IntoIterator<Item = (String, Term)>>(iter: I) -> Self {
        Substitution {
            map: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_to_atom_replaces_bound_variables_only() {
        let mut s = Substitution::new();
        s.bind("x", Term::constant("alice"));
        let a = Atom::vars("advisedBy", &["x", "y"]);
        let applied = s.apply_atom(&a);
        assert_eq!(applied.terms[0], Term::constant("alice"));
        assert_eq!(applied.terms[1], Term::var("y"));
    }

    #[test]
    fn try_bind_respects_existing_bindings() {
        let mut s = Substitution::new();
        assert!(s.try_bind("x", &Term::constant("a")));
        assert!(s.try_bind("x", &Term::constant("a")));
        assert!(!s.try_bind("x", &Term::constant("b")));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn unbind_supports_backtracking() {
        let mut s = Substitution::new();
        s.bind("x", Term::constant("a"));
        s.unbind("x");
        assert!(!s.binds("x"));
        assert!(s.is_empty());
    }

    #[test]
    fn composition_applies_left_then_right() {
        let mut first = Substitution::new();
        first.bind("x", Term::var("y"));
        let mut second = Substitution::new();
        second.bind("y", Term::constant("c"));
        let composed = first.compose(&second);
        assert_eq!(composed.apply_term(&Term::var("x")), Term::constant("c"));
        assert_eq!(composed.apply_term(&Term::var("y")), Term::constant("c"));
    }

    #[test]
    fn display_lists_bindings() {
        let mut s = Substitution::new();
        s.bind("x", Term::constant("a"));
        assert_eq!(s.to_string(), "{x/'a'}");
    }
}
