//! # castor-logic
//!
//! First-order Horn-clause machinery for the Castor reproduction of
//! *Schema Independent Relational Learning* (Picado et al., 2017).
//!
//! This crate provides the hypothesis representation shared by every
//! learning algorithm in the workspace:
//!
//! * [`Term`], [`Atom`], [`Clause`] (ordered Horn clauses) and
//!   [`Definition`] (Horn definitions, i.e. unions of conjunctive queries);
//! * [`Substitution`]s and θ-subsumption ([`subsumption`]) — the coverage
//!   test used by bottom-up learners (standing in for the Resumer2 engine
//!   used by the paper's implementation);
//! * clause evaluation over a [`castor_relational::DatabaseInstance`]
//!   ([`evaluation`]) — the semantics `h_R(I)` used to define definition
//!   equivalence;
//! * Plotkin's least general generalization ([`lgg`]) used by Golem's rlgg
//!   operator;
//! * clause minimization by θ-reduction ([`minimize`]) and safety checks
//!   ([`safety`]);
//! * a constant→variable mapping helper ([`varmap`]) shared by all
//!   bottom-clause construction algorithms.

pub mod atom;
pub mod clause;
pub mod definition;
pub mod evaluation;
pub mod lgg;
pub mod minimize;
pub mod safety;
pub mod substitution;
pub mod subsumption;
pub mod term;
pub mod varmap;

pub use atom::Atom;
pub use clause::Clause;
pub use definition::Definition;
pub use evaluation::{
    clause_results, covers_example, covers_example_budgeted, definition_results, CoverageOutcome,
    EvalBudget, DEFAULT_EVAL_NODE_BUDGET,
};
pub use lgg::{lgg_atoms, lgg_clauses};
pub use minimize::minimize_clause;
pub use safety::is_safe;
pub use substitution::Substitution;
pub use subsumption::{
    subsumes, subsumes_budgeted, subsumes_budgeted_with, subsumes_with, subsumes_with_eval_budget,
    SubsumptionOutcome,
};
pub use term::Term;
pub use varmap::VariableMap;
