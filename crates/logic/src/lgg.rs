//! Plotkin's least general generalization (lgg) over atoms and clauses.
//!
//! Golem's `rlgg` operator (Section 6.3 of the paper) computes the lgg of
//! pairs of saturations (ground bottom-clauses). The lgg of two clauses is
//! the set of pairwise lggs of *compatible* literals (same relation symbol),
//! where each distinct pair of differing terms is consistently replaced by
//! the same fresh variable. The size of the lgg of two clauses is bounded by
//! the product of their lengths — the exponential growth that makes Golem
//! impractical and motivates ProGolem and Castor.

use crate::atom::Atom;
use crate::clause::Clause;
use crate::term::Term;
use std::collections::HashMap;

/// Tracks the fresh variables introduced for pairs of differing terms so the
/// same pair always maps to the same variable across the whole lgg.
#[derive(Debug, Default)]
pub struct LggContext {
    pairs: HashMap<(Term, Term), String>,
    counter: usize,
}

impl LggContext {
    /// Creates an empty context.
    pub fn new() -> Self {
        LggContext::default()
    }

    /// The lgg of two terms: identical terms generalize to themselves,
    /// differing terms to a shared fresh variable for that ordered pair.
    pub fn lgg_terms(&mut self, a: &Term, b: &Term) -> Term {
        if a == b {
            return a.clone();
        }
        let key = (a.clone(), b.clone());
        if let Some(existing) = self.pairs.get(&key) {
            return Term::var(existing.clone());
        }
        let name = format!("G{}", self.counter);
        self.counter += 1;
        self.pairs.insert(key, name.clone());
        Term::var(name)
    }

    /// Number of fresh variables introduced so far.
    pub fn introduced_variables(&self) -> usize {
        self.pairs.len()
    }
}

/// The lgg of two compatible atoms under a shared context. Returns `None`
/// when the atoms are incompatible (different relation or arity).
pub fn lgg_atoms(a: &Atom, b: &Atom, ctx: &mut LggContext) -> Option<Atom> {
    if !a.compatible_with(b) {
        return None;
    }
    Some(Atom {
        relation: a.relation.clone(),
        terms: a
            .terms
            .iter()
            .zip(b.terms.iter())
            .map(|(ta, tb)| ctx.lgg_terms(ta, tb))
            .collect(),
    })
}

/// The lgg of two clauses: the head lgg plus all pairwise lggs of compatible
/// body literals. Returns `None` if the heads are incompatible.
pub fn lgg_clauses(a: &Clause, b: &Clause) -> Option<Clause> {
    let mut ctx = LggContext::new();
    let head = lgg_atoms(&a.head, &b.head, &mut ctx)?;
    let mut body = Vec::new();
    for la in &a.body {
        for lb in &b.body {
            if let Some(atom) = lgg_atoms(la, lb, &mut ctx) {
                if !body.contains(&atom) {
                    body.push(atom);
                }
            }
        }
    }
    Some(Clause { head, body })
}

/// The lgg of a set of clauses, computed by folding pairwise lggs
/// (the lgg operator is associative and commutative up to equivalence).
pub fn lgg_all(clauses: &[Clause]) -> Option<Clause> {
    let mut iter = clauses.iter();
    let mut acc = iter.next()?.clone();
    for c in iter {
        acc = lgg_clauses(&acc, c)?;
    }
    Some(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subsumption::subsumes;

    fn ground(rel: &str, args: &[&str]) -> Atom {
        Atom::new(rel, args.iter().map(|a| Term::constant(*a)).collect())
    }

    #[test]
    fn lgg_of_identical_atoms_is_the_atom() {
        let mut ctx = LggContext::new();
        let a = ground("p", &["a", "b"]);
        assert_eq!(lgg_atoms(&a, &a, &mut ctx), Some(a.clone()));
        assert_eq!(ctx.introduced_variables(), 0);
    }

    #[test]
    fn differing_constants_generalize_to_shared_variable() {
        let mut ctx = LggContext::new();
        // lgg(p(a,a), p(b,b)) = p(X,X): the pair (a,b) maps to one variable.
        let g = lgg_atoms(
            &ground("p", &["a", "a"]),
            &ground("p", &["b", "b"]),
            &mut ctx,
        )
        .unwrap();
        assert_eq!(g.terms[0], g.terms[1]);
        assert!(g.terms[0].is_var());
    }

    #[test]
    fn different_pairs_get_different_variables() {
        let mut ctx = LggContext::new();
        let g = lgg_atoms(
            &ground("p", &["a", "c"]),
            &ground("p", &["b", "d"]),
            &mut ctx,
        )
        .unwrap();
        assert_ne!(g.terms[0], g.terms[1]);
        assert_eq!(ctx.introduced_variables(), 2);
    }

    #[test]
    fn incompatible_atoms_have_no_lgg() {
        let mut ctx = LggContext::new();
        assert!(lgg_atoms(&ground("p", &["a"]), &ground("q", &["a"]), &mut ctx).is_none());
        assert!(lgg_atoms(&ground("p", &["a"]), &ground("p", &["a", "b"]), &mut ctx).is_none());
    }

    #[test]
    fn clause_lgg_generalizes_both_inputs() {
        // Saturations for two positive collaborated examples.
        let c1 = Clause::new(
            ground("collaborated", &["ann", "bob"]),
            vec![
                ground("publication", &["p1", "ann"]),
                ground("publication", &["p1", "bob"]),
            ],
        );
        let c2 = Clause::new(
            ground("collaborated", &["carol", "dave"]),
            vec![
                ground("publication", &["p2", "carol"]),
                ground("publication", &["p2", "dave"]),
            ],
        );
        let g = lgg_clauses(&c1, &c2).unwrap();
        // The lgg must θ-subsume both ground clauses.
        assert!(subsumes(&g, &c1));
        assert!(subsumes(&g, &c2));
        // And it should capture the shared-publication structure: some body
        // literal pair shares the publication variable.
        assert!(!g.body.is_empty());
    }

    #[test]
    fn lgg_size_is_bounded_by_product_of_lengths() {
        let c1 = Clause::new(
            ground("t", &["a"]),
            vec![ground("p", &["a", "x1"]), ground("p", &["a", "x2"])],
        );
        let c2 = Clause::new(
            ground("t", &["b"]),
            vec![ground("p", &["b", "y1"]), ground("p", &["b", "y2"])],
        );
        let g = lgg_clauses(&c1, &c2).unwrap();
        assert!(g.body.len() <= c1.body.len() * c2.body.len());
        assert!(g.body.len() >= c1.body.len().max(c2.body.len()).min(4));
    }

    #[test]
    fn lgg_all_folds_pairwise() {
        let clauses: Vec<Clause> = ["a", "b", "c"]
            .iter()
            .map(|x| Clause::new(ground("t", &[x]), vec![ground("p", &[x])]))
            .collect();
        let g = lgg_all(&clauses).unwrap();
        for c in &clauses {
            assert!(subsumes(&g, c));
        }
    }

    #[test]
    fn lgg_all_of_empty_set_is_none() {
        assert!(lgg_all(&[]).is_none());
    }
}
