//! Clause minimization by θ-reduction.
//!
//! A literal `L` of clause `C` is redundant if `C` is θ-equivalent to
//! `C − {L}`. Since `C − {L}` always θ-subsumes `C` (it is a subset of the
//! literals, so the identity substitution witnesses it), equivalence holds
//! exactly when `C` θ-subsumes `C − {L}`, i.e. there is a substitution
//! mapping `C` into its own subset. Castor minimizes every
//! bottom-clause and every learned clause this way (Section 7.5.5); the
//! paper uses a polynomial-time approximation of the subsumption test, which
//! we mirror by capping the search through the generic subsumption engine.

use crate::clause::Clause;
use crate::subsumption::subsumes;

/// Removes syntactically redundant body literals.
///
/// Scans body literals left to right; a literal is dropped when the clause
/// without it still θ-subsumes the original clause. The result is equivalent
/// to the input (it subsumes and is subsumed by it).
pub fn minimize_clause(clause: &Clause) -> Clause {
    let mut current = clause.clone();
    let mut i = 0;
    while i < current.body.len() {
        let mut candidate = current.clone();
        candidate.body.remove(i);
        // Removing a literal always generalizes, so `candidate` subsumes
        // `current` trivially. The literal is redundant only if the full
        // clause still maps *into* the reduced one, i.e. `current` θ-subsumes
        // `candidate`; then the two are θ-equivalent.
        if subsumes(&current, &candidate) {
            current = candidate;
            // do not advance: the literal at position i is now a new one
        } else {
            i += 1;
        }
    }
    current
}

/// Number of literals removed when minimizing `clause`, as a fraction of the
/// original body length. The paper reports 13–19% reductions on the HIV
/// bottom-clauses; this helper feeds that statistic in our experiment
/// reports.
pub fn reduction_ratio(clause: &Clause) -> f64 {
    if clause.body.is_empty() {
        return 0.0;
    }
    let minimized = minimize_clause(clause);
    (clause.body.len() - minimized.body.len()) as f64 / clause.body.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Atom;
    use crate::subsumption::theta_equivalent;

    #[test]
    fn removes_duplicate_literals() {
        let c = Clause::new(
            Atom::vars("t", &["x"]),
            vec![
                Atom::vars("p", &["x", "y"]),
                Atom::vars("p", &["x", "y"]),
                Atom::vars("q", &["y"]),
            ],
        );
        let m = minimize_clause(&c);
        assert_eq!(m.body.len(), 2);
        assert!(theta_equivalent(&c, &m));
    }

    #[test]
    fn removes_subsumed_variants() {
        // p(x,z) with a fresh z is redundant given p(x,y), q(y).
        let c = Clause::new(
            Atom::vars("t", &["x"]),
            vec![
                Atom::vars("p", &["x", "y"]),
                Atom::vars("q", &["y"]),
                Atom::vars("p", &["x", "z"]),
            ],
        );
        let m = minimize_clause(&c);
        assert_eq!(m.body.len(), 2);
        assert!(theta_equivalent(&c, &m));
    }

    #[test]
    fn keeps_essential_literals() {
        let c = Clause::new(
            Atom::vars("collaborated", &["x", "y"]),
            vec![
                Atom::vars("publication", &["p", "x"]),
                Atom::vars("publication", &["p", "y"]),
            ],
        );
        let m = minimize_clause(&c);
        assert_eq!(m.body.len(), 2);
    }

    #[test]
    fn empty_body_is_untouched() {
        let c = Clause::fact(Atom::vars("t", &["x"]));
        assert_eq!(minimize_clause(&c), c);
        assert_eq!(reduction_ratio(&c), 0.0);
    }

    #[test]
    fn reduction_ratio_reflects_removed_literals() {
        let c = Clause::new(
            Atom::vars("t", &["x"]),
            vec![
                Atom::vars("p", &["x"]),
                Atom::vars("p", &["x"]),
                Atom::vars("p", &["x"]),
                Atom::vars("q", &["x"]),
            ],
        );
        let ratio = reduction_ratio(&c);
        assert!((ratio - 0.5).abs() < 1e-9);
    }

    #[test]
    fn minimized_clause_is_equivalent_to_original() {
        let c = Clause::new(
            Atom::vars("t", &["x"]),
            vec![
                Atom::vars("r", &["x", "a"]),
                Atom::vars("r", &["x", "b"]),
                Atom::vars("s", &["a", "b"]),
                Atom::vars("r", &["x", "c"]),
            ],
        );
        let m = minimize_clause(&c);
        assert!(theta_equivalent(&c, &m));
        assert!(m.body.len() <= c.body.len());
    }
}
