//! θ-subsumption.
//!
//! Clause `C` θ-subsumes clause `D` iff there is a substitution θ such that
//! `Cθ ⊆ D` (treating clauses as sets of literals). Castor's coverage test
//! is exactly θ-subsumption of a candidate clause against the ground
//! bottom-clause of an example (Section 7.5.3); the paper delegates this to
//! the Resumer2 engine, which this module replaces with a backtracking
//! matcher with literal ordering and forward-pruning heuristics.

use crate::atom::Atom;
use crate::clause::Clause;
use crate::evaluation::EvalBudget;
use crate::substitution::Substitution;
use crate::term::Term;
use std::collections::HashMap;

/// Backtracking budget for one subsumption test. θ-subsumption is
/// NP-complete; like the paper's implementation (which uses a restarting
/// engine and a polynomial approximation for clause minimization), we bound
/// the search and treat an exhausted budget as "does not subsume". The
/// budget is generous enough that it is only hit on pathological clauses.
const NODE_BUDGET: usize = 4_000;

/// The result of a budgeted subsumption test: the witnessing substitution
/// (when one was found) plus whether the node budget ran out, in which case
/// a `None` witness means "unknown", not "does not subsume".
#[derive(Debug, Clone)]
pub struct SubsumptionOutcome {
    /// The witnessing substitution, if subsumption was established.
    pub witness: Option<Substitution>,
    /// Whether the search budget was exhausted before completing.
    pub exhausted: bool,
}

impl SubsumptionOutcome {
    /// Whether subsumption was established.
    pub fn subsumes(&self) -> bool {
        self.witness.is_some()
    }
}

/// Whether `general` θ-subsumes `specific` (an exhausted budget counts as
/// "does not subsume"; use [`subsumes_budgeted`] to tell the difference).
pub fn subsumes(general: &Clause, specific: &Clause) -> bool {
    subsumes_with(general, specific).is_some()
}

/// Whether `general` θ-subsumes `specific`, returning the witnessing
/// substitution when it does.
pub fn subsumes_with(general: &Clause, specific: &Clause) -> Option<Substitution> {
    subsumes_budgeted(general, specific).witness
}

/// Budgeted subsumption test reporting budget exhaustion instead of
/// conflating it with a negative answer, using the default node budget.
pub fn subsumes_budgeted(general: &Clause, specific: &Clause) -> SubsumptionOutcome {
    subsumes_budgeted_with(general, specific, NODE_BUDGET)
}

/// [`subsumes_budgeted`] with an explicit node budget (the coverage engine
/// passes its configured evaluation budget here, so the knob governs both
/// database evaluation and θ-subsumption coverage testing).
pub fn subsumes_budgeted_with(
    general: &Clause,
    specific: &Clause,
    node_budget: usize,
) -> SubsumptionOutcome {
    subsumes_with_eval_budget(general, specific, &mut EvalBudget::new(node_budget))
}

/// [`subsumes_budgeted_with`] driven by a caller-supplied [`EvalBudget`],
/// so a cancellation token installed on the budget aborts the subsumption
/// search (as an exhaustion) within one candidate literal — the serving
/// layer cancels θ-subsumption coverage tests through this entry point.
pub fn subsumes_with_eval_budget(
    general: &Clause,
    specific: &Clause,
    budget: &mut EvalBudget,
) -> SubsumptionOutcome {
    // The head must match under θ as well: heads of both clauses use the
    // target relation, so this amounts to unifying the head arguments.
    let decided = |witness| SubsumptionOutcome {
        witness,
        exhausted: false,
    };
    if general.head.relation != specific.head.relation
        || general.head.arity() != specific.head.arity()
    {
        return decided(None);
    }
    let mut theta = Substitution::new();
    if !match_atom(&general.head, &specific.head, &mut theta) {
        return decided(None);
    }

    // Index the specific clause's body literals by relation name so each
    // general literal only tries compatible candidates.
    let mut by_relation: HashMap<&str, Vec<&Atom>> = HashMap::new();
    for atom in &specific.body {
        by_relation
            .entry(atom.relation.as_str())
            .or_default()
            .push(atom);
    }

    // Deduplicate general body literals (duplicates map to the same target
    // and only multiply the search), then order them: fewest candidate
    // matches first, and among those prefer literals connected by shared
    // variables to the ones already placed — both prune the search
    // dramatically on the long clauses produced by bottom-up learners.
    let mut unique: Vec<&Atom> = Vec::new();
    for atom in &general.body {
        if !unique.contains(&atom) {
            unique.push(atom);
        }
    }
    // Fail fast: a general literal whose relation does not appear in the
    // specific clause can never be matched.
    if unique
        .iter()
        .any(|a| !by_relation.contains_key(a.relation.as_str()))
    {
        return decided(None);
    }
    unique.sort_by_key(|a| by_relation.get(a.relation.as_str()).map_or(0, |v| v.len()));
    let mut ordered: Vec<&Atom> = Vec::new();
    let mut placed_vars: std::collections::BTreeSet<String> = general.head.variables();
    let mut remaining = unique;
    while !remaining.is_empty() {
        let pos = remaining
            .iter()
            .position(|a| a.shares_variable_with(&placed_vars))
            .unwrap_or(0);
        let atom = remaining.remove(pos);
        placed_vars.extend(atom.variables());
        ordered.push(atom);
    }

    let mut exhausted = false;
    if search(
        &ordered,
        0,
        &by_relation,
        &mut theta,
        budget,
        &mut exhausted,
    ) {
        SubsumptionOutcome {
            witness: Some(theta),
            exhausted: false,
        }
    } else {
        SubsumptionOutcome {
            witness: None,
            exhausted,
        }
    }
}

/// Attempts to extend θ so that `general` maps onto the (possibly
/// non-ground) atom `specific`. Constants must match exactly; variables of
/// the general atom may bind to any term of the specific atom.
fn match_atom(general: &Atom, specific: &Atom, theta: &mut Substitution) -> bool {
    if general.relation != specific.relation || general.arity() != specific.arity() {
        return false;
    }
    let mut bound_here: Vec<String> = Vec::new();
    for (g, s) in general.terms.iter().zip(specific.terms.iter()) {
        let ok = match g {
            Term::Const(_) => g == s,
            Term::Var(name) => {
                if theta.binds(name) {
                    theta.get(name) == Some(s)
                } else {
                    theta.bind(name.clone(), s.clone());
                    bound_here.push(name.clone());
                    true
                }
            }
        };
        if !ok {
            for v in bound_here {
                theta.unbind(&v);
            }
            return false;
        }
    }
    // Note: callers that need to backtrack past this atom must snapshot θ.
    // `search` handles that by cloning θ per candidate.
    let _ = bound_here;
    true
}

fn search(
    ordered: &[&Atom],
    index: usize,
    by_relation: &HashMap<&str, Vec<&Atom>>,
    theta: &mut Substitution,
    budget: &mut EvalBudget,
    exhausted: &mut bool,
) -> bool {
    let Some(general) = ordered.get(index) else {
        return true;
    };
    let candidates = by_relation
        .get(general.relation.as_str())
        .map(|v| v.as_slice())
        .unwrap_or(&[]);
    for candidate in candidates {
        if !budget.consume() {
            // The search was actually cut short (budget dry or the
            // cancellation token set): only now is a negative answer
            // approximate (a run that consumed its whole budget on its
            // final node still decided the question exactly).
            *exhausted = true;
            return false;
        }
        let mut attempt = theta.clone();
        if match_atom(general, candidate, &mut attempt)
            && search(
                ordered,
                index + 1,
                by_relation,
                &mut attempt,
                budget,
                exhausted,
            )
        {
            *theta = attempt;
            return true;
        }
    }
    false
}

/// Whether two clauses are θ-equivalent (each subsumes the other). This is
/// the syntactic notion of clause equivalence used when checking that two
/// learned definitions are "the same" across schemas.
pub fn theta_equivalent(a: &Clause, b: &Clause) -> bool {
    subsumes(a, b) && subsumes(b, a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Atom;
    use crate::term::Term;

    fn a(rel: &str, vars: &[&str]) -> Atom {
        Atom::vars(rel, vars)
    }

    #[test]
    fn clause_subsumes_itself() {
        let c = Clause::new(
            a("t", &["x", "y"]),
            vec![a("p", &["x", "z"]), a("q", &["z", "y"])],
        );
        assert!(subsumes(&c, &c));
        assert!(theta_equivalent(&c, &c));
    }

    #[test]
    fn more_general_clause_subsumes_specialization() {
        let general = Clause::new(a("t", &["x", "y"]), vec![a("p", &["x", "z"])]);
        let specific = Clause::new(
            a("t", &["x", "y"]),
            vec![a("p", &["x", "y"]), a("q", &["y"])],
        );
        assert!(subsumes(&general, &specific));
        assert!(!subsumes(&specific, &general));
    }

    #[test]
    fn subsumption_of_ground_bottom_clause() {
        // Candidate: collaborated(x,y) ← publication(p,x), publication(p,y)
        // Ground ⊥e: collaborated(ann,bob) ← publication(pl1,ann), publication(pl1,bob)
        let candidate = Clause::new(
            a("collaborated", &["x", "y"]),
            vec![a("publication", &["p", "x"]), a("publication", &["p", "y"])],
        );
        let ground = Clause::new(
            Atom::new(
                "collaborated",
                vec![Term::constant("ann"), Term::constant("bob")],
            ),
            vec![
                Atom::new(
                    "publication",
                    vec![Term::constant("pl1"), Term::constant("ann")],
                ),
                Atom::new(
                    "publication",
                    vec![Term::constant("pl1"), Term::constant("bob")],
                ),
            ],
        );
        let theta = subsumes_with(&candidate, &ground).expect("should subsume");
        assert_eq!(theta.get("x"), Some(&Term::constant("ann")));
        assert_eq!(theta.get("y"), Some(&Term::constant("bob")));
    }

    #[test]
    fn subsumption_fails_when_shared_variable_cannot_be_consistent() {
        // Candidate requires the same publication p for both authors; the
        // ground clause has different publications.
        let candidate = Clause::new(
            a("collaborated", &["x", "y"]),
            vec![a("publication", &["p", "x"]), a("publication", &["p", "y"])],
        );
        let ground = Clause::new(
            Atom::new(
                "collaborated",
                vec![Term::constant("ann"), Term::constant("bob")],
            ),
            vec![
                Atom::new(
                    "publication",
                    vec![Term::constant("pl1"), Term::constant("ann")],
                ),
                Atom::new(
                    "publication",
                    vec![Term::constant("pl2"), Term::constant("bob")],
                ),
            ],
        );
        assert!(!subsumes(&candidate, &ground));
    }

    #[test]
    fn constants_in_candidate_must_match_exactly() {
        let candidate = Clause::new(
            a("t", &["x"]),
            vec![Atom::new(
                "yearsInProgram",
                vec![Term::var("x"), Term::constant(seven())],
            )],
        );
        let ground_match = Clause::new(
            Atom::new("t", vec![Term::constant("s1")]),
            vec![Atom::new(
                "yearsInProgram",
                vec![Term::constant("s1"), Term::constant(seven())],
            )],
        );
        let ground_mismatch = Clause::new(
            Atom::new("t", vec![Term::constant("s1")]),
            vec![Atom::new(
                "yearsInProgram",
                vec![
                    Term::constant("s1"),
                    Term::Const(castor_relational::Value::int(3)),
                ],
            )],
        );
        assert!(subsumes(&candidate, &ground_match));
        assert!(!subsumes(&candidate, &ground_mismatch));
    }

    fn seven() -> castor_relational::Value {
        castor_relational::Value::int(7)
    }

    #[test]
    fn missing_relation_fails_fast() {
        let candidate = Clause::new(a("t", &["x"]), vec![a("nonexistent", &["x"])]);
        let ground = Clause::new(
            Atom::new("t", vec![Term::constant("a")]),
            vec![Atom::new("p", vec![Term::constant("a")])],
        );
        assert!(!subsumes(&candidate, &ground));
    }

    #[test]
    fn different_heads_never_subsume() {
        let c1 = Clause::new(a("t", &["x"]), vec![a("p", &["x"])]);
        let c2 = Clause::new(a("u", &["x"]), vec![a("p", &["x"])]);
        assert!(!subsumes(&c1, &c2));
    }

    #[test]
    fn theta_equivalence_of_variable_renamings() {
        let c1 = Clause::new(a("t", &["x", "y"]), vec![a("p", &["x", "y"])]);
        let c2 = Clause::new(a("t", &["u", "v"]), vec![a("p", &["u", "v"])]);
        assert!(theta_equivalent(&c1, &c2));
    }

    #[test]
    fn redundant_literals_do_not_affect_equivalence() {
        let minimal = Clause::new(a("t", &["x"]), vec![a("p", &["x", "y"])]);
        let redundant = Clause::new(
            a("t", &["x"]),
            vec![a("p", &["x", "y"]), a("p", &["x", "z"])],
        );
        assert!(theta_equivalent(&minimal, &redundant));
    }
}
