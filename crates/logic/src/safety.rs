//! Safety of clauses and definitions.
//!
//! A clause is *safe* if every head variable also appears in some body
//! literal; a definition is safe if all of its clauses are (Section 7.3).
//! Safe definitions produce finite answers over finite databases, which
//! matters for applications such as learning database queries by example.

use crate::clause::Clause;
use crate::definition::Definition;
use std::collections::BTreeSet;

/// Whether every head variable of the clause appears in its body.
pub fn is_safe(clause: &Clause) -> bool {
    let body_vars: BTreeSet<String> = clause.body.iter().flat_map(|a| a.variables()).collect();
    clause
        .head_variables()
        .iter()
        .all(|v| body_vars.contains(v))
}

/// Whether every clause of the definition is safe.
pub fn is_safe_definition(def: &Definition) -> bool {
    def.clauses.iter().all(is_safe)
}

/// The head variables of `clause` that do not appear in its body (empty for
/// safe clauses). Castor's safe negative reduction uses this to decide which
/// inclusion-class instances must be retained.
pub fn unbound_head_variables(clause: &Clause) -> BTreeSet<String> {
    let body_vars: BTreeSet<String> = clause.body.iter().flat_map(|a| a.variables()).collect();
    clause
        .head_variables()
        .into_iter()
        .filter(|v| !body_vars.contains(v))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Atom;

    #[test]
    fn ground_head_is_safe() {
        let c = Clause::fact(Atom::ground(
            "t",
            &castor_relational::Tuple::from_strs(&["a"]),
        ));
        assert!(is_safe(&c));
    }

    #[test]
    fn clause_with_all_head_vars_in_body_is_safe() {
        let c = Clause::new(
            Atom::vars("t", &["x", "y"]),
            vec![Atom::vars("p", &["x", "z"]), Atom::vars("q", &["z", "y"])],
        );
        assert!(is_safe(&c));
        assert!(unbound_head_variables(&c).is_empty());
    }

    #[test]
    fn clause_with_free_head_variable_is_unsafe() {
        let c = Clause::new(Atom::vars("t", &["x", "y"]), vec![Atom::vars("p", &["x"])]);
        assert!(!is_safe(&c));
        assert_eq!(
            unbound_head_variables(&c),
            ["y".to_string()].into_iter().collect()
        );
    }

    #[test]
    fn empty_body_with_variables_is_unsafe() {
        let c = Clause::fact(Atom::vars("t", &["x"]));
        assert!(!is_safe(&c));
    }

    #[test]
    fn definition_safety_requires_all_clauses_safe() {
        let safe = Clause::new(Atom::vars("t", &["x"]), vec![Atom::vars("p", &["x"])]);
        let unsafe_c = Clause::new(Atom::vars("t", &["x"]), vec![Atom::vars("p", &["y"])]);
        let d1 = Definition::new("t", vec![safe.clone()]);
        let d2 = Definition::new("t", vec![safe, unsafe_c]);
        assert!(is_safe_definition(&d1));
        assert!(!is_safe_definition(&d2));
    }
}
