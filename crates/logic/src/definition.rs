//! Horn definitions: unions of conjunctive queries with a common head
//! relation.

use crate::clause::Clause;
use std::fmt;

/// A Horn definition for a target relation: a set of Horn clauses whose
/// heads all use the target relation symbol.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Definition {
    /// The name of the target relation being defined.
    pub target: String,
    /// The clauses of the definition.
    pub clauses: Vec<Clause>,
}

impl Definition {
    /// Creates an empty definition for `target`.
    pub fn empty(target: impl Into<String>) -> Self {
        Definition {
            target: target.into(),
            clauses: Vec::new(),
        }
    }

    /// Creates a definition from clauses. Panics if any clause head uses a
    /// different relation than `target`.
    pub fn new(target: impl Into<String>, clauses: Vec<Clause>) -> Self {
        let target = target.into();
        for c in &clauses {
            assert_eq!(
                c.head.relation, target,
                "clause head `{}` does not match target `{}`",
                c.head.relation, target
            );
        }
        Definition { target, clauses }
    }

    /// Adds a clause to the definition.
    pub fn push(&mut self, clause: Clause) {
        assert_eq!(
            clause.head.relation, self.target,
            "clause head `{}` does not match target `{}`",
            clause.head.relation, self.target
        );
        self.clauses.push(clause);
    }

    /// Number of clauses.
    pub fn len(&self) -> usize {
        self.clauses.len()
    }

    /// Whether the definition has no clauses (covers nothing).
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Iterates over clauses.
    pub fn iter(&self) -> impl Iterator<Item = &Clause> {
        self.clauses.iter()
    }

    /// Total number of body literals across all clauses, a rough size
    /// measure used in experiment reports.
    pub fn total_body_literals(&self) -> usize {
        self.clauses.iter().map(|c| c.body_len()).sum()
    }

    /// The largest number of distinct variables in any clause; the `k`
    /// parameter in the query-complexity analysis of Section 8.
    pub fn max_variables(&self) -> usize {
        self.clauses
            .iter()
            .map(|c| c.distinct_variable_count())
            .max()
            .unwrap_or(0)
    }
}

impl fmt::Display for Definition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.clauses.is_empty() {
            return write!(f, "{} ← ⊥ (empty definition)", self.target);
        }
        for (i, c) in self.clauses.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Atom;

    #[test]
    fn push_enforces_target_relation() {
        let mut d = Definition::empty("advisedBy");
        d.push(Clause::new(
            Atom::vars("advisedBy", &["x", "y"]),
            vec![Atom::vars("publication", &["p", "x"])],
        ));
        assert_eq!(d.len(), 1);
    }

    #[test]
    #[should_panic(expected = "does not match target")]
    fn mismatched_head_rejected() {
        let mut d = Definition::empty("advisedBy");
        d.push(Clause::fact(Atom::vars("other", &["x"])));
    }

    #[test]
    fn size_measures() {
        let d = Definition::new(
            "t",
            vec![
                Clause::new(
                    Atom::vars("t", &["x"]),
                    vec![Atom::vars("p", &["x", "y"]), Atom::vars("q", &["y"])],
                ),
                Clause::new(Atom::vars("t", &["x"]), vec![Atom::vars("r", &["x"])]),
            ],
        );
        assert_eq!(d.total_body_literals(), 3);
        assert_eq!(d.max_variables(), 2);
        assert!(!d.is_empty());
    }

    #[test]
    fn display_lists_clauses_on_lines() {
        let d = Definition::new(
            "t",
            vec![
                Clause::new(Atom::vars("t", &["x"]), vec![Atom::vars("p", &["x"])]),
                Clause::new(Atom::vars("t", &["x"]), vec![Atom::vars("q", &["x"])]),
            ],
        );
        let s = d.to_string();
        assert_eq!(s.lines().count(), 2);
    }

    #[test]
    fn empty_definition_display() {
        let d = Definition::empty("t");
        assert!(d.to_string().contains("empty"));
    }
}
