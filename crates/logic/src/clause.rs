//! Ordered Horn clauses.
//!
//! Bottom-up learners (ProGolem, Castor) operate on *ordered* clauses where
//! the order and duplication of body literals matter (Section 6.4 of the
//! paper), so the body is a `Vec<Atom>` rather than a set. Set-style
//! equality is still available through [`Clause::same_literals`].

use crate::atom::Atom;
use crate::term::Term;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A definite Horn clause `head ← body`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Clause {
    /// The single positive literal (the target atom).
    pub head: Atom,
    /// The (ordered) list of body literals.
    pub body: Vec<Atom>,
}

impl Clause {
    /// Creates a clause.
    pub fn new(head: Atom, body: Vec<Atom>) -> Self {
        Clause { head, body }
    }

    /// Creates a clause with an empty body (the most general clause for a
    /// target relation — the root of a top-down refinement graph).
    pub fn fact(head: Atom) -> Self {
        Clause {
            head,
            body: Vec::new(),
        }
    }

    /// Number of literals in the clause, counting the head; the paper calls
    /// the number of body literals the clause *length*, exposed separately
    /// as [`Clause::body_len`].
    pub fn len(&self) -> usize {
        self.body.len() + 1
    }

    /// Number of body literals (the clause length used by the
    /// `clauselength` parameter of top-down learners).
    pub fn body_len(&self) -> usize {
        self.body.len()
    }

    /// Whether the clause has an empty body.
    pub fn is_empty(&self) -> bool {
        self.body.is_empty()
    }

    /// Whether every literal in the clause is ground.
    pub fn is_ground(&self) -> bool {
        self.head.is_ground() && self.body.iter().all(Atom::is_ground)
    }

    /// All variable names appearing in the clause.
    pub fn variables(&self) -> BTreeSet<String> {
        let mut vars = self.head.variables();
        for a in &self.body {
            vars.extend(a.variables());
        }
        vars
    }

    /// Variables appearing in the head literal.
    pub fn head_variables(&self) -> BTreeSet<String> {
        self.head.variables()
    }

    /// Number of distinct variables; Castor's bottom-clause construction
    /// uses this as its stopping condition because it is invariant under
    /// (de)composition (Section 7.1).
    pub fn distinct_variable_count(&self) -> usize {
        self.variables().len()
    }

    /// Adds a literal to the end of the body.
    pub fn push(&mut self, atom: Atom) {
        self.body.push(atom);
    }

    /// The depth of each variable, following Section 6.1: head variables
    /// have depth 0; any other variable `x` has depth
    /// `min over body literals containing x of (1 + min depth of the other
    /// variables in that literal)`. Variables unreachable from the head get
    /// `usize::MAX`.
    pub fn variable_depths(&self) -> BTreeMap<String, usize> {
        let mut depths: BTreeMap<String, usize> = BTreeMap::new();
        for v in self.head.variables() {
            depths.insert(v, 0);
        }
        for v in self.variables() {
            depths.entry(v).or_insert(usize::MAX);
        }
        // Relax repeatedly until a fixpoint (the body is small in practice).
        loop {
            let mut changed = false;
            for atom in &self.body {
                let vars: Vec<String> = atom.variables().into_iter().collect();
                let min_depth = vars.iter().map(|v| depths[v]).min().unwrap_or(usize::MAX);
                if min_depth == usize::MAX {
                    continue;
                }
                for v in &vars {
                    let candidate = min_depth.saturating_add(1);
                    let current = depths[v];
                    if candidate < current && current != 0 {
                        depths.insert(v.clone(), candidate);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        depths
    }

    /// The depth of the clause: the maximum literal depth, where a literal's
    /// depth is the maximum depth of its variables.
    pub fn depth(&self) -> usize {
        let depths = self.variable_depths();
        self.body
            .iter()
            .map(|a| a.variables().iter().map(|v| depths[v]).max().unwrap_or(0))
            .max()
            .unwrap_or(0)
    }

    /// Whether the two clauses have the same head and the same *set* of body
    /// literals (ignoring order and duplicates).
    pub fn same_literals(&self, other: &Clause) -> bool {
        if self.head != other.head {
            return false;
        }
        let a: BTreeSet<&Atom> = self.body.iter().collect();
        let b: BTreeSet<&Atom> = other.body.iter().collect();
        a == b
    }

    /// Removes body literals that are not *head-connected*: literals that
    /// cannot be reached from the head through shared variables. ProGolem's
    /// and Castor's ARMG drop such literals after removing a blocking atom.
    pub fn remove_unconnected(&mut self) {
        let mut reachable: BTreeSet<String> = self.head.variables();
        loop {
            let before = reachable.len();
            for atom in &self.body {
                if atom.shares_variable_with(&reachable) {
                    reachable.extend(atom.variables());
                }
            }
            if reachable.len() == before {
                break;
            }
        }
        self.body.retain(|a| {
            // Ground body literals carry no variables; keep them only if the
            // clause head is itself ground (rare), otherwise they are
            // unconnected by definition.
            if a.variables().is_empty() {
                return self.head.variables().is_empty();
            }
            a.shares_variable_with(&reachable)
        });
    }

    /// Renames every variable by applying `f` to its name. Used to
    /// standardize clauses apart before lgg or subsumption checks.
    pub fn rename_variables(&self, f: impl Fn(&str) -> String) -> Clause {
        let rename_atom = |a: &Atom| Atom {
            relation: a.relation.clone(),
            terms: a
                .terms
                .iter()
                .map(|t| match t {
                    Term::Var(name) => Term::Var(f(name)),
                    Term::Const(_) => t.clone(),
                })
                .collect(),
        };
        Clause {
            head: rename_atom(&self.head),
            body: self.body.iter().map(rename_atom).collect(),
        }
    }

    /// Renames all variables with a numeric suffix, producing a clause with
    /// no variable in common with any clause renamed with a different suffix.
    pub fn standardize_apart(&self, suffix: usize) -> Clause {
        self.rename_variables(|name| format!("{name}_{suffix}"))
    }
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.body.is_empty() {
            return write!(f, "{}.", self.head);
        }
        let body: Vec<String> = self.body.iter().map(|a| a.to_string()).collect();
        write!(f, "{} ← {}", self.head, body.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clause(head: Atom, body: Vec<Atom>) -> Clause {
        Clause::new(head, body)
    }

    #[test]
    fn length_counts_body_literals() {
        let c = clause(
            Atom::vars("t", &["x"]),
            vec![Atom::vars("p", &["x", "y"]), Atom::vars("q", &["y"])],
        );
        assert_eq!(c.body_len(), 2);
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
        assert!(Clause::fact(Atom::vars("t", &["x"])).is_empty());
    }

    #[test]
    fn variable_depths_follow_paper_definition() {
        // taLevel(x,y) ← ta(c,x,t), courseLevel(c,y): depth 1 (Example 6.1).
        let c = clause(
            Atom::vars("taLevel", &["x", "y"]),
            vec![
                Atom::vars("ta", &["c", "x", "t"]),
                Atom::vars("courseLevel", &["c", "y"]),
            ],
        );
        let d = c.variable_depths();
        assert_eq!(d["x"], 0);
        assert_eq!(d["y"], 0);
        assert_eq!(d["c"], 1);
        assert_eq!(d["t"], 1);
        assert_eq!(c.depth(), 1);
    }

    #[test]
    fn depth_two_clause_from_example_6_1() {
        // commonLevel(x,y) ← ta(c1,x,t1), ta(c2,y,t2),
        //                    courseLevel(c1,l), courseLevel(c2,l): depth 2.
        let c = clause(
            Atom::vars("commonLevel", &["x", "y"]),
            vec![
                Atom::vars("ta", &["c1", "x", "t1"]),
                Atom::vars("ta", &["c2", "y", "t2"]),
                Atom::vars("courseLevel", &["c1", "l"]),
                Atom::vars("courseLevel", &["c2", "l"]),
            ],
        );
        assert_eq!(c.depth(), 2);
    }

    #[test]
    fn same_literals_ignores_order_and_duplicates() {
        let a = clause(
            Atom::vars("t", &["x"]),
            vec![Atom::vars("p", &["x"]), Atom::vars("q", &["x"])],
        );
        let b = clause(
            Atom::vars("t", &["x"]),
            vec![
                Atom::vars("q", &["x"]),
                Atom::vars("p", &["x"]),
                Atom::vars("p", &["x"]),
            ],
        );
        assert!(a.same_literals(&b));
        assert_ne!(a, b); // ordered equality still distinguishes them
    }

    #[test]
    fn remove_unconnected_drops_unreachable_literals() {
        let mut c = clause(
            Atom::vars("t", &["x"]),
            vec![
                Atom::vars("p", &["x", "y"]),
                Atom::vars("q", &["y"]),
                Atom::vars("r", &["z", "w"]), // unreachable from head
            ],
        );
        c.remove_unconnected();
        assert_eq!(c.body_len(), 2);
        assert!(c.body.iter().all(|a| a.relation != "r"));
    }

    #[test]
    fn remove_unconnected_keeps_transitively_connected() {
        let mut c = clause(
            Atom::vars("t", &["x"]),
            vec![
                Atom::vars("p", &["x", "y"]),
                Atom::vars("q", &["y", "z"]),
                Atom::vars("r", &["z"]),
            ],
        );
        c.remove_unconnected();
        assert_eq!(c.body_len(), 3);
    }

    #[test]
    fn standardize_apart_removes_shared_variables() {
        let c = clause(Atom::vars("t", &["x"]), vec![Atom::vars("p", &["x", "y"])]);
        let c1 = c.standardize_apart(1);
        let c2 = c.standardize_apart(2);
        assert!(c1.variables().is_disjoint(&c2.variables()));
    }

    #[test]
    fn distinct_variable_count_matches_variables() {
        let c = clause(
            Atom::vars("t", &["x", "y"]),
            vec![Atom::vars("p", &["x", "z"]), Atom::vars("q", &["z", "y"])],
        );
        assert_eq!(c.distinct_variable_count(), 3);
    }

    #[test]
    fn display_renders_datalog_style() {
        let c = clause(
            Atom::vars("collaborated", &["x", "y"]),
            vec![
                Atom::vars("publication", &["p", "x"]),
                Atom::vars("publication", &["p", "y"]),
            ],
        );
        assert_eq!(
            c.to_string(),
            "collaborated(x,y) ← publication(p,x), publication(p,y)"
        );
    }
}
