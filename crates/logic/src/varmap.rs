//! Consistent constant→variable mapping used by bottom-clause construction.
//!
//! Every bottom-clause construction algorithm (the standard one of Section
//! 6.1, and Castor's IND-aware one of Section 7.1) maintains a one-to-one
//! mapping from the constants encountered in database tuples to fresh
//! variables, so that the same constant is always replaced by the same
//! variable across literals.

use crate::atom::Atom;
use crate::term::Term;
use castor_relational::{Tuple, Value};
use std::collections::HashMap;

/// A bijective mapping between constants and variable names.
#[derive(Debug, Clone, Default)]
pub struct VariableMap {
    to_var: HashMap<Value, String>,
    counter: usize,
}

impl VariableMap {
    /// Creates an empty mapping.
    pub fn new() -> Self {
        VariableMap::default()
    }

    /// Returns the variable assigned to `value`, creating a fresh variable
    /// (`V0`, `V1`, ...) on first sight.
    pub fn variable_for(&mut self, value: &Value) -> String {
        if let Some(v) = self.to_var.get(value) {
            return v.clone();
        }
        let name = format!("V{}", self.counter);
        self.counter += 1;
        self.to_var.insert(value.clone(), name.clone());
        name
    }

    /// Returns the variable assigned to `value` if one exists, without
    /// creating a new one.
    pub fn existing_variable(&self, value: &Value) -> Option<&str> {
        self.to_var.get(value).map(|s| s.as_str())
    }

    /// Whether the constant has already been seen.
    pub fn has_seen(&self, value: &Value) -> bool {
        self.to_var.contains_key(value)
    }

    /// Number of distinct constants mapped so far. Because the mapping is
    /// one-to-one, this equals the number of distinct variables, which is
    /// Castor's bottom-clause stopping condition.
    pub fn distinct_variables(&self) -> usize {
        self.to_var.len()
    }

    /// Converts a database tuple into a "variablized" atom for `relation`,
    /// assigning fresh variables to unseen constants.
    pub fn variablize(&mut self, relation: &str, tuple: &Tuple) -> Atom {
        Atom {
            relation: relation.to_string(),
            terms: tuple
                .iter()
                .map(|v| Term::var(self.variable_for(v)))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_constant_gets_same_variable() {
        let mut m = VariableMap::new();
        let a = m.variable_for(&Value::str("alice"));
        let b = m.variable_for(&Value::str("bob"));
        let a2 = m.variable_for(&Value::str("alice"));
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(m.distinct_variables(), 2);
    }

    #[test]
    fn variablize_builds_atom_with_shared_variables() {
        let mut m = VariableMap::new();
        let t1 = Tuple::from_strs(&["c1", "alice"]);
        let t2 = Tuple::from_strs(&["c1", "bob"]);
        let a1 = m.variablize("ta", &t1);
        let a2 = m.variablize("ta", &t2);
        // The shared constant "c1" maps to the same variable in both atoms.
        assert_eq!(a1.terms[0], a2.terms[0]);
        assert_ne!(a1.terms[1], a2.terms[1]);
    }

    #[test]
    fn existing_variable_does_not_allocate() {
        let mut m = VariableMap::new();
        assert!(m.existing_variable(&Value::str("x")).is_none());
        assert!(!m.has_seen(&Value::str("x")));
        m.variable_for(&Value::str("x"));
        assert!(m.has_seen(&Value::str("x")));
        assert_eq!(m.distinct_variables(), 1);
    }
}
