//! Clause and definition evaluation over database instances.
//!
//! The result of applying a Horn definition `h_R` to an instance `I`
//! (written `h_R(I)` in Section 3.2.2) is the set of head instantiations
//! whose body is satisfied in `I`. This module evaluates clauses with a
//! backtracking join that drives candidate generation from the per-attribute
//! hash indexes of [`castor_relational::RelationInstance`].

use crate::atom::Atom;
use crate::clause::Clause;
use crate::definition::Definition;
use crate::substitution::Substitution;
use crate::term::Term;
use castor_relational::{DatabaseInstance, Tuple, Value};
use std::collections::HashSet;

/// Backtracking budget for one clause evaluation / coverage test. Body
/// satisfiability over a database is NP-hard in the clause size; bounding
/// the number of candidate tuples explored keeps coverage testing
/// predictable on the long clauses bottom-up learners produce (an exhausted
/// budget is treated as "not satisfiable", mirroring the approximate
/// subsumption the paper uses).
const EVAL_NODE_BUDGET: usize = 30_000;

/// Evaluates a clause over `db`, returning every head tuple derivable from
/// the instance. Unsafe clauses (head variables not bound by the body) yield
/// only the instantiations justified by the body; unbound head variables
/// make the clause produce no tuples, mirroring the finite-answer semantics
/// used in the paper's discussion of safe clauses.
pub fn clause_results(clause: &Clause, db: &DatabaseInstance) -> HashSet<Tuple> {
    let mut results = HashSet::new();
    let mut theta = Substitution::new();
    let mut budget = EVAL_NODE_BUDGET;
    enumerate(db, &clause.body, &mut theta, &mut budget, &mut |theta| {
        let head = theta.apply_atom(&clause.head);
        if let Some(tuple) = head.to_tuple() {
            results.insert(tuple);
        }
        false // keep enumerating: we want every result
    });
    results
}

/// Evaluates a definition (union of clauses) over `db`.
pub fn definition_results(def: &Definition, db: &DatabaseInstance) -> HashSet<Tuple> {
    let mut out = HashSet::new();
    for clause in &def.clauses {
        out.extend(clause_results(clause, db));
    }
    out
}

/// Whether the clause covers `example` relative to `db`: binding the head
/// arguments to the example's constants, is the body satisfiable in `db`?
pub fn covers_example(clause: &Clause, db: &DatabaseInstance, example: &Tuple) -> bool {
    if clause.head.arity() != example.arity() {
        return false;
    }
    let mut theta = Substitution::new();
    for (term, value) in clause.head.terms.iter().zip(example.iter()) {
        match term {
            Term::Const(c) => {
                if c != value {
                    return false;
                }
            }
            Term::Var(name) => {
                if !theta.try_bind(name, &Term::Const(value.clone())) {
                    return false;
                }
            }
        }
    }
    let mut found = false;
    let mut budget = EVAL_NODE_BUDGET;
    enumerate(db, &clause.body, &mut theta, &mut budget, &mut |_| {
        found = true;
        true // stop at the first satisfying assignment
    });
    found
}

/// Whether any clause of the definition covers the example.
pub fn definition_covers(def: &Definition, db: &DatabaseInstance, example: &Tuple) -> bool {
    def.clauses.iter().any(|c| covers_example(c, db, example))
}

/// Counts how many of `examples` are covered by the definition.
pub fn covered_count(def: &Definition, db: &DatabaseInstance, examples: &[Tuple]) -> usize {
    examples
        .iter()
        .filter(|e| definition_covers(def, db, e))
        .count()
}

/// Backtracking evaluation of the remaining body literals under θ, invoking
/// `on_solution` for every satisfying assignment. `on_solution` returns
/// `true` to stop the search early (used by boolean coverage tests);
/// `enumerate` propagates that signal back up as its own return value.
fn enumerate(
    db: &DatabaseInstance,
    remaining: &[Atom],
    theta: &mut Substitution,
    budget: &mut usize,
    on_solution: &mut dyn FnMut(&Substitution) -> bool,
) -> bool {
    // Pick the next literal to solve: the one with the most bound arguments
    // (most selective first). This mirrors how an RDBMS would choose an
    // index-backed access path.
    let Some((pos, _)) = remaining
        .iter()
        .enumerate()
        .max_by_key(|(_, atom)| bound_positions(atom, theta).len())
    else {
        return on_solution(theta);
    };
    let atom = &remaining[pos];
    let rest: Vec<Atom> = remaining
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != pos)
        .map(|(_, a)| a.clone())
        .collect();

    let Some(instance) = db.relation(&atom.relation) else {
        return false; // unknown relation ⇒ body unsatisfiable
    };

    let bound = bound_positions(atom, theta);
    let candidates: Vec<&Tuple> = if bound.is_empty() {
        instance.iter().collect()
    } else {
        let positions: Vec<usize> = bound.iter().map(|(p, _)| *p).collect();
        let key: Vec<Value> = bound.iter().map(|(_, v)| v.clone()).collect();
        instance.select_on_positions(&positions, &key)
    };

    for tuple in candidates {
        if *budget == 0 {
            return false;
        }
        *budget -= 1;
        let mut attempt = theta.clone();
        if unify_with_tuple(atom, tuple, &mut attempt)
            && enumerate(db, &rest, &mut attempt, budget, on_solution)
        {
            return true;
        }
    }
    false
}

/// The argument positions of `atom` that are constants or θ-bound variables,
/// together with the constant each must equal.
fn bound_positions(atom: &Atom, theta: &Substitution) -> Vec<(usize, Value)> {
    let mut out = Vec::new();
    for (i, term) in atom.terms.iter().enumerate() {
        match term {
            Term::Const(v) => out.push((i, v.clone())),
            Term::Var(name) => {
                if let Some(Term::Const(v)) = theta.get(name) {
                    out.push((i, v.clone()));
                }
            }
        }
    }
    out
}

/// Extends θ so that `atom` matches the ground `tuple`.
fn unify_with_tuple(atom: &Atom, tuple: &Tuple, theta: &mut Substitution) -> bool {
    if atom.arity() != tuple.arity() {
        return false;
    }
    for (term, value) in atom.terms.iter().zip(tuple.iter()) {
        match term {
            Term::Const(c) => {
                if c != value {
                    return false;
                }
            }
            Term::Var(name) => {
                if !theta.try_bind(name, &Term::Const(value.clone())) {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use castor_relational::{RelationSymbol, Schema};

    fn collaboration_db() -> DatabaseInstance {
        let mut schema = Schema::new("test");
        schema
            .add_relation(RelationSymbol::new("publication", &["title", "person"]))
            .add_relation(RelationSymbol::new("professor", &["prof"]));
        let mut db = DatabaseInstance::empty(&schema);
        for (t, p) in [
            ("p1", "ann"),
            ("p1", "bob"),
            ("p2", "ann"),
            ("p3", "carol"),
        ] {
            db.insert("publication", Tuple::from_strs(&[t, p])).unwrap();
        }
        db.insert("professor", Tuple::from_strs(&["ann"])).unwrap();
        db.insert("professor", Tuple::from_strs(&["bob"])).unwrap();
        db
    }

    fn collaborated_clause() -> Clause {
        Clause::new(
            Atom::vars("collaborated", &["x", "y"]),
            vec![
                Atom::vars("publication", &["p", "x"]),
                Atom::vars("publication", &["p", "y"]),
            ],
        )
    }

    #[test]
    fn clause_results_enumerate_head_tuples() {
        let db = collaboration_db();
        let results = clause_results(&collaborated_clause(), &db);
        // Co-authorship pairs including self-pairs: (ann,ann),(ann,bob),
        // (bob,ann),(bob,bob),(carol,carol).
        assert!(results.contains(&Tuple::from_strs(&["ann", "bob"])));
        assert!(results.contains(&Tuple::from_strs(&["bob", "ann"])));
        assert!(results.contains(&Tuple::from_strs(&["carol", "carol"])));
        assert!(!results.contains(&Tuple::from_strs(&["ann", "carol"])));
        assert_eq!(results.len(), 5);
    }

    #[test]
    fn covers_example_checks_body_satisfiability() {
        let db = collaboration_db();
        let c = collaborated_clause();
        assert!(covers_example(&c, &db, &Tuple::from_strs(&["ann", "bob"])));
        assert!(!covers_example(&c, &db, &Tuple::from_strs(&["ann", "carol"])));
    }

    #[test]
    fn constants_in_body_restrict_results() {
        let db = collaboration_db();
        let c = Clause::new(
            Atom::vars("hasPub", &["x"]),
            vec![Atom::new(
                "publication",
                vec![Term::constant("p1"), Term::var("x")],
            )],
        );
        let results = clause_results(&c, &db);
        assert_eq!(results.len(), 2);
        assert!(results.contains(&Tuple::from_strs(&["ann"])));
    }

    #[test]
    fn definition_union_semantics() {
        let db = collaboration_db();
        let def = Definition::new(
            "person",
            vec![
                Clause::new(
                    Atom::vars("person", &["x"]),
                    vec![Atom::vars("professor", &["x"])],
                ),
                Clause::new(
                    Atom::vars("person", &["x"]),
                    vec![Atom::vars("publication", &["p", "x"])],
                ),
            ],
        );
        let results = definition_results(&def, &db);
        assert_eq!(results.len(), 3); // ann, bob, carol
        assert!(definition_covers(&def, &db, &Tuple::from_strs(&["carol"])));
        assert_eq!(
            covered_count(
                &def,
                &db,
                &[Tuple::from_strs(&["ann"]), Tuple::from_strs(&["nobody"])]
            ),
            1
        );
    }

    #[test]
    fn unknown_relation_in_body_yields_nothing() {
        let db = collaboration_db();
        let c = Clause::new(
            Atom::vars("t", &["x"]),
            vec![Atom::vars("missingRelation", &["x"])],
        );
        assert!(clause_results(&c, &db).is_empty());
        assert!(!covers_example(&c, &db, &Tuple::from_strs(&["ann"])));
    }

    #[test]
    fn unsafe_clause_produces_no_tuples() {
        let db = collaboration_db();
        // Head variable y never appears in the body.
        let c = Clause::new(
            Atom::vars("t", &["x", "y"]),
            vec![Atom::vars("professor", &["x"])],
        );
        assert!(clause_results(&c, &db).is_empty());
    }

    #[test]
    fn empty_body_clause_with_ground_head() {
        let db = collaboration_db();
        let c = Clause::fact(Atom::new(
            "t",
            vec![Term::constant("a"), Term::constant("b")],
        ));
        let results = clause_results(&c, &db);
        assert_eq!(results.len(), 1);
        assert!(results.contains(&Tuple::from_strs(&["a", "b"])));
    }

    #[test]
    fn head_with_constant_filters_examples() {
        let db = collaboration_db();
        let c = Clause::new(
            Atom::new("t", vec![Term::constant("ann")]),
            vec![Atom::vars("professor", &["x"])],
        );
        assert!(covers_example(&c, &db, &Tuple::from_strs(&["ann"])));
        assert!(!covers_example(&c, &db, &Tuple::from_strs(&["bob"])));
    }
}
