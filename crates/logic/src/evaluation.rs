//! Clause and definition evaluation over database instances.
//!
//! The result of applying a Horn definition `h_R` to an instance `I`
//! (written `h_R(I)` in Section 3.2.2) is the set of head instantiations
//! whose body is satisfied in `I`. This module evaluates clauses with a
//! backtracking join that drives candidate generation from the per-attribute
//! hash indexes of [`castor_relational::RelationInstance`].
//!
//! Evaluation is *budgeted*: body satisfiability over a database is NP-hard
//! in the clause size, so each test explores at most a configurable number
//! of candidate tuples. Unlike the original implementation, an exhausted
//! budget is reported as [`CoverageOutcome::Exhausted`] rather than silently
//! conflated with "not covered" — callers (notably `castor-engine`) surface
//! the distinction through their statistics.

use crate::atom::Atom;
use crate::clause::Clause;
use crate::definition::Definition;
use crate::substitution::Substitution;
use crate::term::Term;
use castor_relational::{DatabaseInstance, Tuple, Value};
use std::collections::HashSet;

/// Default backtracking budget for one clause evaluation / coverage test.
/// Bounding the number of candidate tuples explored keeps coverage testing
/// predictable on the long clauses bottom-up learners produce (an exhausted
/// budget mirrors the approximate subsumption the paper uses).
pub const DEFAULT_EVAL_NODE_BUDGET: usize = 30_000;

/// The outcome of one budgeted coverage test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoverageOutcome {
    /// A satisfying assignment of the body was found.
    Covered,
    /// The search space was exhausted without finding one.
    NotCovered,
    /// The node budget ran out before the search completed; the example is
    /// *treated* as not covered, but the caller can tell the difference.
    Exhausted,
}

impl CoverageOutcome {
    /// Whether the example counts as covered.
    pub fn is_covered(self) -> bool {
        matches!(self, CoverageOutcome::Covered)
    }

    /// Whether the verdict is approximate (budget ran out).
    pub fn is_exhausted(self) -> bool {
        matches!(self, CoverageOutcome::Exhausted)
    }
}

/// A consumable node budget for one evaluation, tracking whether it ever ran
/// dry (which downgrades a "not covered" verdict to "exhausted").
///
/// A budget can additionally carry up to two *abort tokens*
/// (`Arc<AtomicBool>`s shared with a serving layer): a cancellation token
/// and a deadline token. Once either is set, the next
/// [`EvalBudget::consume`] fails exactly like an exhausted budget, so a
/// long-running coverage job unwinds through its normal budget-exhaustion
/// path within one candidate tuple of the cancel request (or of the
/// deadline watchdog firing).
#[derive(Debug, Clone)]
pub struct EvalBudget {
    remaining: usize,
    exhausted: bool,
    cancelled: bool,
    cancel: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>,
    deadline: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>,
}

impl EvalBudget {
    /// A budget of `nodes` candidate tuples.
    pub fn new(nodes: usize) -> Self {
        EvalBudget {
            remaining: nodes,
            exhausted: false,
            cancelled: false,
            cancel: None,
            deadline: None,
        }
    }

    /// A budget of `nodes` candidate tuples that also aborts (as an
    /// exhaustion) once `cancel` is set.
    pub fn with_cancel(
        nodes: usize,
        cancel: std::sync::Arc<std::sync::atomic::AtomicBool>,
    ) -> Self {
        EvalBudget {
            remaining: nodes,
            exhausted: false,
            cancelled: false,
            cancel: Some(cancel),
            deadline: None,
        }
    }

    /// Adds a deadline token: a second abort source, set by a deadline
    /// watchdog rather than an explicit cancel, sharing the same
    /// exhaustion-path unwind. Kept separate from the cancellation token so
    /// a session cancel and a per-job deadline can coexist on one budget.
    pub fn with_deadline_token(
        mut self,
        deadline: std::sync::Arc<std::sync::atomic::AtomicBool>,
    ) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Consumes one node; returns `false` (and records exhaustion) when the
    /// budget has run out or an abort token (cancel or deadline) was set.
    /// Public so alternative executors (the compiled plans of
    /// `castor-engine`) share the same accounting.
    pub fn consume(&mut self) -> bool {
        let tripped = |token: &Option<std::sync::Arc<std::sync::atomic::AtomicBool>>| {
            token
                .as_ref()
                .is_some_and(|t| t.load(std::sync::atomic::Ordering::Relaxed))
        };
        if tripped(&self.cancel) || tripped(&self.deadline) {
            self.cancelled = true;
            self.exhausted = true;
            return false;
        }
        if self.remaining == 0 {
            self.exhausted = true;
            return false;
        }
        self.remaining -= 1;
        true
    }

    /// Whether the budget ran out at any point during the search.
    pub fn was_exhausted(&self) -> bool {
        self.exhausted
    }

    /// Whether the search was aborted by an abort token — cancellation or
    /// deadline (implies [`EvalBudget::was_exhausted`]).
    pub fn was_cancelled(&self) -> bool {
        self.cancelled
    }

    /// Whether an installed abort token (cancel or deadline) is currently
    /// set: the next [`EvalBudget::consume`] (of this budget or any clone
    /// of it) will abort through the exhaustion path. Coverage engines
    /// consult this to keep abort-driven verdicts out of budget-keyed
    /// exhaustion caches.
    pub fn cancel_pending(&self) -> bool {
        let tripped = |token: &Option<std::sync::Arc<std::sync::atomic::AtomicBool>>| {
            token
                .as_ref()
                .is_some_and(|t| t.load(std::sync::atomic::Ordering::Relaxed))
        };
        tripped(&self.cancel) || tripped(&self.deadline)
    }

    /// Nodes still available.
    pub fn remaining(&self) -> usize {
        self.remaining
    }
}

impl Default for EvalBudget {
    fn default() -> Self {
        EvalBudget::new(DEFAULT_EVAL_NODE_BUDGET)
    }
}

/// Evaluates a clause over `db`, returning every head tuple derivable from
/// the instance. Unsafe clauses (head variables not bound by the body) yield
/// only the instantiations justified by the body; unbound head variables
/// make the clause produce no tuples, mirroring the finite-answer semantics
/// used in the paper's discussion of safe clauses.
pub fn clause_results(clause: &Clause, db: &DatabaseInstance) -> HashSet<Tuple> {
    clause_results_budgeted(clause, db, &mut EvalBudget::default())
}

/// [`clause_results`] with an explicit, reusable budget.
pub fn clause_results_budgeted(
    clause: &Clause,
    db: &DatabaseInstance,
    budget: &mut EvalBudget,
) -> HashSet<Tuple> {
    let mut results = HashSet::new();
    let mut theta = Substitution::new();
    let mut search = Search::new(db, &clause.body, budget);
    search.run(&mut theta, &mut |theta| {
        let head = theta.apply_atom(&clause.head);
        if let Some(tuple) = head.to_tuple() {
            results.insert(tuple);
        }
        false // keep enumerating: we want every result
    });
    results
}

/// Evaluates a definition (union of clauses) over `db`.
pub fn definition_results(def: &Definition, db: &DatabaseInstance) -> HashSet<Tuple> {
    let mut out = HashSet::new();
    for clause in &def.clauses {
        out.extend(clause_results(clause, db));
    }
    out
}

/// Whether the clause covers `example` relative to `db`: binding the head
/// arguments to the example's constants, is the body satisfiable in `db`?
/// An exhausted budget counts as "not covered"; use
/// [`covers_example_budgeted`] to observe the distinction.
pub fn covers_example(clause: &Clause, db: &DatabaseInstance, example: &Tuple) -> bool {
    covers_example_budgeted(clause, db, example, &mut EvalBudget::default()).is_covered()
}

/// Budgeted coverage test with a tri-state outcome.
pub fn covers_example_budgeted(
    clause: &Clause,
    db: &DatabaseInstance,
    example: &Tuple,
    budget: &mut EvalBudget,
) -> CoverageOutcome {
    let Some(mut theta) = bind_head(clause, example) else {
        return CoverageOutcome::NotCovered;
    };
    let mut found = false;
    let mut search = Search::new(db, &clause.body, budget);
    search.run(&mut theta, &mut |_| {
        found = true;
        true // stop at the first satisfying assignment
    });
    if found {
        CoverageOutcome::Covered
    } else if budget.was_exhausted() {
        CoverageOutcome::Exhausted
    } else {
        CoverageOutcome::NotCovered
    }
}

/// Binds the clause head to the example's constants, or `None` when a head
/// constant conflicts with the example (in which case the clause can never
/// cover it).
pub fn bind_head(clause: &Clause, example: &Tuple) -> Option<Substitution> {
    if clause.head.arity() != example.arity() {
        return None;
    }
    let mut theta = Substitution::new();
    for (term, value) in clause.head.terms.iter().zip(example.iter()) {
        match term {
            Term::Const(c) => {
                if c != value {
                    return None;
                }
            }
            Term::Var(name) => {
                if !theta.try_bind(name, &Term::Const(value.clone())) {
                    return None;
                }
            }
        }
    }
    Some(theta)
}

/// Whether any clause of the definition covers the example.
pub fn definition_covers(def: &Definition, db: &DatabaseInstance, example: &Tuple) -> bool {
    def.clauses.iter().any(|c| covers_example(c, db, example))
}

/// Counts how many of `examples` are covered by the definition.
pub fn covered_count(def: &Definition, db: &DatabaseInstance, examples: &[Tuple]) -> usize {
    examples
        .iter()
        .filter(|e| definition_covers(def, db, e))
        .count()
}

/// Backtracking evaluation of a clause body under θ. Literals are selected
/// dynamically (most θ-bound arguments first, mirroring an index-backed
/// access path), tracked through a boolean mask over the body instead of
/// re-allocating the remaining-literal vector at every node, and bindings
/// are undone through a trail instead of cloning θ per candidate tuple.
struct Search<'a> {
    db: &'a DatabaseInstance,
    body: &'a [Atom],
    used: Vec<bool>,
    trail: Vec<String>,
    budget: &'a mut EvalBudget,
}

impl<'a> Search<'a> {
    fn new(db: &'a DatabaseInstance, body: &'a [Atom], budget: &'a mut EvalBudget) -> Self {
        Search {
            db,
            body,
            used: vec![false; body.len()],
            trail: Vec::new(),
            budget,
        }
    }

    /// Runs the search, invoking `on_solution` for every satisfying
    /// assignment; `on_solution` returns `true` to stop early.
    fn run(
        &mut self,
        theta: &mut Substitution,
        on_solution: &mut dyn FnMut(&Substitution) -> bool,
    ) -> bool {
        self.enumerate(self.body.len(), theta, on_solution)
    }

    fn enumerate(
        &mut self,
        remaining: usize,
        theta: &mut Substitution,
        on_solution: &mut dyn FnMut(&Substitution) -> bool,
    ) -> bool {
        if remaining == 0 {
            return on_solution(theta);
        }
        // Pick the next literal to solve: the unused one with the most bound
        // arguments (most selective first).
        let pos = (0..self.body.len())
            .filter(|&i| !self.used[i])
            .max_by_key(|&i| bound_positions(&self.body[i], theta).len())
            .expect("remaining > 0 implies an unused literal");
        let atom = &self.body[pos];

        let Some(instance) = self.db.relation(&atom.relation) else {
            return false; // unknown relation ⇒ body unsatisfiable
        };

        let bound = bound_positions(atom, theta);
        let candidates: Vec<&Tuple> = if bound.is_empty() {
            instance.iter().collect()
        } else {
            let positions: Vec<usize> = bound.iter().map(|(p, _)| *p).collect();
            let key: Vec<Value> = bound.iter().map(|(_, v)| v.clone()).collect();
            instance.select_on_positions(&positions, &key)
        };

        self.used[pos] = true;
        let mut stop = false;
        for tuple in candidates {
            if !self.budget.consume() {
                break;
            }
            let mark = self.trail.len();
            if unify_with_tuple(atom, tuple, theta, &mut self.trail)
                && self.enumerate(remaining - 1, theta, on_solution)
            {
                stop = true;
            }
            for name in self.trail.drain(mark..) {
                theta.unbind(&name);
            }
            if stop {
                break;
            }
        }
        self.used[pos] = false;
        stop
    }
}

/// The argument positions of `atom` that are constants or θ-bound variables,
/// together with the constant each must equal.
fn bound_positions(atom: &Atom, theta: &Substitution) -> Vec<(usize, Value)> {
    let mut out = Vec::new();
    for (i, term) in atom.terms.iter().enumerate() {
        match term {
            Term::Const(v) => out.push((i, v.clone())),
            Term::Var(name) => {
                if let Some(Term::Const(v)) = theta.get(name) {
                    out.push((i, v.clone()));
                }
            }
        }
    }
    out
}

/// Extends θ so that `atom` matches the ground `tuple`, recording every
/// newly created binding on `trail` so the caller can undo it. Public so
/// the compiled-plan executor in `castor-engine` shares the same
/// unification kernel.
pub fn unify_with_tuple(
    atom: &Atom,
    tuple: &Tuple,
    theta: &mut Substitution,
    trail: &mut Vec<String>,
) -> bool {
    if atom.arity() != tuple.arity() {
        return false;
    }
    for (term, value) in atom.terms.iter().zip(tuple.iter()) {
        match term {
            Term::Const(c) => {
                if c != value {
                    return false;
                }
            }
            Term::Var(name) => {
                if theta.binds(name) {
                    if theta.get(name) != Some(&Term::Const(value.clone())) {
                        return false;
                    }
                } else {
                    theta.bind(name.clone(), Term::Const(value.clone()));
                    trail.push(name.clone());
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use castor_relational::{RelationSymbol, Schema};

    fn collaboration_db() -> DatabaseInstance {
        let mut schema = Schema::new("test");
        schema
            .add_relation(RelationSymbol::new("publication", &["title", "person"]))
            .add_relation(RelationSymbol::new("professor", &["prof"]));
        let mut db = DatabaseInstance::empty(&schema);
        for (t, p) in [("p1", "ann"), ("p1", "bob"), ("p2", "ann"), ("p3", "carol")] {
            db.insert("publication", Tuple::from_strs(&[t, p])).unwrap();
        }
        db.insert("professor", Tuple::from_strs(&["ann"])).unwrap();
        db.insert("professor", Tuple::from_strs(&["bob"])).unwrap();
        db
    }

    fn collaborated_clause() -> Clause {
        Clause::new(
            Atom::vars("collaborated", &["x", "y"]),
            vec![
                Atom::vars("publication", &["p", "x"]),
                Atom::vars("publication", &["p", "y"]),
            ],
        )
    }

    #[test]
    fn clause_results_enumerate_head_tuples() {
        let db = collaboration_db();
        let results = clause_results(&collaborated_clause(), &db);
        // Co-authorship pairs including self-pairs: (ann,ann),(ann,bob),
        // (bob,ann),(bob,bob),(carol,carol).
        assert!(results.contains(&Tuple::from_strs(&["ann", "bob"])));
        assert!(results.contains(&Tuple::from_strs(&["bob", "ann"])));
        assert!(results.contains(&Tuple::from_strs(&["carol", "carol"])));
        assert!(!results.contains(&Tuple::from_strs(&["ann", "carol"])));
        assert_eq!(results.len(), 5);
    }

    #[test]
    fn covers_example_checks_body_satisfiability() {
        let db = collaboration_db();
        let c = collaborated_clause();
        assert!(covers_example(&c, &db, &Tuple::from_strs(&["ann", "bob"])));
        assert!(!covers_example(
            &c,
            &db,
            &Tuple::from_strs(&["ann", "carol"])
        ));
    }

    #[test]
    fn constants_in_body_restrict_results() {
        let db = collaboration_db();
        let c = Clause::new(
            Atom::vars("hasPub", &["x"]),
            vec![Atom::new(
                "publication",
                vec![Term::constant("p1"), Term::var("x")],
            )],
        );
        let results = clause_results(&c, &db);
        assert_eq!(results.len(), 2);
        assert!(results.contains(&Tuple::from_strs(&["ann"])));
    }

    #[test]
    fn definition_union_semantics() {
        let db = collaboration_db();
        let def = Definition::new(
            "person",
            vec![
                Clause::new(
                    Atom::vars("person", &["x"]),
                    vec![Atom::vars("professor", &["x"])],
                ),
                Clause::new(
                    Atom::vars("person", &["x"]),
                    vec![Atom::vars("publication", &["p", "x"])],
                ),
            ],
        );
        let results = definition_results(&def, &db);
        assert_eq!(results.len(), 3); // ann, bob, carol
        assert!(definition_covers(&def, &db, &Tuple::from_strs(&["carol"])));
        assert_eq!(
            covered_count(
                &def,
                &db,
                &[Tuple::from_strs(&["ann"]), Tuple::from_strs(&["nobody"])]
            ),
            1
        );
    }

    #[test]
    fn unknown_relation_in_body_yields_nothing() {
        let db = collaboration_db();
        let c = Clause::new(
            Atom::vars("t", &["x"]),
            vec![Atom::vars("missingRelation", &["x"])],
        );
        assert!(clause_results(&c, &db).is_empty());
        assert!(!covers_example(&c, &db, &Tuple::from_strs(&["ann"])));
    }

    #[test]
    fn unsafe_clause_produces_no_tuples() {
        let db = collaboration_db();
        // Head variable y never appears in the body.
        let c = Clause::new(
            Atom::vars("t", &["x", "y"]),
            vec![Atom::vars("professor", &["x"])],
        );
        assert!(clause_results(&c, &db).is_empty());
    }

    #[test]
    fn empty_body_clause_with_ground_head() {
        let db = collaboration_db();
        let c = Clause::fact(Atom::new(
            "t",
            vec![Term::constant("a"), Term::constant("b")],
        ));
        let results = clause_results(&c, &db);
        assert_eq!(results.len(), 1);
        assert!(results.contains(&Tuple::from_strs(&["a", "b"])));
    }

    #[test]
    fn head_with_constant_filters_examples() {
        let db = collaboration_db();
        let c = Clause::new(
            Atom::new("t", vec![Term::constant("ann")]),
            vec![Atom::vars("professor", &["x"])],
        );
        assert!(covers_example(&c, &db, &Tuple::from_strs(&["ann"])));
        assert!(!covers_example(&c, &db, &Tuple::from_strs(&["bob"])));
    }

    #[test]
    fn exhausted_budget_is_distinguished_from_not_covered() {
        let db = collaboration_db();
        let c = collaborated_clause();
        // Zero budget: cannot even look at one candidate tuple.
        let mut starved = EvalBudget::new(0);
        let outcome =
            covers_example_budgeted(&c, &db, &Tuple::from_strs(&["ann", "bob"]), &mut starved);
        assert_eq!(outcome, CoverageOutcome::Exhausted);
        assert!(starved.was_exhausted());
        // A genuinely uncovered example with ample budget is NotCovered.
        let mut ample = EvalBudget::default();
        let outcome =
            covers_example_budgeted(&c, &db, &Tuple::from_strs(&["ann", "carol"]), &mut ample);
        assert_eq!(outcome, CoverageOutcome::NotCovered);
        assert!(!ample.was_exhausted());
    }

    #[test]
    fn head_constant_conflict_short_circuits() {
        let db = collaboration_db();
        let c = Clause::new(
            Atom::new("t", vec![Term::constant("ann")]),
            vec![Atom::vars("professor", &["x"])],
        );
        assert!(bind_head(&c, &Tuple::from_strs(&["bob"])).is_none());
        let mut budget = EvalBudget::default();
        assert_eq!(
            covers_example_budgeted(&c, &db, &Tuple::from_strs(&["bob"]), &mut budget),
            CoverageOutcome::NotCovered
        );
        assert_eq!(budget.remaining(), DEFAULT_EVAL_NODE_BUDGET);
    }

    #[test]
    fn budget_is_shared_across_calls() {
        let db = collaboration_db();
        let c = collaborated_clause();
        let mut budget = EvalBudget::new(1_000);
        let before = budget.remaining();
        covers_example_budgeted(&c, &db, &Tuple::from_strs(&["ann", "bob"]), &mut budget);
        assert!(budget.remaining() < before);
    }

    #[test]
    fn cancellation_token_aborts_as_exhaustion() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let token = Arc::new(AtomicBool::new(false));
        let mut budget = EvalBudget::with_cancel(1_000, Arc::clone(&token));
        assert!(budget.consume());
        assert!(!budget.was_cancelled());
        token.store(true, Ordering::Relaxed);
        assert!(!budget.consume());
        assert!(budget.was_exhausted());
        assert!(budget.was_cancelled());
        // A cancelled search reports Exhausted through the normal path.
        let db = collaboration_db();
        let c = collaborated_clause();
        let mut cancelled = EvalBudget::with_cancel(1_000, token);
        assert_eq!(
            covers_example_budgeted(&c, &db, &Tuple::from_strs(&["ann", "bob"]), &mut cancelled),
            CoverageOutcome::Exhausted
        );
    }
}
