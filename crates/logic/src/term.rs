//! Terms: variables and constants.

use castor_relational::Value;
use std::fmt;

/// A term appearing in an atom: either a variable or a constant from the
/// database domain.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A first-order variable, identified by name (e.g. `x`, `V12`).
    Var(String),
    /// A constant value.
    Const(Value),
}

impl Term {
    /// Creates a variable term.
    pub fn var(name: impl Into<String>) -> Self {
        Term::Var(name.into())
    }

    /// Creates a constant term from a symbolic value.
    pub fn constant(value: impl Into<Value>) -> Self {
        Term::Const(value.into())
    }

    /// Whether the term is a variable.
    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_))
    }

    /// Whether the term is a constant.
    pub fn is_const(&self) -> bool {
        matches!(self, Term::Const(_))
    }

    /// The variable name, if this is a variable.
    pub fn var_name(&self) -> Option<&str> {
        match self {
            Term::Var(name) => Some(name),
            Term::Const(_) => None,
        }
    }

    /// The constant value, if this is a constant.
    pub fn const_value(&self) -> Option<&Value> {
        match self {
            Term::Const(v) => Some(v),
            Term::Var(_) => None,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(name) => write!(f, "{name}"),
            Term::Const(v) => write!(f, "'{v}'"),
        }
    }
}

impl From<Value> for Term {
    fn from(v: Value) -> Self {
        Term::Const(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variable_and_constant_accessors() {
        let v = Term::var("x");
        let c = Term::constant("alice");
        assert!(v.is_var() && !v.is_const());
        assert!(c.is_const() && !c.is_var());
        assert_eq!(v.var_name(), Some("x"));
        assert_eq!(c.const_value(), Some(&Value::str("alice")));
        assert_eq!(v.const_value(), None);
        assert_eq!(c.var_name(), None);
    }

    #[test]
    fn variables_and_constants_never_equal() {
        assert_ne!(Term::var("alice"), Term::constant("alice"));
    }

    #[test]
    fn display_quotes_constants_only() {
        assert_eq!(Term::var("x").to_string(), "x");
        assert_eq!(Term::constant("bob").to_string(), "'bob'");
    }
}
