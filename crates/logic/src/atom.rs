//! Atoms: a relation symbol applied to a list of terms.

use crate::term::Term;
use castor_relational::{Tuple, Value};
use std::collections::BTreeSet;
use std::fmt;

/// An atom `R(u1, ..., un)` where each `ui` is a variable or constant.
///
/// The paper's literals are atoms or negated atoms, but Horn-clause bodies
/// only contain positive literals, so a plain atom suffices everywhere in
/// this codebase.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Atom {
    /// The relation (predicate) symbol.
    pub relation: String,
    /// The argument terms, positionally aligned with the relation's sort.
    pub terms: Vec<Term>,
}

impl Atom {
    /// Creates an atom.
    pub fn new(relation: impl Into<String>, terms: Vec<Term>) -> Self {
        Atom {
            relation: relation.into(),
            terms,
        }
    }

    /// Creates an atom whose arguments are all variables with the given names.
    pub fn vars(relation: impl Into<String>, names: &[&str]) -> Self {
        Atom {
            relation: relation.into(),
            terms: names.iter().map(|n| Term::var(*n)).collect(),
        }
    }

    /// Creates a ground atom from a tuple of constants.
    pub fn ground(relation: impl Into<String>, tuple: &Tuple) -> Self {
        Atom {
            relation: relation.into(),
            terms: tuple.iter().map(|v| Term::Const(v.clone())).collect(),
        }
    }

    /// The arity of the atom.
    pub fn arity(&self) -> usize {
        self.terms.len()
    }

    /// Whether every argument is a constant.
    pub fn is_ground(&self) -> bool {
        self.terms.iter().all(Term::is_const)
    }

    /// The set of variable names appearing in the atom.
    pub fn variables(&self) -> BTreeSet<String> {
        self.terms
            .iter()
            .filter_map(|t| t.var_name().map(|s| s.to_string()))
            .collect()
    }

    /// The constants appearing in the atom, in positional order (with
    /// duplicates).
    pub fn constants(&self) -> Vec<Value> {
        self.terms
            .iter()
            .filter_map(|t| t.const_value().cloned())
            .collect()
    }

    /// Converts a ground atom to the corresponding database tuple.
    /// Returns `None` if any argument is a variable.
    pub fn to_tuple(&self) -> Option<Tuple> {
        let values: Option<Vec<Value>> = self
            .terms
            .iter()
            .map(|t| t.const_value().cloned())
            .collect();
        values.map(Tuple::new)
    }

    /// Whether two atoms are *compatible* in the lgg sense: same relation
    /// symbol and same arity.
    pub fn compatible_with(&self, other: &Atom) -> bool {
        self.relation == other.relation && self.arity() == other.arity()
    }

    /// Whether the atom shares at least one variable with the given set.
    pub fn shares_variable_with(&self, vars: &BTreeSet<String>) -> bool {
        self.terms
            .iter()
            .any(|t| t.var_name().is_some_and(|v| vars.contains(v)))
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let args: Vec<String> = self.terms.iter().map(|t| t.to_string()).collect();
        write!(f, "{}({})", self.relation, args.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_atom_roundtrips_through_tuple() {
        let t = Tuple::from_strs(&["c1", "alice", "t1"]);
        let a = Atom::ground("ta", &t);
        assert!(a.is_ground());
        assert_eq!(a.to_tuple(), Some(t));
    }

    #[test]
    fn non_ground_atom_has_no_tuple() {
        let a = Atom::new("p", vec![Term::var("x"), Term::constant("c")]);
        assert!(!a.is_ground());
        assert_eq!(a.to_tuple(), None);
        assert_eq!(a.constants(), vec![Value::str("c")]);
    }

    #[test]
    fn variables_are_collected_as_a_set() {
        let a = Atom::vars("publication", &["p", "x", "p"]);
        assert_eq!(a.variables().len(), 2);
    }

    #[test]
    fn compatibility_requires_same_relation_and_arity() {
        let a = Atom::vars("r", &["x", "y"]);
        let b = Atom::vars("r", &["u", "v"]);
        let c = Atom::vars("r", &["u"]);
        let d = Atom::vars("s", &["u", "v"]);
        assert!(a.compatible_with(&b));
        assert!(!a.compatible_with(&c));
        assert!(!a.compatible_with(&d));
    }

    #[test]
    fn shares_variable_with_set() {
        let a = Atom::vars("r", &["x", "y"]);
        let mut vars = BTreeSet::new();
        vars.insert("y".to_string());
        assert!(a.shares_variable_with(&vars));
        vars.clear();
        vars.insert("z".to_string());
        assert!(!a.shares_variable_with(&vars));
    }

    #[test]
    fn display_format() {
        let a = Atom::new("advisedBy", vec![Term::var("x"), Term::constant("ann")]);
        assert_eq!(a.to_string(), "advisedBy(x,'ann')");
    }
}
