//! Castor's IND-aware bottom-clause construction (Section 7.1).
//!
//! The construction follows the standard saturation loop (pull in every
//! tuple containing a known constant) with two changes that make the result
//! invariant under vertical (de)composition:
//!
//! 1. **IND closure per iteration.** Whenever a tuple `s_i` of a relation
//!    `S_i` belonging to an inclusion class is added, Castor immediately
//!    adds, *in the same iteration*, the tuples of the other class members
//!    that join with `s_i` through the class's INDs (with equality — or
//!    subset INDs in the general mode of Section 7.4), transitively until
//!    the class's INDs are exhausted. Over a decomposed schema this
//!    reconstructs exactly the literals whose natural join is the composed
//!    tuple, which is what Lemma 7.5 relies on.
//! 2. **Variable-count stopping condition.** Instead of a depth bound — a
//!    schema-dependent quantity (Lemma 6.3) — construction stops when the
//!    number of *distinct variables* exceeds a threshold, which is equal
//!    across equivalent clauses over (de)composed schemas.

use crate::config::CastorConfig;
use crate::plan::BottomClausePlan;
use castor_learners::bottom_clause::variablize_with;
use castor_logic::{Atom, Clause};
use castor_relational::{DatabaseInstance, Tuple, Value};
use std::collections::{BTreeSet, HashSet};

/// Builds Castor's *ground* bottom clause (saturation) for `example`.
pub fn castor_ground_bottom_clause(
    db: &DatabaseInstance,
    plan: &BottomClausePlan,
    target: &str,
    example: &Tuple,
    config: &CastorConfig,
) -> Clause {
    let params = &config.params;
    let head = Atom::ground(target, example);
    let mut body: Vec<Atom> = Vec::new();
    let mut seen: HashSet<(String, Tuple)> = HashSet::new();
    let mut known: BTreeSet<Value> = example.iter().cloned().collect();
    let mut frontier: Vec<Value> = known.iter().cloned().collect();
    // Distinct constants seen so far ≈ distinct variables after
    // variablization (the head constants are variablized too).
    let variable_budget = params.max_distinct_variables.max(example.arity());

    for _ in 0..params.max_iterations.max(1) {
        if frontier.is_empty() {
            break;
        }
        if known.len() >= variable_budget {
            break;
        }
        let mut next_frontier: BTreeSet<Value> = BTreeSet::new();
        for constant in &frontier {
            let mut per_relation: std::collections::HashMap<String, usize> = Default::default();
            for (relation, tuple) in db.tuples_containing(constant) {
                let count = per_relation.entry(relation.to_string()).or_insert(0);
                if *count >= params.max_recall_per_relation {
                    continue;
                }
                let key = (relation.to_string(), tuple.clone());
                if seen.contains(&key) {
                    continue;
                }
                *count += 1;
                seen.insert(key);
                body.push(Atom::ground(relation, tuple));
                for v in tuple.iter() {
                    if !known.contains(v) {
                        next_frontier.insert(v.clone());
                    }
                }
                // IND closure: pull in the tuples of the same inclusion
                // class that join with this tuple, transitively.
                close_over_inds(
                    db,
                    plan,
                    relation,
                    tuple,
                    params.max_recall_per_relation,
                    &mut body,
                    &mut seen,
                    &known,
                    &mut next_frontier,
                );
            }
        }
        known.extend(next_frontier.iter().cloned());
        frontier = next_frontier.into_iter().collect();
    }
    Clause::new(head, body)
}

/// Builds Castor's variablized bottom clause for `example`.
pub fn castor_bottom_clause(
    db: &DatabaseInstance,
    plan: &BottomClausePlan,
    target: &str,
    example: &Tuple,
    config: &CastorConfig,
) -> Clause {
    let ground = castor_ground_bottom_clause(db, plan, target, example, config);
    variablize_with(&ground, &config.params.constant_positions)
}

/// Breadth-first closure over the IND edges of `relation` starting from
/// `tuple`: every joining tuple of a class partner is added to the body, and
/// its own partners are then explored, until the class's INDs are exhausted
/// (Proposition 7.4 guarantees this terminates without attribute-switching
/// cycles for acyclic decompositions).
#[allow(clippy::too_many_arguments)]
fn close_over_inds(
    db: &DatabaseInstance,
    plan: &BottomClausePlan,
    relation: &str,
    tuple: &Tuple,
    recall_limit: usize,
    body: &mut Vec<Atom>,
    seen: &mut HashSet<(String, Tuple)>,
    known: &BTreeSet<Value>,
    next_frontier: &mut BTreeSet<Value>,
) {
    let mut queue: Vec<(String, Tuple)> = vec![(relation.to_string(), tuple.clone())];
    // Each relation of the inclusion class is expanded at most once per
    // closure: the closure reconstructs the literals whose natural join is
    // the composed tuple containing `tuple`, it does not walk the data graph
    // transitively (that is the job of the outer per-iteration loop).
    let mut visited_relations: HashSet<String> = HashSet::new();
    visited_relations.insert(relation.to_string());
    while let Some((rel, probe)) = queue.pop() {
        for edge in plan.edges_of(&rel) {
            if visited_relations.contains(&edge.to_relation) {
                continue;
            }
            visited_relations.insert(edge.to_relation.clone());
            for joined in plan.joining_tuples(db, edge, &probe, recall_limit) {
                let key = (edge.to_relation.clone(), joined.clone());
                if seen.contains(&key) {
                    continue;
                }
                seen.insert(key);
                body.push(Atom::ground(&edge.to_relation, joined));
                for v in joined.iter() {
                    if !known.contains(v) {
                        next_frontier.insert(v.clone());
                    }
                }
                queue.push((edge.to_relation.clone(), joined.clone()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use castor_logic::subsumption::theta_equivalent;
    use castor_relational::{InclusionDependency, RelationSymbol, Schema};
    use castor_transform::{TransformStep, Transformation};

    /// UW-CSE 4NF fragment: student(stud,phase,years) + publication.
    fn schema_4nf() -> Schema {
        let mut s = Schema::new("uwcse-4nf");
        s.add_relation(RelationSymbol::new("student", &["stud", "phase", "years"]))
            .add_relation(RelationSymbol::new("publication", &["title", "person"]));
        s
    }

    fn db_4nf() -> DatabaseInstance {
        let mut db = DatabaseInstance::empty(&schema_4nf());
        db.insert("student", Tuple::from_strs(&["abe", "prelim", "2"]))
            .unwrap();
        db.insert("student", Tuple::from_strs(&["bea", "post", "7"]))
            .unwrap();
        db.insert("publication", Tuple::from_strs(&["p1", "abe"]))
            .unwrap();
        db
    }

    /// The decomposition of the 4NF fragment into the Original schema.
    fn to_original() -> Transformation {
        Transformation::new(
            "4nf-to-original",
            vec![TransformStep::decompose(
                &schema_4nf(),
                "student",
                &[
                    ("student", &["stud"]),
                    ("inPhase", &["stud", "phase"]),
                    ("yearsInProgram", &["stud", "years"]),
                ],
            )],
        )
    }

    #[test]
    fn ind_closure_adds_all_joining_parts_in_same_iteration() {
        // Example 7.2: selecting student(Abe) must also pull in
        // inPhase(Abe, prelim) and yearsInProgram(Abe, 2).
        let tau = to_original();
        let original_db = tau.apply_instance(&db_4nf()).unwrap();
        let plan = BottomClausePlan::compile(original_db.schema(), false);
        let mut config = CastorConfig::default();
        config.params.max_iterations = 1;
        let ground = castor_ground_bottom_clause(
            &original_db,
            &plan,
            "hardWorking",
            &Tuple::from_strs(&["abe"]),
            &config,
        );
        let relations: BTreeSet<&str> = ground.body.iter().map(|a| a.relation.as_str()).collect();
        assert!(relations.contains("student"));
        assert!(relations.contains("inPhase"));
        assert!(relations.contains("yearsInProgram"));
    }

    #[test]
    fn bottom_clauses_are_equivalent_across_decomposition() {
        // Lemma 7.5: Castor's bottom clause for the same example over the
        // 4NF instance and its decomposition must be equivalent, i.e. each
        // must derive the same example and θ-map into the other after the
        // decomposition's definition mapping. We check the practical
        // consequence used by the experiments: both cover the example
        // relative to their own instance, and both have the same number of
        // distinct variables (the paper's invariant stopping measure).
        let db4 = db_4nf();
        let tau = to_original();
        let db_orig = tau.apply_instance(&db4).unwrap();
        let config = CastorConfig::default();

        let plan4 = BottomClausePlan::compile(db4.schema(), false);
        let plan_orig = BottomClausePlan::compile(db_orig.schema(), false);
        let example = Tuple::from_strs(&["abe"]);
        let bottom4 = castor_bottom_clause(&db4, &plan4, "hardWorking", &example, &config);
        let bottom_orig =
            castor_bottom_clause(&db_orig, &plan_orig, "hardWorking", &example, &config);

        assert!(castor_logic::covers_example(&bottom4, &db4, &example));
        assert!(castor_logic::covers_example(
            &bottom_orig,
            &db_orig,
            &example
        ));
        assert_eq!(
            bottom4.distinct_variable_count(),
            bottom_orig.distinct_variable_count()
        );
        // Mapping the 4NF bottom clause through the decomposition yields a
        // clause equivalent to the one built directly over the decomposed
        // schema.
        let mapped = castor_transform::map_definition_through_decomposition(
            &castor_logic::Definition::new("hardWorking", vec![bottom4.clone()]),
            &tau,
        );
        assert!(theta_equivalent(&mapped.clauses[0], &bottom_orig));
    }

    #[test]
    fn variable_budget_stops_construction() {
        let db = db_4nf();
        let plan = BottomClausePlan::compile(db.schema(), false);
        let mut config = CastorConfig::default();
        config.params.max_distinct_variables = 3;
        config.params.max_iterations = 5;
        let bottom = castor_bottom_clause(&db, &plan, "t", &Tuple::from_strs(&["abe"]), &config);
        // The budget is checked at iteration boundaries, so the clause stays
        // close to the cap instead of saturating the whole database.
        assert!(bottom.distinct_variable_count() <= 6);
    }

    #[test]
    fn general_ind_mode_follows_subset_inds() {
        // With a subset IND publication[person] ⊆ student[stud], adding a
        // student tuple in general mode pulls in that student's publications.
        let mut schema = schema_4nf();
        schema.add_ind(InclusionDependency::subset(
            "publication",
            &["person"],
            "student",
            &["stud"],
        ));
        let mut db = DatabaseInstance::empty(&schema);
        db.insert("student", Tuple::from_strs(&["abe", "prelim", "2"]))
            .unwrap();
        db.insert("publication", Tuple::from_strs(&["p1", "abe"]))
            .unwrap();
        let plan_eq = BottomClausePlan::compile(&schema, false);
        let plan_gen = BottomClausePlan::compile(&schema, true);
        assert!(plan_eq.class_of("publication").is_none());
        assert!(plan_gen.class_of("publication").is_some());
        let mut config = CastorConfig::default();
        config.params.max_iterations = 1;
        let bottom =
            castor_ground_bottom_clause(&db, &plan_gen, "t", &Tuple::from_strs(&["abe"]), &config);
        assert!(bottom.body.iter().any(|a| a.relation == "publication"));
    }
}
