//! The Castor learner: Algorithm 4 (`LearnClause`) inside the covering loop
//! of Algorithm 1, plus the general-IND preprocessing of Section 7.4.

use crate::armg::castor_armg;
use crate::bottom_clause::castor_bottom_clause;
use crate::config::CastorConfig;
use crate::coverage::CoverageEngine;
use crate::plan::BottomClausePlan;
use crate::reduction::negative_reduce;
use castor_engine::{Engine, EngineReport, LearnProgress, Prior};
use castor_learners::LearningTask;
use castor_logic::{is_safe, minimize_clause, Clause, Definition};
use castor_relational::{DatabaseInstance, InclusionDependency, Schema, Tuple};
use std::collections::HashSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The result of a Castor run, with the measurements the experiment harness
/// reports.
#[derive(Debug, Clone)]
pub struct LearnOutcome {
    /// The learned Horn definition.
    pub definition: Definition,
    /// Wall-clock learning time.
    pub elapsed: Duration,
    /// Number of coverage (subsumption) tests performed.
    pub coverage_tests: usize,
    /// Combined engine counters for the whole run — the θ-subsumption
    /// coverage engine plus the ARMG evaluation engine: cache behavior,
    /// generality skips, and budget exhaustions (exhaustions flag
    /// approximate coverage counts).
    pub engine: EngineReport,
    /// Average fraction of bottom-clause literals removed by minimization.
    pub minimization_reduction: f64,
}

/// The Castor learner.
#[derive(Debug, Clone)]
pub struct Castor {
    config: CastorConfig,
}

impl Castor {
    /// Creates a Castor learner with the given configuration.
    pub fn new(config: CastorConfig) -> Self {
        Castor { config }
    }

    /// The learner's configuration.
    pub fn config(&self) -> &CastorConfig {
        &self.config
    }

    /// Learns a Horn definition for `task` over `db`. The instance is
    /// deep-cloned once so the engine's worker threads can share it; callers
    /// that already hold an `Arc` (the experiment harness, dataset variants)
    /// should use [`Castor::learn_shared`] and skip the copy.
    pub fn learn(&mut self, db: &DatabaseInstance, task: &LearningTask) -> LearnOutcome {
        self.learn_shared(&Arc::new(db.clone()), task)
    }

    /// Learns a Horn definition for `task` over a shared database instance,
    /// without copying it (zero-copy engine construction). Builds a private
    /// evaluation engine for the run; long-lived callers (the serving
    /// layer's `LearnJob`) pass their own engine to [`Castor::learn_in`]
    /// instead, so plans and cached coverage survive across jobs.
    pub fn learn_shared(
        &mut self,
        db: &Arc<DatabaseInstance>,
        task: &LearningTask,
    ) -> LearnOutcome {
        let eval_engine = Engine::from_arc(Arc::clone(db), self.config.params.engine_config());
        self.learn_in(&eval_engine, task)
    }

    /// Learns a Horn definition for `task` against an existing evaluation
    /// engine: the run evaluates over the engine's current database
    /// snapshot, shares its worker pool, and reports only the engine
    /// activity this run caused (shared engines carry counters from earlier
    /// runs).
    pub fn learn_in(&mut self, eval_engine: &Engine, task: &LearningTask) -> LearnOutcome {
        let start = Instant::now();
        let db = eval_engine.snapshot();
        let eval_baseline = eval_engine.report();

        // Section 7.4 preprocessing: promote subset INDs that hold with
        // equality over this instance.
        let schema = if self.config.promote_general_inds {
            promote_general_inds(&db)
        } else {
            db.schema().clone()
        };

        let mut plan = BottomClausePlan::compile(&schema, self.config.use_general_inds);
        plan.use_indexes = self.config.use_stored_procedures;

        // The subsumption-based coverage engine materializes ground bottom
        // clauses for this run's examples and shares the evaluation
        // engine's worker pool, so one learner run drives a single set of
        // workers. ARMG's prefix coverage tests go through `eval_engine`
        // (compiled plans + memoized prefixes). The eval engine's live
        // budget template carries a serving session's node-budget override
        // and cancellation token into the subsumption tests too.
        let engine = CoverageEngine::build_with_pool(
            &db,
            &plan,
            &task.target,
            &task.positive,
            &task.negative,
            &self.config,
            Arc::clone(eval_engine.pool()),
        )
        .with_budget_template(eval_engine.budget_template());

        let mut definition = Definition::empty(task.target.clone());
        let mut uncovered: Vec<Tuple> = task.positive.clone();
        let mut reduction_samples: Vec<f64> = Vec::new();

        while !uncovered.is_empty() {
            let Some(clause) = self.learn_clause(
                &db,
                &plan,
                &engine,
                eval_engine,
                &task.target,
                &uncovered,
                &task.negative,
                &mut reduction_samples,
            ) else {
                break;
            };
            let covered_pos = engine.covered_set(&clause, &uncovered, Prior::None);
            let covered_neg = engine.covered_set(&clause, &task.negative, Prior::None);
            if !self
                .config
                .params
                .meets_minimum(covered_pos.len(), covered_neg.len())
            {
                break;
            }
            if covered_pos.is_empty() {
                break;
            }
            uncovered.retain(|e| !covered_pos.contains(e));
            eval_engine.emit_progress(&LearnProgress {
                round: definition.len(),
                clause: clause.clone(),
                covered_positive: covered_pos.len(),
                covered_negative: covered_neg.len(),
                uncovered_remaining: uncovered.len(),
            });
            definition.push(clause);
        }

        LearnOutcome {
            definition,
            elapsed: start.elapsed(),
            coverage_tests: engine.tests_performed(),
            engine: engine
                .report()
                .combined(&eval_engine.report().delta_since(&eval_baseline)),
            minimization_reduction: if reduction_samples.is_empty() {
                0.0
            } else {
                reduction_samples.iter().sum::<f64>() / reduction_samples.len() as f64
            },
        }
    }

    /// Castor's `LearnClause` (Algorithm 4): bottom clause of the first
    /// uncovered example, minimization, beam search over IND-aware ARMGs,
    /// and negative reduction of the best candidate.
    #[allow(clippy::too_many_arguments)]
    fn learn_clause(
        &self,
        db: &DatabaseInstance,
        plan: &BottomClausePlan,
        engine: &CoverageEngine,
        eval_engine: &Engine,
        target: &str,
        uncovered: &[Tuple],
        negative: &[Tuple],
        reduction_samples: &mut Vec<f64>,
    ) -> Option<Clause> {
        let params = &self.config.params;
        let seed = uncovered.first()?;
        let mut bottom = castor_bottom_clause(db, plan, target, seed, &self.config);
        if self.config.minimize_clauses {
            let before = bottom.body_len();
            bottom = minimize_clause(&bottom);
            if before > 0 {
                reduction_samples.push((before - bottom.body_len()) as f64 / before as f64);
            }
        }
        if bottom.body.is_empty() {
            return None;
        }

        // Beam of candidates, each carrying the set of positives it is known
        // to cover (used to skip redundant coverage tests, Section 7.5.4).
        let initial_cov = engine.covered_set(&bottom, uncovered, Prior::None);
        let initial_neg = engine.covered_set(&bottom, negative, Prior::None);
        let mut beam: Vec<(Clause, HashSet<Tuple>, usize)> =
            vec![(bottom.clone(), initial_cov.clone(), initial_neg.len())];
        let mut best: (Clause, i64) = (
            bottom.clone(),
            initial_cov.len() as i64 - initial_neg.len() as i64,
        );

        loop {
            let sample: Vec<&Tuple> = uncovered.iter().take(params.sample_size.max(1)).collect();
            // Generate the whole round's ARMG candidates first: sibling
            // generalizations of one beam share long body prefixes, so the
            // round is scored in one batched engine call instead of one
            // covered_set per candidate.
            let mut generated: Vec<(Clause, usize)> = Vec::new();
            for (parent_idx, (clause, known_cov, _)) in beam.iter().enumerate() {
                for example in &sample {
                    if known_cov.contains(*example) {
                        continue;
                    }
                    let Some(generalized) = castor_armg(clause, eval_engine, plan, example) else {
                        continue;
                    };
                    if generalized.body.is_empty() {
                        continue;
                    }
                    if self.config.safe_clauses && !is_safe(&generalized) {
                        continue;
                    }
                    generated.push((generalized, parent_idx));
                }
            }
            if generated.is_empty() {
                break;
            }
            // Generality-order invariant, batched: the engine accepts every
            // example a candidate's beam parent is cached as covering, and
            // `known_cov` (always a subset of `uncovered`, since it came
            // from covered_set over it) adds what the beam entry accumulated
            // even if the cache evicted it.
            let clauses: Vec<Clause> = generated.iter().map(|(c, _)| c.clone()).collect();
            let priors: Vec<Prior> = generated
                .iter()
                .map(|&(_, parent_idx)| Prior::GeneralizationOf(&beam[parent_idx].0))
                .collect();
            let pos_sets = engine.covered_sets_batch_with_priors(&clauses, &priors, uncovered);
            let neg_sets = engine.covered_sets_batch(&clauses, negative);
            let mut candidates: Vec<(Clause, HashSet<Tuple>, usize)> = Vec::new();
            for (((generalized, parent_idx), mut cov), neg) in
                generated.into_iter().zip(pos_sets).zip(neg_sets)
            {
                cov.extend(beam[parent_idx].1.iter().cloned());
                let score = cov.len() as i64 - neg.len() as i64;
                if score > best.1 {
                    candidates.push((generalized, cov, neg.len()));
                }
            }
            if candidates.is_empty() {
                break;
            }
            candidates.sort_by_key(|(_, cov, neg)| -(cov.len() as i64 - *neg as i64));
            candidates.truncate(params.beam_width.max(1));
            let top_score = candidates[0].1.len() as i64 - candidates[0].2 as i64;
            if top_score > best.1 {
                best = (candidates[0].0.clone(), top_score);
            }
            beam = candidates;
        }

        // Negative reduction of the best candidate, then minimization.
        let reduced = negative_reduce(&best.0, engine, negative, plan, self.config.safe_clauses);
        let final_clause = if self.config.minimize_clauses {
            minimize_clause(&reduced)
        } else {
            reduced
        };
        if final_clause.body.is_empty() {
            return None;
        }
        Some(final_clause)
    }
}

/// Promotes subset INDs that hold with equality over the given instance
/// (the preprocessing step of Section 7.4).
pub fn promote_general_inds(db: &DatabaseInstance) -> Schema {
    let schema = db.schema().clone();
    let promoted: Vec<InclusionDependency> = schema
        .inds()
        .filter(|ind| !ind.with_equality)
        .filter(|ind| {
            let mut as_equality = (*ind).clone();
            as_equality.with_equality = true;
            db.satisfies_ind(&as_equality).unwrap_or(false)
        })
        .cloned()
        .collect();
    if promoted.is_empty() {
        return schema;
    }
    let mut out = Schema::new(schema.name());
    for r in schema.relations() {
        out.add_relation(r.clone());
    }
    for c in schema.constraints() {
        match c {
            castor_relational::Constraint::Ind(ind) if promoted.iter().any(|p| p == ind) => {
                let mut eq = ind.clone();
                eq.with_equality = true;
                out.add_ind(eq);
            }
            other => {
                out.add_constraint(other.clone());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use castor_relational::{RelationSymbol, Tuple};

    /// Collaboration database: the target is "x and y co-authored a paper".
    fn collaboration_db() -> DatabaseInstance {
        let mut schema = Schema::new("demo");
        schema.add_relation(RelationSymbol::new("publication", &["title", "person"]));
        schema.add_relation(RelationSymbol::new("professor", &["prof"]));
        let mut db = DatabaseInstance::empty(&schema);
        for (t, p) in [
            ("p1", "ann"),
            ("p1", "bob"),
            ("p2", "carol"),
            ("p2", "dan"),
            ("p3", "eve"),
            ("p4", "ann"),
        ] {
            db.insert("publication", Tuple::from_strs(&[t, p])).unwrap();
        }
        for p in ["bob", "dan"] {
            db.insert("professor", Tuple::from_strs(&[p])).unwrap();
        }
        db
    }

    fn collaboration_task() -> LearningTask {
        LearningTask::new(
            "advisedBy",
            2,
            vec![
                Tuple::from_strs(&["ann", "bob"]),
                Tuple::from_strs(&["carol", "dan"]),
            ],
            vec![
                Tuple::from_strs(&["ann", "dan"]),
                Tuple::from_strs(&["eve", "bob"]),
                Tuple::from_strs(&["carol", "bob"]),
            ],
        )
    }

    #[test]
    fn castor_learns_consistent_definition() {
        let db = collaboration_db();
        let task = collaboration_task();
        let mut castor = Castor::new(CastorConfig::default());
        let outcome = castor.learn(&db, &task);
        assert!(!outcome.definition.is_empty());
        for pos in &task.positive {
            assert!(
                outcome
                    .definition
                    .clauses
                    .iter()
                    .any(|c| castor_logic::covers_example(c, &db, pos)),
                "positive {pos} must be covered"
            );
        }
        for neg in &task.negative {
            assert!(
                !outcome
                    .definition
                    .clauses
                    .iter()
                    .any(|c| castor_logic::covers_example(c, &db, neg)),
                "negative {neg} must not be covered"
            );
        }
        assert!(outcome.coverage_tests > 0);
    }

    #[test]
    fn safe_mode_produces_safe_definitions() {
        let db = collaboration_db();
        let task = collaboration_task();
        let config = CastorConfig {
            safe_clauses: true,
            ..Default::default()
        };
        let outcome = Castor::new(config).learn(&db, &task);
        assert!(castor_logic::safety::is_safe_definition(
            &outcome.definition
        ));
    }

    #[test]
    fn stored_procedure_ablation_learns_same_definition() {
        let db = collaboration_db();
        let task = collaboration_task();
        let with = Castor::new(CastorConfig::default()).learn(&db, &task);
        let without =
            Castor::new(CastorConfig::default().without_stored_procedures()).learn(&db, &task);
        assert_eq!(with.definition.len(), without.definition.len());
        for (a, b) in with
            .definition
            .clauses
            .iter()
            .zip(without.definition.clauses.iter())
        {
            assert!(castor_logic::subsumption::theta_equivalent(a, b));
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let db = collaboration_db();
        let task = collaboration_task();
        let single = Castor::new(CastorConfig::default().with_threads(1)).learn(&db, &task);
        let multi = Castor::new(CastorConfig::default().with_threads(4)).learn(&db, &task);
        assert_eq!(single.definition.len(), multi.definition.len());
    }

    #[test]
    fn promote_general_inds_upgrades_matching_subset_inds() {
        let mut schema = Schema::new("s");
        schema
            .add_relation(RelationSymbol::new("a", &["x"]))
            .add_relation(RelationSymbol::new("b", &["x"]))
            .add_ind(InclusionDependency::subset("a", &["x"], "b", &["x"]));
        let mut db = DatabaseInstance::empty(&schema);
        db.insert("a", Tuple::from_strs(&["1"])).unwrap();
        db.insert("b", Tuple::from_strs(&["1"])).unwrap();
        let promoted = promote_general_inds(&db);
        assert_eq!(promoted.equality_inds().len(), 1);
        // Add an extra b tuple: the IND no longer holds with equality.
        db.insert("b", Tuple::from_strs(&["2"])).unwrap();
        let db2 = {
            let mut fresh = DatabaseInstance::empty(&schema);
            fresh.insert("a", Tuple::from_strs(&["1"])).unwrap();
            fresh.insert("b", Tuple::from_strs(&["1"])).unwrap();
            fresh.insert("b", Tuple::from_strs(&["2"])).unwrap();
            fresh
        };
        assert!(promote_general_inds(&db2).equality_inds().is_empty());
    }

    #[test]
    fn empty_task_learns_empty_definition() {
        let db = collaboration_db();
        let task = LearningTask::new("advisedBy", 2, vec![], vec![]);
        let outcome = Castor::new(CastorConfig::default()).learn(&db, &task);
        assert!(outcome.definition.is_empty());
    }
}
