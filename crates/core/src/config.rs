//! Castor configuration.

use castor_learners::LearnerParams;

/// Configuration for the [`crate::Castor`] learner.
#[derive(Debug, Clone, PartialEq)]
pub struct CastorConfig {
    /// The shared learner parameters (minimum precision, sample size `K`,
    /// beam width `N`, recall limit, variable cap, thread count, ...).
    pub params: LearnerParams,
    /// Use INDs in general (subset) form directly, without the
    /// preprocessing that promotes them to equalities — the extension of
    /// Section 7.4 evaluated in Table 12.
    pub use_general_inds: bool,
    /// Run the preprocessing step of Section 7.4: for each subset IND check
    /// whether it holds with equality on the given instance and, if so,
    /// treat it as an IND with equality.
    pub promote_general_inds: bool,
    /// Produce only safe clauses (Section 7.3).
    pub safe_clauses: bool,
    /// Use the pre-compiled bottom-clause plan ("stored procedures",
    /// Section 7.5.2). Disabling it re-resolves schema metadata and scans
    /// without indexes on every call — the ablation of Table 13.
    pub use_stored_procedures: bool,
    /// Minimize bottom clauses and learned clauses (Section 7.5.5).
    pub minimize_clauses: bool,
}

impl Default for CastorConfig {
    fn default() -> Self {
        CastorConfig {
            params: LearnerParams::default(),
            use_general_inds: false,
            promote_general_inds: false,
            safe_clauses: false,
            use_stored_procedures: true,
            minimize_clauses: true,
        }
    }
}

impl CastorConfig {
    /// Configuration matching the paper's large-dataset runs (HIV, IMDb):
    /// `sample = 1`, `beamwidth = 1`.
    pub fn large_dataset() -> Self {
        CastorConfig {
            params: LearnerParams::large_dataset(),
            ..Default::default()
        }
    }

    /// Configuration matching the paper's UW-CSE runs: `sample = 20`,
    /// `beamwidth = 3`.
    pub fn uwcse() -> Self {
        CastorConfig {
            params: LearnerParams::uwcse(),
            ..Default::default()
        }
    }

    /// Returns a copy with the given number of coverage-testing threads.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.params.threads = threads.max(1);
        self
    }

    /// Returns a copy using general (subset) INDs directly (Table 12 mode).
    pub fn with_general_inds(mut self) -> Self {
        self.use_general_inds = true;
        self
    }

    /// Returns a copy with stored procedures disabled (Table 13 ablation).
    pub fn without_stored_procedures(mut self) -> Self {
        self.use_stored_procedures = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_enables_stored_procedures_and_minimization() {
        let c = CastorConfig::default();
        assert!(c.use_stored_procedures);
        assert!(c.minimize_clauses);
        assert!(!c.use_general_inds);
    }

    #[test]
    fn builders_toggle_flags() {
        let c = CastorConfig::default()
            .with_general_inds()
            .without_stored_procedures()
            .with_threads(8);
        assert!(c.use_general_inds);
        assert!(!c.use_stored_procedures);
        assert_eq!(c.params.threads, 8);
    }

    #[test]
    fn preset_configs_differ_in_search_width() {
        assert_eq!(CastorConfig::large_dataset().params.sample_size, 1);
        assert_eq!(CastorConfig::uwcse().params.sample_size, 20);
    }
}
