//! Negative reduction over inclusion-class instances (Section 7.2.2,
//! Algorithm 5) and its safe variant (Section 7.3.3).
//!
//! After ARMG, Castor removes *non-essential* groups of literals: dropping
//! them must not increase the number of negative examples covered. The unit
//! of removal is an **instance of an inclusion class** — the set of literals
//! whose relations belong to one class and whose terms join on the class's
//! IND attributes — so that what gets dropped over a decomposed schema
//! corresponds exactly to one literal over the composed schema (Lemma 7.8).

use crate::coverage::CoverageEngine;
use crate::plan::BottomClausePlan;
use castor_engine::Prior;
use castor_logic::Clause;
use castor_relational::Tuple;
use std::collections::{BTreeSet, HashSet};

/// A group of body-literal indices forming one instance of an inclusion
/// class (or a singleton for a literal outside every class).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InclusionInstance {
    /// Indices into the clause body, in clause order.
    pub literals: Vec<usize>,
}

/// Groups the body literals of `clause` into instances of inclusion
/// classes. Literals of relations outside every class become singleton
/// instances. Within a class, a literal joins an existing instance when it
/// agrees with some member on the attributes of a class IND; otherwise it
/// starts a new instance.
pub fn inclusion_instances(clause: &Clause, plan: &BottomClausePlan) -> Vec<InclusionInstance> {
    let mut instances: Vec<InclusionInstance> = Vec::new();
    for (i, literal) in clause.body.iter().enumerate() {
        if plan.class_of(&literal.relation).is_none() {
            instances.push(InclusionInstance { literals: vec![i] });
            continue;
        }
        // Try to join an existing instance of the same class through an IND
        // edge whose attribute projections agree.
        let mut joined = false;
        for instance in instances.iter_mut() {
            let same_class = instance.literals.iter().any(|&j| {
                let other = &clause.body[j];
                plan.class_of(&other.relation)
                    .is_some_and(|c| c.contains(&literal.relation))
            });
            if !same_class {
                continue;
            }
            let agrees = instance.literals.iter().any(|&j| {
                let other = &clause.body[j];
                plan.edges_of(&literal.relation).iter().any(|edge| {
                    edge.to_relation == other.relation
                        && edge
                            .from_positions
                            .iter()
                            .zip(edge.to_positions.iter())
                            .all(|(&fp, &tp)| literal.terms[fp] == other.terms[tp])
                })
            });
            if agrees {
                instance.literals.push(i);
                joined = true;
                break;
            }
        }
        if !joined {
            instances.push(InclusionInstance { literals: vec![i] });
        }
    }
    instances
}

/// Builds the clause whose body consists of the literals of the given
/// instances (in original clause order).
fn clause_from_instances(clause: &Clause, instances: &[InclusionInstance]) -> Clause {
    let mut indices: Vec<usize> = instances.iter().flat_map(|i| i.literals.clone()).collect();
    indices.sort_unstable();
    indices.dedup();
    Clause::new(
        clause.head.clone(),
        indices.iter().map(|&i| clause.body[i].clone()).collect(),
    )
}

/// Instances needed to connect `target_idx` to the clause head through
/// shared variables: a breadth-first search over instances, starting from
/// the head's variables.
fn head_connecting(
    clause: &Clause,
    instances: &[InclusionInstance],
    target_idx: usize,
) -> Vec<usize> {
    // Build adjacency: instance -> variables it contains.
    let vars_of = |inst: &InclusionInstance| -> BTreeSet<String> {
        inst.literals
            .iter()
            .flat_map(|&i| clause.body[i].variables())
            .collect()
    };
    let head_vars = clause.head.variables();
    let target_vars = vars_of(&instances[target_idx]);
    if target_vars.iter().any(|v| head_vars.contains(v)) {
        return Vec::new(); // directly connected
    }
    // BFS from the head variable set towards the target instance.
    let mut reached_vars = head_vars;
    let mut used: Vec<usize> = Vec::new();
    let mut progress = true;
    while progress {
        progress = false;
        for (i, inst) in instances.iter().enumerate() {
            if i == target_idx || used.contains(&i) {
                continue;
            }
            let vars = vars_of(inst);
            if vars.iter().any(|v| reached_vars.contains(v)) {
                // Adding this instance may extend the reachable variables.
                if !vars.is_subset(&reached_vars) {
                    reached_vars.extend(vars);
                    used.push(i);
                    progress = true;
                }
            }
        }
        if vars_of(&instances[target_idx])
            .iter()
            .any(|v| reached_vars.contains(v))
        {
            break;
        }
    }
    used
}

/// Castor's negative reduction (Algorithm 5): removes non-essential
/// inclusion-class instances while keeping negative coverage unchanged.
/// When `safe` is set, instances containing head variables that would
/// otherwise be lost are retained (Section 7.3.3), so the output stays safe
/// whenever the input is.
pub fn negative_reduce(
    clause: &Clause,
    engine: &CoverageEngine,
    negative: &[Tuple],
    plan: &BottomClausePlan,
    safe: bool,
) -> Clause {
    let covered_full = engine.covered_set(clause, negative, Prior::None);
    let mut instances = inclusion_instances(clause, plan);
    if safe {
        // Sort by the number of head variables appearing in the instance
        // (descending) so head-variable carriers are examined first.
        let head_vars = clause.head.variables();
        instances.sort_by_key(|inst| {
            let count = inst
                .literals
                .iter()
                .flat_map(|&i| clause.body[i].variables())
                .filter(|v| head_vars.contains(v))
                .count();
            std::cmp::Reverse(count)
        });
    }

    loop {
        let mut cut: Option<usize> = None;
        for i in 0..instances.len() {
            let prefix = clause_from_instances(clause, &instances[..=i]);
            let covered_prefix: HashSet<Tuple> = engine.covered_set(&prefix, negative, Prior::None);
            if covered_prefix == covered_full {
                cut = Some(i);
                break;
            }
        }
        let Some(i) = cut else {
            // No prefix reproduces the clause's negative coverage (can only
            // happen when the full set is needed); keep everything.
            return clause_from_instances(clause, &instances);
        };
        let connectors = head_connecting(clause, &instances, i);
        let mut keep: Vec<InclusionInstance> = Vec::new();
        // Head-connecting instances first, then the pivot itself, then the
        // earlier instances not already kept.
        for &c in &connectors {
            keep.push(instances[c].clone());
        }
        keep.push(instances[i].clone());
        for (j, inst) in instances.iter().enumerate().take(i) {
            if !connectors.contains(&j) {
                keep.push(inst.clone());
            }
        }
        if safe {
            // Retain discarded instances that carry head variables absent
            // from the kept set.
            let kept_vars: BTreeSet<String> = keep
                .iter()
                .flat_map(|inst| inst.literals.iter())
                .flat_map(|&k| clause.body[k].variables())
                .collect();
            let missing: BTreeSet<String> = clause
                .head
                .variables()
                .into_iter()
                .filter(|v| !kept_vars.contains(v))
                .collect();
            if !missing.is_empty() {
                for (j, inst) in instances.iter().enumerate().skip(i + 1) {
                    let vars: BTreeSet<String> = inst
                        .literals
                        .iter()
                        .flat_map(|&k| clause.body[k].variables())
                        .collect();
                    if vars.iter().any(|v| missing.contains(v)) {
                        keep.push(instances[j].clone());
                    }
                }
            }
        }
        if keep.len() == instances.len() {
            return clause_from_instances(clause, &keep);
        }
        instances = keep;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CastorConfig;
    use castor_logic::Atom;
    use castor_relational::{DatabaseInstance, InclusionDependency, RelationSymbol, Schema};

    fn schema() -> Schema {
        let mut s = Schema::new("uwcse-original");
        s.add_relation(RelationSymbol::new("student", &["stud"]))
            .add_relation(RelationSymbol::new("inPhase", &["stud", "phase"]))
            .add_relation(RelationSymbol::new("publication", &["title", "person"]))
            .add_ind(InclusionDependency::equality(
                "student",
                &["stud"],
                "inPhase",
                &["stud"],
            ));
        s
    }

    fn db() -> DatabaseInstance {
        let mut db = DatabaseInstance::empty(&schema());
        for (s, phase) in [("ann", "prelim"), ("bob", "prelim"), ("carl", "post")] {
            db.insert("student", Tuple::from_strs(&[s])).unwrap();
            db.insert("inPhase", Tuple::from_strs(&[s, phase])).unwrap();
        }
        for (t, p) in [
            ("p1", "ann"),
            ("p1", "prof1"),
            ("p2", "bob"),
            ("p2", "prof2"),
        ] {
            db.insert("publication", Tuple::from_strs(&[t, p])).unwrap();
        }
        db
    }

    fn engine_for(
        pos: &[Tuple],
        neg: &[Tuple],
        target: &str,
    ) -> (CoverageEngine, BottomClausePlan) {
        let db = db();
        let plan = BottomClausePlan::compile(db.schema(), false);
        let config = CastorConfig::default();
        let engine = CoverageEngine::build(&db, &plan, target, pos, neg, &config);
        (engine, plan)
    }

    #[test]
    fn grouping_joins_class_literals_on_ind_attributes() {
        let db = db();
        let plan = BottomClausePlan::compile(db.schema(), false);
        let clause = Clause::new(
            Atom::vars("t", &["x"]),
            vec![
                Atom::vars("student", &["x"]),
                Atom::vars("inPhase", &["x", "p"]),
                Atom::vars("student", &["y"]),
                Atom::vars("publication", &["w", "x"]),
            ],
        );
        let instances = inclusion_instances(&clause, &plan);
        // student(x)+inPhase(x,p) form one instance; student(y) another;
        // publication a singleton.
        assert_eq!(instances.len(), 3);
        assert_eq!(instances[0].literals, vec![0, 1]);
        assert_eq!(instances[1].literals, vec![2]);
        assert_eq!(instances[2].literals, vec![3]);
    }

    #[test]
    fn non_essential_instances_are_removed() {
        // Target: advisedBy(x,y) with a clause containing the essential
        // shared-publication literals plus a non-essential student/inPhase
        // instance. Dropping the student instance does not change negative
        // coverage, so negative reduction removes it.
        let pos = vec![Tuple::from_strs(&["ann", "prof1"])];
        let neg = vec![Tuple::from_strs(&["ann", "prof2"])];
        let (engine, plan) = engine_for(&pos, &neg, "advisedBy");
        let clause = Clause::new(
            Atom::vars("advisedBy", &["x", "y"]),
            vec![
                Atom::vars("publication", &["t", "x"]),
                Atom::vars("publication", &["t", "y"]),
                Atom::vars("student", &["x"]),
                Atom::vars("inPhase", &["x", "ph"]),
            ],
        );
        let reduced = negative_reduce(&clause, &engine, &neg, &plan, false);
        assert!(reduced.body.iter().any(|a| a.relation == "publication"));
        assert!(reduced.body.iter().all(|a| a.relation != "student"));
        assert!(reduced.body.iter().all(|a| a.relation != "inPhase"));
        // Reduction must not increase negative coverage.
        assert_eq!(
            engine.covered_set(&reduced, &neg, Prior::None),
            engine.covered_set(&clause, &neg, Prior::None)
        );
    }

    #[test]
    fn essential_literals_are_kept() {
        // Removing the second publication literal would cover the negative
        // (ann co-authored something, but not with "nonauthor"), so it must
        // stay.
        let pos = vec![Tuple::from_strs(&["ann", "prof1"])];
        let neg = vec![Tuple::from_strs(&["ann", "nonauthor"])];
        let (engine, plan) = engine_for(&pos, &neg, "advisedBy");
        let clause = Clause::new(
            Atom::vars("advisedBy", &["x", "y"]),
            vec![
                Atom::vars("publication", &["t", "x"]),
                Atom::vars("publication", &["t", "y"]),
            ],
        );
        let reduced = negative_reduce(&clause, &engine, &neg, &plan, false);
        assert_eq!(reduced.body_len(), 2);
    }

    #[test]
    fn safe_mode_keeps_head_variable_carriers() {
        // y only appears in the second publication literal; unsafe reduction
        // with no negatives could drop it, safe reduction keeps a literal
        // mentioning y.
        let pos = vec![Tuple::from_strs(&["ann", "prof1"])];
        let neg: Vec<Tuple> = Vec::new();
        let (engine, plan) = engine_for(&pos, &neg, "advisedBy");
        let clause = Clause::new(
            Atom::vars("advisedBy", &["x", "y"]),
            vec![
                Atom::vars("publication", &["t", "x"]),
                Atom::vars("publication", &["t", "y"]),
            ],
        );
        let reduced = negative_reduce(&clause, &engine, &neg, &plan, true);
        assert!(castor_logic::is_safe(&reduced));
    }
}
