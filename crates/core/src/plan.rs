//! Pre-compiled bottom-clause plans ("stored procedures", Section 7.5.2).
//!
//! The paper implements bottom-clause construction inside a VoltDB stored
//! procedure that is created once per schema and reused across calls, both
//! to cut per-call API overhead and to reuse the schema analysis (which
//! relations form inclusion classes, which attribute positions the INDs
//! refer to). [`BottomClausePlan`] plays the same role here: it resolves the
//! inclusion classes and all IND attribute positions once, and exposes the
//! joined-tuple lookup used by the IND-aware construction. The
//! "without stored procedures" ablation of Table 13 rebuilds this analysis
//! on every bottom-clause call and answers lookups with full scans instead
//! of index probes.

use castor_relational::{DatabaseInstance, Schema, Tuple, Value};
use castor_transform::{inclusion_classes, InclusionClass};
use std::collections::BTreeMap;

/// One resolved IND edge: from a relation to a partner relation, with the
/// attribute positions to match on both sides.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndEdge {
    /// Relation the probe tuple belongs to.
    pub from_relation: String,
    /// Attribute positions of the probe tuple to project.
    pub from_positions: Vec<usize>,
    /// Relation to fetch joining tuples from.
    pub to_relation: String,
    /// Attribute positions in the partner relation to match.
    pub to_positions: Vec<usize>,
}

/// A per-schema plan for IND-aware bottom-clause construction.
#[derive(Debug, Clone)]
pub struct BottomClausePlan {
    /// The inclusion classes of the schema.
    classes: Vec<InclusionClass>,
    /// For each relation, the resolved IND edges to follow when a tuple of
    /// that relation is added to a bottom clause.
    edges: BTreeMap<String, Vec<IndEdge>>,
    /// Whether lookups use the per-attribute hash indexes (planned mode) or
    /// full scans (the Table 13 ablation).
    pub use_indexes: bool,
}

impl BottomClausePlan {
    /// Compiles the plan for a schema. `general_inds` additionally follows
    /// subset-form INDs (Section 7.4); otherwise only INDs with equality
    /// are used (Definition 7.1).
    pub fn compile(schema: &Schema, general_inds: bool) -> Self {
        let classes = inclusion_classes(schema, !general_inds);
        let mut edges: BTreeMap<String, Vec<IndEdge>> = BTreeMap::new();
        for class in &classes {
            for ind in &class.inds {
                let lhs_pos = schema
                    .attr_positions(&ind.lhs_relation, &ind.lhs_attrs)
                    .expect("schema validated");
                let rhs_pos = schema
                    .attr_positions(&ind.rhs_relation, &ind.rhs_attrs)
                    .expect("schema validated");
                // Follow the IND in both directions: adding a tuple of either
                // side must pull in the joining tuples of the other side.
                edges
                    .entry(ind.lhs_relation.clone())
                    .or_default()
                    .push(IndEdge {
                        from_relation: ind.lhs_relation.clone(),
                        from_positions: lhs_pos.clone(),
                        to_relation: ind.rhs_relation.clone(),
                        to_positions: rhs_pos.clone(),
                    });
                edges
                    .entry(ind.rhs_relation.clone())
                    .or_default()
                    .push(IndEdge {
                        from_relation: ind.rhs_relation.clone(),
                        from_positions: rhs_pos,
                        to_relation: ind.lhs_relation.clone(),
                        to_positions: lhs_pos,
                    });
            }
        }
        BottomClausePlan {
            classes,
            edges,
            use_indexes: true,
        }
    }

    /// The inclusion classes of the schema.
    pub fn classes(&self) -> &[InclusionClass] {
        &self.classes
    }

    /// The inclusion class containing `relation`, if any.
    pub fn class_of(&self, relation: &str) -> Option<&InclusionClass> {
        self.classes.iter().find(|c| c.contains(relation))
    }

    /// The IND edges to follow from `relation`.
    pub fn edges_of(&self, relation: &str) -> &[IndEdge] {
        self.edges
            .get(relation)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Tuples of `edge.to_relation` that join with `probe` through the IND,
    /// capped at `limit`. In planned mode this is an index probe; in the
    /// ablation mode it is a full scan with a filter.
    pub fn joining_tuples<'a>(
        &self,
        db: &'a DatabaseInstance,
        edge: &IndEdge,
        probe: &Tuple,
        limit: usize,
    ) -> Vec<&'a Tuple> {
        let Some(instance) = db.relation(&edge.to_relation) else {
            return Vec::new();
        };
        let key: Vec<Value> = edge
            .from_positions
            .iter()
            .map(|&p| probe.value(p).clone())
            .collect();
        let mut out: Vec<&Tuple> = if self.use_indexes {
            instance.select_on_positions(&edge.to_positions, &key)
        } else {
            instance
                .iter()
                .filter(|t| {
                    edge.to_positions
                        .iter()
                        .zip(key.iter())
                        .all(|(&p, v)| t.value(p) == v)
                })
                .collect()
        };
        out.truncate(limit);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use castor_relational::{InclusionDependency, RelationSymbol};

    fn schema() -> Schema {
        let mut s = Schema::new("uwcse-original");
        s.add_relation(RelationSymbol::new("student", &["stud"]))
            .add_relation(RelationSymbol::new("inPhase", &["stud", "phase"]))
            .add_relation(RelationSymbol::new("yearsInProgram", &["stud", "years"]))
            .add_relation(RelationSymbol::new("publication", &["title", "person"]))
            .add_ind(InclusionDependency::equality(
                "student",
                &["stud"],
                "inPhase",
                &["stud"],
            ))
            .add_ind(InclusionDependency::equality(
                "student",
                &["stud"],
                "yearsInProgram",
                &["stud"],
            ))
            .add_ind(InclusionDependency::subset(
                "publication",
                &["person"],
                "student",
                &["stud"],
            ));
        s
    }

    fn db() -> DatabaseInstance {
        let mut db = DatabaseInstance::empty(&schema());
        db.insert("student", Tuple::from_strs(&["abe"])).unwrap();
        db.insert("inPhase", Tuple::from_strs(&["abe", "prelim"]))
            .unwrap();
        db.insert("yearsInProgram", Tuple::from_strs(&["abe", "2"]))
            .unwrap();
        db.insert("student", Tuple::from_strs(&["bea"])).unwrap();
        db.insert("inPhase", Tuple::from_strs(&["bea", "post"]))
            .unwrap();
        db.insert("yearsInProgram", Tuple::from_strs(&["bea", "7"]))
            .unwrap();
        db
    }

    #[test]
    fn plan_resolves_equality_ind_edges_both_ways() {
        let plan = BottomClausePlan::compile(&schema(), false);
        assert_eq!(plan.classes().len(), 1);
        assert!(plan.class_of("student").is_some());
        assert!(plan.class_of("publication").is_none());
        // student participates in two INDs → two outgoing edges; inPhase in
        // one → one edge back to student.
        assert_eq!(plan.edges_of("student").len(), 2);
        assert_eq!(plan.edges_of("inPhase").len(), 1);
        assert!(plan.edges_of("publication").is_empty());
    }

    #[test]
    fn general_mode_includes_subset_inds() {
        let plan = BottomClausePlan::compile(&schema(), true);
        assert!(plan.class_of("publication").is_some());
        assert!(!plan.edges_of("publication").is_empty());
    }

    #[test]
    fn joining_tuples_follow_the_ind() {
        let plan = BottomClausePlan::compile(&schema(), false);
        let db = db();
        // From student(abe), following student→inPhase must find (abe,prelim).
        let edge = plan
            .edges_of("student")
            .iter()
            .find(|e| e.to_relation == "inPhase")
            .unwrap()
            .clone();
        let joined = plan.joining_tuples(&db, &edge, &Tuple::from_strs(&["abe"]), 10);
        assert_eq!(joined, vec![&Tuple::from_strs(&["abe", "prelim"])]);
    }

    #[test]
    fn scan_mode_returns_same_results_as_index_mode() {
        let mut plan = BottomClausePlan::compile(&schema(), false);
        let db = db();
        let edge = plan
            .edges_of("inPhase")
            .iter()
            .find(|e| e.to_relation == "student")
            .unwrap()
            .clone();
        let probe = Tuple::from_strs(&["bea", "post"]);
        let indexed = plan.joining_tuples(&db, &edge, &probe, 10);
        plan.use_indexes = false;
        let scanned = plan.joining_tuples(&db, &edge, &probe, 10);
        assert_eq!(indexed, scanned);
        assert_eq!(indexed, vec![&Tuple::from_strs(&["bea"])]);
    }

    #[test]
    fn limit_caps_joining_tuples() {
        let mut s = Schema::new("s");
        s.add_relation(RelationSymbol::new("a", &["x"]))
            .add_relation(RelationSymbol::new("b", &["x", "y"]))
            .add_ind(InclusionDependency::equality("a", &["x"], "b", &["x"]));
        let mut db = DatabaseInstance::empty(&s);
        db.insert("a", Tuple::from_strs(&["k"])).unwrap();
        for i in 0..20 {
            db.insert("b", Tuple::new(vec![Value::str("k"), Value::int(i)]))
                .unwrap();
        }
        let plan = BottomClausePlan::compile(&s, false);
        let edge = plan
            .edges_of("a")
            .iter()
            .find(|e| e.to_relation == "b")
            .unwrap();
        let joined = plan.joining_tuples(&db, edge, &Tuple::from_strs(&["k"]), 5);
        assert_eq!(joined.len(), 5);
    }
}
