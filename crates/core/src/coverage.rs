//! Coverage testing by θ-subsumption with caching and parallelism
//! (Sections 7.5.3–7.5.4), built on the `castor-engine` subsystem.
//!
//! Castor evaluates a candidate clause by checking, for each example,
//! whether the clause θ-subsumes the example's *ground bottom clause* — the
//! same semantics as evaluating against the database, but over a small
//! pre-materialized neighborhood, which is what lets coverage tests be
//! parallelized and cached. The engine below:
//!
//! * materializes the ground bottom clause of every example once (the
//!   "stored procedure" call per example in the paper's implementation);
//! * runs pending tests on the persistent [`WorkerPool`] with work-stealing
//!   over examples (Figure 2's ablation) — no per-call thread spawning, and
//!   the pool can be shared with the database-evaluation [`castor_engine::Engine`]
//!   so one learner run drives a single set of workers;
//! * memoizes results per canonical clause through the shared
//!   [`castor_engine::CoverageRuntime`], so the covering loop's re-scoring
//!   of α-equivalent candidates is free;
//! * exploits the generality order as an engine invariant: pass
//!   [`Prior::GeneralizationOf`] and everything the parent is known to
//!   cover is accepted without a test;
//! * reports subsumption-budget exhaustions (the bounded θ-subsumption
//!   search treating "ran out of nodes" as "not covered") through the
//!   engine counters instead of hiding them — and memoizes them in the
//!   cache's budget-keyed exhaustion tier (keyed by the subsumption node
//!   budget, served only to equal-or-smaller budgets), so exhaustion-heavy
//!   workloads like HIV stop re-running the same doomed searches.

use crate::config::CastorConfig;
use crate::plan::BottomClausePlan;
use castor_engine::{
    canonicalize, CoverageRuntime, CoverageTester, EngineReport, EngineStats, Prior, WorkerPool,
};
use castor_logic::{subsumes_with_eval_budget, Clause, CoverageOutcome, EvalBudget};
use castor_relational::{DatabaseInstance, Tuple};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Coverage-testing engine holding the ground bottom clauses of the
/// training examples.
#[derive(Debug)]
pub struct CoverageEngine {
    ground: Arc<HashMap<Tuple, Clause>>,
    runtime: CoverageRuntime,
    /// Per-test budget template, cloned per subsumption test. Carries the
    /// serving session's node-budget override and cancellation token when
    /// installed through [`CoverageEngine::with_budget_template`].
    budget: EvalBudget,
}

impl CoverageEngine {
    /// Materializes ground bottom clauses for every positive and negative
    /// example of the task and spins up a private worker pool sized by
    /// `config.params` (see [`CoverageEngine::build_with_pool`] to share
    /// an existing pool instead).
    pub fn build(
        db: &DatabaseInstance,
        plan: &BottomClausePlan,
        target: &str,
        positive: &[Tuple],
        negative: &[Tuple],
        config: &CastorConfig,
    ) -> Self {
        let pool = Arc::new(WorkerPool::new(config.params.threads.max(1)));
        CoverageEngine::build_with_pool(db, plan, target, positive, negative, config, pool)
    }

    /// [`CoverageEngine::build`] reusing the caller's worker pool (the
    /// Castor learner passes its evaluation engine's pool so one run drives
    /// a single set of workers). Cache capacity and the parallel threshold
    /// come from `config.params.engine_config()`.
    pub fn build_with_pool(
        db: &DatabaseInstance,
        plan: &BottomClausePlan,
        target: &str,
        positive: &[Tuple],
        negative: &[Tuple],
        config: &CastorConfig,
        pool: Arc<WorkerPool>,
    ) -> Self {
        let examples: Vec<Tuple> = positive.iter().chain(negative.iter()).cloned().collect();
        let ground = ground_bottom_clauses(db, plan, target, &examples, config, &pool);
        let engine_config = config.params.engine_config();
        CoverageEngine {
            ground: Arc::new(ground),
            runtime: CoverageRuntime::new(&engine_config, pool),
            budget: EvalBudget::new(engine_config.eval_budget),
        }
    }

    /// The materialized ground bottom clause of `example`, if it is one of
    /// the engine's training examples (used by equivalence tests and the
    /// Figure 2 parallelism reports).
    pub fn ground_clause(&self, example: &Tuple) -> Option<&Clause> {
        self.ground.get(example)
    }

    /// Replaces the per-test budget template (builder style). The Castor
    /// learner passes its evaluation engine's live template here, so a
    /// serving session's budget override and cancellation token govern the
    /// θ-subsumption tests too.
    pub fn with_budget_template(mut self, budget: EvalBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Number of subsumption tests performed so far (used by the ablation
    /// reports). Cache hits do not count: no test ran.
    pub fn tests_performed(&self) -> usize {
        self.report().coverage_tests
    }

    /// Snapshot of the full engine counters (tests, cache behavior,
    /// generality skips, subsumption-budget exhaustions).
    pub fn report(&self) -> EngineReport {
        self.runtime.report()
    }

    /// Whether `clause` covers `example` (θ-subsumes its ground bottom
    /// clause), going through the memo cache.
    pub fn covers(&self, clause: &Clause, example: &Tuple) -> bool {
        let canonical = canonicalize(clause);
        self.runtime
            .try_covers(self, &canonical, example)
            .is_covered()
    }

    /// The subset of `examples` covered by `clause`. `prior` carries the
    /// generality order: with [`Prior::GeneralizationOf`], every example
    /// the parent clause is cached as covering is accepted without a test
    /// (valid because generalization can only grow the covered set).
    pub fn covered_set(
        &self,
        clause: &Clause,
        examples: &[Tuple],
        prior: Prior<'_>,
    ) -> HashSet<Tuple> {
        let canonical = canonicalize(clause);
        self.runtime.covered_set(self, &canonical, examples, prior)
    }

    /// Positive/negative coverage counts for `clause`.
    pub fn coverage_counts(
        &self,
        clause: &Clause,
        positive: &[Tuple],
        negative: &[Tuple],
    ) -> (usize, usize) {
        let pos = self.covered_set(clause, positive, Prior::None).len();
        let neg = self.covered_set(clause, negative, Prior::None).len();
        (pos, neg)
    }

    /// The covered subsets for a whole beam of candidate clauses at once:
    /// candidates are deduplicated per canonical clause, the memo cache is
    /// probed under one lock for the entire beam, and the remaining
    /// (candidate, example) subsumption tests run as one flat work list on
    /// the worker pool instead of one pool dispatch per candidate.
    pub fn covered_sets_batch(
        &self,
        clauses: &[Clause],
        examples: &[Tuple],
    ) -> Vec<HashSet<Tuple>> {
        self.runtime
            .covered_sets_batch(self, clauses, examples, &[])
    }

    /// [`CoverageEngine::covered_sets_batch`] with one [`Prior`] per
    /// candidate — the beam loop passes `Prior::GeneralizationOf(parent)`
    /// so every example a candidate's beam parent is cached as covering is
    /// accepted without a subsumption test.
    pub fn covered_sets_batch_with_priors(
        &self,
        clauses: &[Clause],
        priors: &[Prior<'_>],
        examples: &[Tuple],
    ) -> Vec<HashSet<Tuple>> {
        self.runtime
            .covered_sets_batch(self, clauses, examples, priors)
    }
}

impl CoverageTester for CoverageEngine {
    fn test(&self, canonical: &Clause, example: &Tuple) -> CoverageOutcome {
        test_subsumption(
            &self.ground,
            self.runtime.metrics(),
            canonical,
            example,
            &self.budget,
        )
    }

    fn parallel_task(
        &self,
        canonical: &Clause,
        examples: &Arc<Vec<Tuple>>,
    ) -> Box<dyn Fn(usize) -> CoverageOutcome + Send + Sync + 'static> {
        let ground = Arc::clone(&self.ground);
        let metrics = Arc::clone(self.runtime.metrics());
        let clause = canonical.clone();
        let examples = Arc::clone(examples);
        let budget = self.budget.clone();
        Box::new(move |i| test_subsumption(&ground, &metrics, &clause, &examples[i], &budget))
    }

    fn pair_task(
        &self,
        canonicals: &Arc<Vec<Clause>>,
        examples: &Arc<Vec<Tuple>>,
        pairs: &Arc<Vec<(usize, usize)>>,
    ) -> Box<dyn Fn(usize) -> CoverageOutcome + Send + Sync + 'static> {
        let ground = Arc::clone(&self.ground);
        let metrics = Arc::clone(self.runtime.metrics());
        let canonicals = Arc::clone(canonicals);
        let examples = Arc::clone(examples);
        let pairs = Arc::clone(pairs);
        let budget = self.budget.clone();
        Box::new(move |i| {
            let (slot, ei) = pairs[i];
            test_subsumption(&ground, &metrics, &canonicals[slot], &examples[ei], &budget)
        })
    }

    /// The subsumption node budget exhaustions are comparable under. Every
    /// test clones the same budget template, so its `remaining()` *is* the
    /// per-test node budget — exhaustion verdicts enter the memo cache's
    /// budget-keyed tier and HIV-style exhaustion-heavy workloads stop
    /// re-testing every probe. While a cancellation is pending the scope is
    /// `None`: aborted searches unwind through the exhaustion path and must
    /// never be memoized (the runtime re-reads this scope at write-back, so
    /// a cancellation firing mid-evaluation drops the verdicts too).
    fn exhaustion_scope(&self) -> Option<usize> {
        if self.budget.cancel_pending() {
            None
        } else {
            Some(self.budget.remaining())
        }
    }
}

/// Materializes the ground bottom clause of every distinct example, on the
/// worker pool when it has more than one thread (each example's saturation
/// is independent, so work-stealing across examples is safe) and inline
/// otherwise. The merge is deterministic either way: results come back in
/// example order and each example's saturation loop is itself sequential,
/// so the parallel build is bit-identical to the sequential one — this is
/// the Figure 2 "parallel bottom-clause construction" axis.
pub fn ground_bottom_clauses(
    db: &DatabaseInstance,
    plan: &BottomClausePlan,
    target: &str,
    examples: &[Tuple],
    config: &CastorConfig,
    pool: &WorkerPool,
) -> HashMap<Tuple, Clause> {
    let mut seen = HashSet::new();
    let unique: Vec<Tuple> = examples
        .iter()
        .filter(|e| seen.insert((*e).clone()))
        .cloned()
        .collect();
    let clauses: Vec<Clause> = if pool.size() > 1 && unique.len() > 1 {
        // The instance clone is cheap (relations are `Arc`-backed
        // copy-on-write) and pins a consistent snapshot for the workers.
        let db = Arc::new(db.clone());
        let plan = Arc::new(plan.clone());
        let config = Arc::new(config.clone());
        let target = target.to_string();
        let work = Arc::new(unique.clone());
        pool.map_indices(unique.len(), move |i| {
            crate::bottom_clause::castor_ground_bottom_clause(
                &db, &plan, &target, &work[i], &config,
            )
        })
    } else {
        unique
            .iter()
            .map(|e| crate::bottom_clause::castor_ground_bottom_clause(db, plan, target, e, config))
            .collect()
    };
    unique.into_iter().zip(clauses).collect()
}

/// One θ-subsumption test against an example's ground bottom clause. An
/// exhausted search budget is reported as [`CoverageOutcome::Exhausted`]
/// (and counted) rather than conflated with "not covered".
fn test_subsumption(
    ground: &HashMap<Tuple, Clause>,
    metrics: &EngineStats,
    clause: &Clause,
    example: &Tuple,
    budget_template: &EvalBudget,
) -> CoverageOutcome {
    let Some(bottom) = ground.get(example) else {
        return CoverageOutcome::NotCovered;
    };
    EngineStats::bump(&metrics.coverage_tests);
    let mut budget = budget_template.clone();
    let outcome = subsumes_with_eval_budget(clause, bottom, &mut budget);
    if outcome.subsumes() {
        CoverageOutcome::Covered
    } else if outcome.exhausted {
        EngineStats::bump(&metrics.budget_exhausted);
        CoverageOutcome::Exhausted
    } else {
        CoverageOutcome::NotCovered
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use castor_logic::Atom;
    use castor_relational::{RelationSymbol, Schema};

    fn db() -> DatabaseInstance {
        let mut schema = Schema::new("demo");
        schema.add_relation(RelationSymbol::new("publication", &["title", "person"]));
        let mut db = DatabaseInstance::empty(&schema);
        for (t, p) in [
            ("p1", "ann"),
            ("p1", "bob"),
            ("p2", "carol"),
            ("p2", "dan"),
            ("p3", "eve"),
        ] {
            db.insert("publication", Tuple::from_strs(&[t, p])).unwrap();
        }
        db
    }

    fn collaborated() -> Clause {
        Clause::new(
            Atom::vars("collaborated", &["x", "y"]),
            vec![
                Atom::vars("publication", &["p", "x"]),
                Atom::vars("publication", &["p", "y"]),
            ],
        )
    }

    fn engine(threads: usize) -> CoverageEngine {
        let db = db();
        let plan = BottomClausePlan::compile(db.schema(), false);
        let config = CastorConfig::default().with_threads(threads);
        CoverageEngine::build(
            &db,
            &plan,
            "collaborated",
            &[
                Tuple::from_strs(&["ann", "bob"]),
                Tuple::from_strs(&["carol", "dan"]),
            ],
            &[
                Tuple::from_strs(&["ann", "carol"]),
                Tuple::from_strs(&["eve", "bob"]),
            ],
            &config,
        )
    }

    #[test]
    fn subsumption_coverage_matches_semantics() {
        let engine = engine(1);
        let clause = collaborated();
        assert!(engine.covers(&clause, &Tuple::from_strs(&["ann", "bob"])));
        assert!(!engine.covers(&clause, &Tuple::from_strs(&["ann", "carol"])));
        let (pos, neg) = engine.coverage_counts(
            &clause,
            &[
                Tuple::from_strs(&["ann", "bob"]),
                Tuple::from_strs(&["carol", "dan"]),
            ],
            &[
                Tuple::from_strs(&["ann", "carol"]),
                Tuple::from_strs(&["eve", "bob"]),
            ],
        );
        assert_eq!((pos, neg), (2, 0));
    }

    #[test]
    fn unknown_example_is_not_covered() {
        let engine = engine(1);
        assert!(!engine.covers(&collaborated(), &Tuple::from_strs(&["nobody", "else"])));
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let sequential = engine(1);
        let parallel = engine(4);
        let clause = collaborated();
        let examples: Vec<Tuple> = vec![
            Tuple::from_strs(&["ann", "bob"]),
            Tuple::from_strs(&["carol", "dan"]),
            Tuple::from_strs(&["ann", "carol"]),
            Tuple::from_strs(&["eve", "bob"]),
        ];
        // Exceed the parallel threshold so the pool path actually runs.
        let many: Vec<Tuple> = examples.iter().cycle().take(32).cloned().collect();
        assert_eq!(
            sequential.covered_set(&clause, &many, Prior::None),
            parallel.covered_set(&clause, &many, Prior::None)
        );
    }

    #[test]
    fn shared_pool_is_reused() {
        let db = db();
        let plan = BottomClausePlan::compile(db.schema(), false);
        let config = CastorConfig::default().with_threads(3);
        let pool = Arc::new(WorkerPool::new(3));
        let engine = CoverageEngine::build_with_pool(
            &db,
            &plan,
            "collaborated",
            &[Tuple::from_strs(&["ann", "bob"])],
            &[],
            &config,
            Arc::clone(&pool),
        );
        assert!(Arc::ptr_eq(engine.runtime.pool(), &pool));
        assert!(engine.covers(&collaborated(), &Tuple::from_strs(&["ann", "bob"])));
    }

    #[test]
    fn known_covered_examples_are_skipped() {
        let engine = engine(1);
        let clause = collaborated();
        let before = engine.tests_performed();
        let known: HashSet<Tuple> = [Tuple::from_strs(&["ann", "bob"])].into_iter().collect();
        let covered = engine.covered_set(
            &clause,
            &[Tuple::from_strs(&["ann", "bob"])],
            Prior::Known(&known),
        );
        assert_eq!(covered.len(), 1);
        assert_eq!(engine.tests_performed(), before); // no new test ran
        assert_eq!(engine.report().generality_skips, 1);
    }

    #[test]
    fn known_prior_does_not_poison_the_cache() {
        let engine = engine(1);
        let clause = collaborated();
        // The caller (wrongly) claims a negative example is covered.
        let bogus: HashSet<Tuple> = [Tuple::from_strs(&["ann", "carol"])].into_iter().collect();
        let claimed = engine.covered_set(
            &clause,
            &[Tuple::from_strs(&["ann", "carol"])],
            Prior::Known(&bogus),
        );
        assert_eq!(claimed.len(), 1); // the per-call result honors the claim
                                      // ...but the memo cache does not: a fresh query re-tests and gets
                                      // the true answer.
        assert!(!engine.covers(&clause, &Tuple::from_strs(&["ann", "carol"])));
    }

    #[test]
    fn generalizations_inherit_parent_coverage_from_cache() {
        let engine = engine(1);
        let parent = collaborated();
        let examples = [
            Tuple::from_strs(&["ann", "bob"]),
            Tuple::from_strs(&["ann", "carol"]),
        ];
        engine.covered_set(&parent, &examples, Prior::None);
        let child = Clause::new(
            Atom::vars("collaborated", &["x", "y"]),
            vec![Atom::vars("publication", &["p", "x"])],
        );
        let tests_before = engine.tests_performed();
        let covered = engine.covered_set(&child, &examples, Prior::GeneralizationOf(&parent));
        assert!(covered.contains(&Tuple::from_strs(&["ann", "bob"])));
        // Only the example the parent did NOT cover needed a test.
        assert_eq!(engine.tests_performed(), tests_before + 1);
    }

    #[test]
    fn alpha_equivalent_candidates_share_the_cache() {
        let engine = engine(1);
        let a = collaborated();
        let b = Clause::new(
            Atom::vars("collaborated", &["u", "v"]),
            vec![
                Atom::vars("publication", &["w", "u"]),
                Atom::vars("publication", &["w", "v"]),
            ],
        );
        let e = Tuple::from_strs(&["ann", "bob"]);
        engine.covers(&a, &e);
        let tests_before = engine.tests_performed();
        assert!(engine.covers(&b, &e));
        assert_eq!(engine.tests_performed(), tests_before);
    }

    #[test]
    fn batched_beam_matches_per_clause_covered_sets() {
        let batched = engine(1);
        let solo = engine(1);
        let examples: Vec<Tuple> = vec![
            Tuple::from_strs(&["ann", "bob"]),
            Tuple::from_strs(&["carol", "dan"]),
            Tuple::from_strs(&["ann", "carol"]),
            Tuple::from_strs(&["eve", "bob"]),
        ];
        let parent = collaborated();
        let child = Clause::new(
            Atom::vars("collaborated", &["x", "y"]),
            vec![Atom::vars("publication", &["p", "x"])],
        );
        let beam = vec![parent.clone(), child.clone()];
        let sets = batched.covered_sets_batch(&beam, &examples);
        for (clause, set) in beam.iter().zip(&sets) {
            assert_eq!(set, &solo.covered_set(clause, &examples, Prior::None));
        }
        // With the parent's coverage now cached, a prior-carrying batch
        // skips the parent-covered examples.
        let tests_before = batched.tests_performed();
        let priors = vec![Prior::GeneralizationOf(&parent)];
        let with_prior = batched.covered_sets_batch_with_priors(
            std::slice::from_ref(&child),
            &priors,
            &examples,
        );
        assert_eq!(with_prior[0], sets[1]);
        assert_eq!(batched.tests_performed(), tests_before); // all answered by cache/prior
    }

    #[test]
    fn budget_template_carries_cancellation_into_subsumption() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let token = Arc::new(AtomicBool::new(false));
        let engine =
            engine(1).with_budget_template(EvalBudget::with_cancel(30_000, Arc::clone(&token)));
        let e = Tuple::from_strs(&["ann", "bob"]);
        assert!(engine.covers(&collaborated(), &e));
        token.store(true, Ordering::Relaxed);
        // A different (uncached) example: the cancelled search aborts as an
        // exhaustion and is counted.
        let exhausted_before = engine.report().budget_exhausted;
        assert!(!engine.covers(&collaborated(), &Tuple::from_strs(&["carol", "dan"])));
        assert!(engine.report().budget_exhausted > exhausted_before);
    }

    #[test]
    fn exhausted_subsumption_verdicts_hit_the_budget_tier() {
        // Regression: `exhaustion_scope` used to return `None` for the
        // subsumption engine, so every exhausted probe re-ran its search.
        let db = db();
        let plan = BottomClausePlan::compile(db.schema(), false);
        let mut config = CastorConfig::default();
        config.params.eval_budget = 0;
        let engine = CoverageEngine::build(
            &db,
            &plan,
            "collaborated",
            &[Tuple::from_strs(&["ann", "bob"])],
            &[],
            &config,
        );
        let e = Tuple::from_strs(&["ann", "bob"]);
        // Zero budget: the subsumption search exhausts and is memoized
        // keyed by that budget...
        assert!(!engine.covers(&collaborated(), &e));
        let first = engine.report();
        assert_eq!(first.budget_exhausted, 1);
        assert_eq!(first.coverage_tests, 1);
        // ...so the re-test is a cache hit: no new search runs.
        assert!(!engine.covers(&collaborated(), &e));
        let second = engine.report();
        assert_eq!(second.coverage_tests, first.coverage_tests);
        assert_eq!(second.cache_hits, first.cache_hits + 1);
        assert_eq!(second.budget_exhausted, first.budget_exhausted);
        // A larger per-test budget treats the entry as a miss and decides
        // the test for real.
        let engine = engine.with_budget_template(EvalBudget::new(30_000));
        assert!(engine.covers(&collaborated(), &e));
        assert_eq!(engine.report().coverage_tests, second.coverage_tests + 1);
    }

    #[test]
    fn parallel_ground_construction_is_bit_identical_to_sequential() {
        let db = db();
        let plan = BottomClausePlan::compile(db.schema(), false);
        let config = CastorConfig::default();
        let examples: Vec<Tuple> = vec![
            Tuple::from_strs(&["ann", "bob"]),
            Tuple::from_strs(&["carol", "dan"]),
            Tuple::from_strs(&["ann", "carol"]),
            Tuple::from_strs(&["eve", "bob"]),
            Tuple::from_strs(&["ann", "bob"]), // duplicate: built once
        ];
        let inline = WorkerPool::new(1);
        let pooled = WorkerPool::new(4);
        let sequential =
            ground_bottom_clauses(&db, &plan, "collaborated", &examples, &config, &inline);
        let parallel =
            ground_bottom_clauses(&db, &plan, "collaborated", &examples, &config, &pooled);
        assert_eq!(sequential.len(), 4);
        assert_eq!(sequential, parallel);
        // Body order matters for bit-identity, not just set equality.
        for (example, clause) in &sequential {
            assert_eq!(parallel[example].body, clause.body);
        }
    }

    #[test]
    fn test_counter_increments() {
        let engine = engine(1);
        let n0 = engine.tests_performed();
        engine.covers(&collaborated(), &Tuple::from_strs(&["ann", "bob"]));
        assert_eq!(engine.tests_performed(), n0 + 1);
    }
}
