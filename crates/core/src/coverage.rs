//! Coverage testing by θ-subsumption with caching and parallelism
//! (Sections 7.5.3–7.5.4).
//!
//! Castor evaluates a candidate clause by checking, for each example,
//! whether the clause θ-subsumes the example's *ground bottom clause* — the
//! same semantics as evaluating against the database, but over a small
//! pre-materialized neighborhood, which is what lets coverage tests be
//! parallelized and cached. The engine below:
//!
//! * materializes the ground bottom clause of every example once (the
//!   "stored procedure" call per example in the paper's implementation);
//! * splits the example set across worker threads (Figure 2's ablation);
//! * exploits the generality order: if a clause is known to cover an
//!   example, any of its generalizations covers it too, so the caller can
//!   pass the already-covered set and skip those tests.

use crate::config::CastorConfig;
use crate::plan::BottomClausePlan;
use castor_logic::{subsumes, Clause};
use castor_relational::{DatabaseInstance, Tuple};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Coverage-testing engine holding the ground bottom clauses of the
/// training examples.
#[derive(Debug)]
pub struct CoverageEngine {
    ground: HashMap<Tuple, Clause>,
    threads: usize,
    tests_performed: AtomicUsize,
}

impl CoverageEngine {
    /// Materializes ground bottom clauses for every positive and negative
    /// example of the task.
    pub fn build(
        db: &DatabaseInstance,
        plan: &BottomClausePlan,
        target: &str,
        positive: &[Tuple],
        negative: &[Tuple],
        config: &CastorConfig,
    ) -> Self {
        let mut ground = HashMap::new();
        for example in positive.iter().chain(negative.iter()) {
            ground.entry(example.clone()).or_insert_with(|| {
                crate::bottom_clause::castor_ground_bottom_clause(
                    db, plan, target, example, config,
                )
            });
        }
        CoverageEngine {
            ground,
            threads: config.params.threads.max(1),
            tests_performed: AtomicUsize::new(0),
        }
    }

    /// Number of subsumption tests performed so far (used by the ablation
    /// reports).
    pub fn tests_performed(&self) -> usize {
        self.tests_performed.load(Ordering::Relaxed)
    }

    /// Whether `clause` covers `example` (θ-subsumes its ground bottom
    /// clause).
    pub fn covers(&self, clause: &Clause, example: &Tuple) -> bool {
        let Some(ground) = self.ground.get(example) else {
            return false;
        };
        self.tests_performed.fetch_add(1, Ordering::Relaxed);
        subsumes(clause, ground)
    }

    /// The subset of `examples` covered by `clause`. Examples present in
    /// `known_covered` are assumed covered without re-testing (valid when
    /// `clause` generalizes a clause already known to cover them).
    pub fn covered_set(
        &self,
        clause: &Clause,
        examples: &[Tuple],
        known_covered: Option<&HashSet<Tuple>>,
    ) -> HashSet<Tuple> {
        let mut result: HashSet<Tuple> = HashSet::new();
        let mut to_test: Vec<&Tuple> = Vec::new();
        for e in examples {
            if known_covered.is_some_and(|k| k.contains(e)) {
                result.insert(e.clone());
            } else {
                to_test.push(e);
            }
        }
        if to_test.is_empty() {
            return result;
        }
        if self.threads <= 1 || to_test.len() < 8 {
            for e in to_test {
                if self.covers(clause, e) {
                    result.insert(e.clone());
                }
            }
            return result;
        }

        // Parallel coverage testing: split the pending examples into chunks,
        // one per worker thread.
        let covered = Mutex::new(Vec::new());
        let chunk_size = to_test.len().div_ceil(self.threads);
        std::thread::scope(|scope| {
            for chunk in to_test.chunks(chunk_size) {
                let covered = &covered;
                let engine = &*self;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    for e in chunk {
                        if engine.covers(clause, e) {
                            local.push((*e).clone());
                        }
                    }
                    covered.lock().extend(local);
                });
            }
        });
        result.extend(covered.into_inner());
        result
    }

    /// Positive/negative coverage counts for `clause`.
    pub fn coverage_counts(
        &self,
        clause: &Clause,
        positive: &[Tuple],
        negative: &[Tuple],
    ) -> (usize, usize) {
        let pos = self.covered_set(clause, positive, None).len();
        let neg = self.covered_set(clause, negative, None).len();
        (pos, neg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use castor_logic::Atom;
    use castor_relational::{RelationSymbol, Schema};

    fn db() -> DatabaseInstance {
        let mut schema = Schema::new("demo");
        schema.add_relation(RelationSymbol::new("publication", &["title", "person"]));
        let mut db = DatabaseInstance::empty(&schema);
        for (t, p) in [
            ("p1", "ann"),
            ("p1", "bob"),
            ("p2", "carol"),
            ("p2", "dan"),
            ("p3", "eve"),
        ] {
            db.insert("publication", Tuple::from_strs(&[t, p])).unwrap();
        }
        db
    }

    fn collaborated() -> Clause {
        Clause::new(
            Atom::vars("collaborated", &["x", "y"]),
            vec![
                Atom::vars("publication", &["p", "x"]),
                Atom::vars("publication", &["p", "y"]),
            ],
        )
    }

    fn engine(threads: usize) -> CoverageEngine {
        let db = db();
        let plan = BottomClausePlan::compile(db.schema(), false);
        let config = CastorConfig::default().with_threads(threads);
        CoverageEngine::build(
            &db,
            &plan,
            "collaborated",
            &[
                Tuple::from_strs(&["ann", "bob"]),
                Tuple::from_strs(&["carol", "dan"]),
            ],
            &[
                Tuple::from_strs(&["ann", "carol"]),
                Tuple::from_strs(&["eve", "bob"]),
            ],
            &config,
        )
    }

    #[test]
    fn subsumption_coverage_matches_semantics() {
        let engine = engine(1);
        let clause = collaborated();
        assert!(engine.covers(&clause, &Tuple::from_strs(&["ann", "bob"])));
        assert!(!engine.covers(&clause, &Tuple::from_strs(&["ann", "carol"])));
        let (pos, neg) = engine.coverage_counts(
            &clause,
            &[
                Tuple::from_strs(&["ann", "bob"]),
                Tuple::from_strs(&["carol", "dan"]),
            ],
            &[
                Tuple::from_strs(&["ann", "carol"]),
                Tuple::from_strs(&["eve", "bob"]),
            ],
        );
        assert_eq!((pos, neg), (2, 0));
    }

    #[test]
    fn unknown_example_is_not_covered() {
        let engine = engine(1);
        assert!(!engine.covers(&collaborated(), &Tuple::from_strs(&["nobody", "else"])));
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let sequential = engine(1);
        let parallel = engine(4);
        let clause = collaborated();
        let examples: Vec<Tuple> = vec![
            Tuple::from_strs(&["ann", "bob"]),
            Tuple::from_strs(&["carol", "dan"]),
            Tuple::from_strs(&["ann", "carol"]),
            Tuple::from_strs(&["eve", "bob"]),
        ];
        // Force the parallel path by lowering the threshold: duplicate the
        // example list so it exceeds the small-input cutoff.
        let many: Vec<Tuple> = examples
            .iter()
            .cycle()
            .take(32)
            .cloned()
            .collect();
        assert_eq!(
            sequential.covered_set(&clause, &many, None),
            parallel.covered_set(&clause, &many, None)
        );
    }

    #[test]
    fn known_covered_examples_are_skipped() {
        let engine = engine(1);
        let clause = collaborated();
        let before = engine.tests_performed();
        let known: HashSet<Tuple> = [Tuple::from_strs(&["ann", "bob"])].into_iter().collect();
        let covered = engine.covered_set(
            &clause,
            &[Tuple::from_strs(&["ann", "bob"])],
            Some(&known),
        );
        assert_eq!(covered.len(), 1);
        assert_eq!(engine.tests_performed(), before); // no new test ran
    }

    #[test]
    fn test_counter_increments() {
        let engine = engine(1);
        let n0 = engine.tests_performed();
        engine.covers(&collaborated(), &Tuple::from_strs(&["ann", "bob"]));
        assert_eq!(engine.tests_performed(), n0 + 1);
    }
}
