//! # castor-core
//!
//! **Castor**: the schema-independent, bottom-up relational learning
//! algorithm of *Schema Independent Relational Learning* (Picado,
//! Termehchy, Fern, Ataei; 2017) — the paper's primary contribution
//! (Section 7).
//!
//! Castor follows the same covering/beam-search strategy as ProGolem but
//! integrates the schema's inclusion dependencies (INDs) into every phase so
//! that its output is invariant under vertical composition/decomposition of
//! the schema:
//!
//! * [`bottom_clause`] — IND-aware bottom-clause construction (Section 7.1):
//!   whenever a tuple of a relation in an inclusion class is added, the
//!   tuples of the other class members that join with it through the INDs
//!   with equality are added in the same iteration, and the stopping
//!   condition counts *distinct variables* instead of depth (which is
//!   invariant under (de)composition).
//! * [`armg`] — Castor's ARMG (Section 7.2.1): after removing a blocking
//!   atom, literals whose free tuples no longer satisfy the INDs of their
//!   inclusion class are removed too, so generalizations stay equivalent
//!   across schemas (Example 7.6, Lemma 7.7).
//! * [`reduction`] — negative reduction over instances of inclusion classes
//!   (Algorithm 5, Lemma 7.8), with the safe variant of Section 7.3.
//! * [`coverage`] — coverage testing by θ-subsumption against ground
//!   bottom-clauses, with result caching and multi-threaded evaluation
//!   (Section 7.5; Figure 2 measures the parallelization ablation).
//! * [`plan`] — the "stored procedure" emulation (Section 7.5.2): a
//!   pre-compiled per-schema bottom-clause plan (inclusion classes and
//!   attribute positions resolved once, reused across calls); Table 13
//!   compares planned vs. unplanned construction.
//! * [`learner`] — Castor's `LearnClause` (Algorithm 4) and the public
//!   [`Castor`] entry point.
//! * [`config`] — [`CastorConfig`], including the general-IND extension of
//!   Section 7.4 (`use_general_inds`) and the safe-clause mode.
//!
//! ## Quickstart
//!
//! ```
//! use castor_core::{Castor, CastorConfig};
//! use castor_learners::LearningTask;
//! use castor_relational::{DatabaseInstance, InclusionDependency, RelationSymbol, Schema, Tuple};
//!
//! // A tiny database: collaborators share a publication.
//! let mut schema = Schema::new("demo");
//! schema.add_relation(RelationSymbol::new("publication", &["title", "person"]));
//! let mut db = DatabaseInstance::empty(&schema);
//! for (t, p) in [("p1", "ann"), ("p1", "bob"), ("p2", "carol"), ("p2", "dan")] {
//!     db.insert("publication", Tuple::from_strs(&[t, p])).unwrap();
//! }
//! let task = LearningTask::new(
//!     "collaborated",
//!     2,
//!     vec![Tuple::from_strs(&["ann", "bob"]), Tuple::from_strs(&["carol", "dan"])],
//!     vec![Tuple::from_strs(&["ann", "carol"])],
//! );
//! let mut castor = Castor::new(CastorConfig::default());
//! let outcome = castor.learn(&db, &task);
//! assert!(!outcome.definition.is_empty());
//! ```

pub mod armg;
pub mod bottom_clause;
pub mod config;
pub mod coverage;
pub mod learner;
pub mod plan;
pub mod reduction;

pub use armg::castor_armg;
pub use bottom_clause::{castor_bottom_clause, castor_ground_bottom_clause};
pub use config::CastorConfig;
pub use coverage::{ground_bottom_clauses, CoverageEngine};
pub use learner::{Castor, LearnOutcome};
pub use plan::BottomClausePlan;
