//! Castor's IND-aware ARMG (Section 7.2.1).
//!
//! ProGolem's ARMG removes the blocking atom and any literal left
//! unconnected to the head. Castor additionally keeps the canonical
//! database of the clause consistent with the schema's INDs with equality:
//! immediately after removing a blocking atom, every remaining literal whose
//! free tuple no longer joins (on the IND's attributes) with some literal of
//! each IND it participates in is removed as well. This is what makes the
//! generalizations equivalent across (de)compositions (Example 7.6,
//! Lemma 7.7): dropping `student(x, prelim, 3)` over the composed schema
//! corresponds to dropping *all three* of `student(x)`, `inPhase(x,prelim)`,
//! `yearsInProgram(x,3)` over the decomposed one.

use crate::plan::BottomClausePlan;
use castor_engine::Engine;
use castor_learners::progolem::blocking_atom_index;
use castor_logic::{Atom, Clause, Term};
use castor_relational::Schema;

/// Castor's ARMG: generalizes `clause` to cover `example`, enforcing IND
/// consistency after every blocking-atom removal. Returns `None` when the
/// head cannot match the example at all. Prefix coverage tests go through
/// the evaluation engine, so overlapping armg calls share cached results.
pub fn castor_armg(
    clause: &Clause,
    engine: &Engine,
    plan: &BottomClausePlan,
    example: &castor_relational::Tuple,
) -> Option<Clause> {
    let mut current = clause.clone();
    loop {
        if engine.covers(&current, example) {
            return Some(current);
        }
        let blocking = blocking_atom_index(&current, engine, example)?;
        current.body.remove(blocking);
        enforce_ind_consistency(&mut current, engine.snapshot().schema(), plan);
        current.remove_unconnected();
    }
}

/// Removes body literals whose free tuples violate an IND with equality of
/// their inclusion class in the clause's canonical database: a literal
/// `R1(u1)` participating in IND `R1[X] = R2[X]` must be joined by some
/// literal `R2(u2)` with `π_X(u1) = π_X(u2)`; otherwise it is dropped.
/// Removal cascades until a fixpoint because dropping one literal can orphan
/// another.
pub fn enforce_ind_consistency(clause: &mut Clause, schema: &Schema, plan: &BottomClausePlan) {
    loop {
        let mut to_remove: Option<usize> = None;
        'outer: for (i, literal) in clause.body.iter().enumerate() {
            for edge in plan.edges_of(&literal.relation) {
                // Only enforce INDs with equality declared by the schema in
                // both directions; the plan stores each declared IND in both
                // directions already, so every edge of an equality class is
                // a requirement.
                let partner_exists = clause.body.iter().enumerate().any(|(j, other)| {
                    j != i
                        && other.relation == edge.to_relation
                        && project_terms(literal, &edge.from_positions)
                            == project_terms(other, &edge.to_positions)
                });
                if !partner_exists {
                    // A literal may satisfy the IND through itself when the
                    // IND is self-referential; that does not occur in the
                    // benchmark schemas, so a missing partner means removal.
                    to_remove = Some(i);
                    break 'outer;
                }
            }
        }
        match to_remove {
            Some(i) => {
                clause.body.remove(i);
            }
            None => break,
        }
    }
    let _ = schema;
}

fn project_terms<'a>(atom: &'a Atom, positions: &[usize]) -> Vec<&'a Term> {
    positions.iter().map(|&p| &atom.terms[p]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use castor_engine::EngineConfig;
    use castor_logic::covers_example;
    use castor_relational::{DatabaseInstance, InclusionDependency, RelationSymbol, Schema, Tuple};

    /// Original UW-CSE fragment with INDs with equality among the student
    /// parts (the setting of Examples 6.5 / 7.6).
    fn schema_original() -> Schema {
        let mut s = Schema::new("uwcse-original");
        s.add_relation(RelationSymbol::new("student", &["stud"]))
            .add_relation(RelationSymbol::new("inPhase", &["stud", "phase"]))
            .add_relation(RelationSymbol::new("yearsInProgram", &["stud", "years"]))
            .add_ind(InclusionDependency::equality(
                "student",
                &["stud"],
                "inPhase",
                &["stud"],
            ))
            .add_ind(InclusionDependency::equality(
                "student",
                &["stud"],
                "yearsInProgram",
                &["stud"],
            ));
        s
    }

    fn db_original() -> DatabaseInstance {
        let mut db = DatabaseInstance::empty(&schema_original());
        for (s, phase, years) in [("ann", "prelim", "3"), ("carl", "post", "7")] {
            db.insert("student", Tuple::from_strs(&[s])).unwrap();
            db.insert("inPhase", Tuple::from_strs(&[s, phase])).unwrap();
            db.insert("yearsInProgram", Tuple::from_strs(&[s, years]))
                .unwrap();
        }
        db
    }

    /// The clause of Example 6.5 over the Original schema.
    fn hard_working_original() -> Clause {
        Clause::new(
            Atom::vars("hardWorking", &["x"]),
            vec![
                Atom::vars("student", &["x"]),
                Atom::new("inPhase", vec![Term::var("x"), Term::constant("prelim")]),
                Atom::new("yearsInProgram", vec![Term::var("x"), Term::constant("3")]),
            ],
        )
    }

    #[test]
    fn castor_armg_removes_whole_inclusion_instance() {
        // Example 7.6: generalizing towards carl (post, 7) must remove not
        // just the blocking inPhase literal but also student and
        // yearsInProgram, mirroring the removal of the single composed
        // literal student(x,prelim,3) over the 4NF schema.
        let db = db_original();
        let plan = BottomClausePlan::compile(db.schema(), false);
        let clause = hard_working_original();
        let engine = Engine::new(&db, EngineConfig::default());
        let generalized =
            castor_armg(&clause, &engine, &plan, &Tuple::from_strs(&["carl"])).unwrap();
        assert!(covers_example(
            &generalized,
            &db,
            &Tuple::from_strs(&["carl"])
        ));
        // All three literals of the inclusion instance are gone: the result
        // is the empty-bodied (most general) clause, exactly what ARMG over
        // the composed schema produces after dropping student(x,prelim,3).
        assert_eq!(generalized.body_len(), 0);
    }

    #[test]
    fn plain_progolem_armg_would_keep_student_literal() {
        // Contrast with ProGolem's ARMG (no IND enforcement): student(x)
        // survives, which is the source of schema dependence.
        let db = db_original();
        let clause = hard_working_original();
        let engine = Engine::new(&db, EngineConfig::default());
        let generalized =
            castor_learners::progolem::armg(&clause, &engine, &Tuple::from_strs(&["carl"]))
                .unwrap();
        assert!(generalized.body.iter().any(|a| a.relation == "student"));
    }

    #[test]
    fn ind_consistency_keeps_complete_instances() {
        let db = db_original();
        let plan = BottomClausePlan::compile(db.schema(), false);
        let mut clause = Clause::new(
            Atom::vars("t", &["x"]),
            vec![
                Atom::vars("student", &["x"]),
                Atom::vars("inPhase", &["x", "p"]),
                Atom::vars("yearsInProgram", &["x", "y"]),
            ],
        );
        enforce_ind_consistency(&mut clause, db.schema(), &plan);
        assert_eq!(clause.body_len(), 3);
    }

    #[test]
    fn ind_consistency_cascades_removals() {
        let db = db_original();
        let plan = BottomClausePlan::compile(db.schema(), false);
        // inPhase and yearsInProgram without the student literal: each still
        // has the other as a partner for the student IND? No — their INDs
        // both require a student literal on the same variable, so both go.
        let mut clause = Clause::new(
            Atom::vars("t", &["x"]),
            vec![
                Atom::vars("inPhase", &["x", "p"]),
                Atom::vars("yearsInProgram", &["x", "y"]),
            ],
        );
        enforce_ind_consistency(&mut clause, db.schema(), &plan);
        assert_eq!(clause.body_len(), 0);
    }

    #[test]
    fn armg_returns_none_when_head_conflicts() {
        let db = db_original();
        let plan = BottomClausePlan::compile(db.schema(), false);
        let clause = Clause::new(
            Atom::new("t", vec![Term::constant("ann")]),
            vec![Atom::vars("student", &["x"])],
        );
        let engine = Engine::new(&db, EngineConfig::default());
        assert!(castor_armg(&clause, &engine, &plan, &Tuple::from_strs(&["carl"])).is_none());
    }

    #[test]
    fn literals_outside_inclusion_classes_are_untouched() {
        let mut schema = schema_original();
        schema.add_relation(RelationSymbol::new("publication", &["title", "person"]));
        let plan = BottomClausePlan::compile(&schema, false);
        let mut clause = Clause::new(
            Atom::vars("t", &["x"]),
            vec![Atom::vars("publication", &["p", "x"])],
        );
        enforce_ind_consistency(&mut clause, &schema, &plan);
        assert_eq!(clause.body_len(), 1);
    }
}
