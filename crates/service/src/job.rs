//! Jobs, results, and handles for the serving layer's per-database queues.
//!
//! A [`Job`] is submitted through a [`crate::Session`] and executed by the
//! owning database's runner thread in submission order. The caller gets a
//! [`JobHandle`] back immediately: `join` blocks until the result is in,
//! `try_poll` peeks without blocking. Handles are cheap to clone and can be
//! waited on from any thread.

use crate::deadline::Deadline;
use castor_core::CastorConfig;
use castor_engine::ClauseCounts;
use castor_learners::{LearnerParams, LearningTask};
use castor_logic::{Clause, Definition};
use castor_relational::{MutationBatch, MutationSummary, RelationalError, Tuple};
use std::collections::HashSet;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};

/// Compute the covered subset of `examples` for every clause of a batch
/// (the serving-layer shape of `Engine::covered_sets_batch`).
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageJob {
    /// Candidate clauses (a beam, a learned definition, ...).
    pub clauses: Vec<Clause>,
    /// Examples to test each clause against.
    pub examples: Vec<Tuple>,
    /// Optional deadline: expired-while-queued jobs are shed with
    /// [`JobError::DeadlineExceeded`]; a deadline passing mid-run aborts
    /// the job through the cancel-token path.
    pub deadline: Option<Deadline>,
}

impl CoverageJob {
    /// A coverage job with no deadline.
    pub fn new(clauses: Vec<Clause>, examples: Vec<Tuple>) -> Self {
        CoverageJob {
            clauses,
            examples,
            deadline: None,
        }
    }

    /// Attaches a deadline (builder style).
    pub fn with_deadline(mut self, deadline: Deadline) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// Count positive/negative coverage for every clause of a batch through the
/// fused batched scoring path.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoreJob {
    /// Candidate clauses.
    pub clauses: Vec<Clause>,
    /// Positive examples.
    pub positive: Vec<Tuple>,
    /// Negative examples.
    pub negative: Vec<Tuple>,
    /// Optional deadline (see [`CoverageJob::deadline`]).
    pub deadline: Option<Deadline>,
}

impl ScoreJob {
    /// A score job with no deadline.
    pub fn new(clauses: Vec<Clause>, positive: Vec<Tuple>, negative: Vec<Tuple>) -> Self {
        ScoreJob {
            clauses,
            positive,
            negative,
            deadline: None,
        }
    }

    /// Attaches a deadline (builder style).
    pub fn with_deadline(mut self, deadline: Deadline) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// Run one learner over the engine's current database snapshot.
///
/// The session's budget override and cancellation token govern every
/// coverage test the learner performs (database execution and, for Castor,
/// θ-subsumption against ground bottom clauses). Bottom-clause grounding
/// itself is not budget-driven: cancellation takes effect at the job's
/// next coverage test.
#[derive(Debug, Clone, PartialEq)]
pub struct LearnJob {
    /// The learning task (target relation plus labeled examples).
    pub task: LearningTask,
    /// Which learner to run, with its parameters.
    pub algorithm: LearnAlgorithm,
    /// Optional deadline (see [`CoverageJob::deadline`]). A deadline
    /// firing mid-learn aborts at the learner's next coverage test and the
    /// job completes with [`JobError::DeadlineExceeded`] instead of a
    /// partial definition.
    pub deadline: Option<Deadline>,
}

impl LearnJob {
    /// A learn job with no deadline.
    pub fn new(task: LearningTask, algorithm: LearnAlgorithm) -> Self {
        LearnJob {
            task,
            algorithm,
            deadline: None,
        }
    }

    /// Attaches a deadline (builder style).
    pub fn with_deadline(mut self, deadline: Deadline) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// The learners the serving layer can run.
#[derive(Debug, Clone, PartialEq)]
pub enum LearnAlgorithm {
    /// FOIL (greedy top-down).
    Foil(LearnerParams),
    /// Progol (bottom-clause-bounded beam search).
    Progol(LearnerParams),
    /// Golem (rlgg-based bottom-up).
    Golem(LearnerParams),
    /// ProGolem (ARMG-based bottom-up).
    ProGolem(LearnerParams),
    /// Castor (the paper's schema-independent learner).
    Castor(Box<CastorConfig>),
}

/// Work a session can enqueue.
#[derive(Debug, Clone, PartialEq)]
pub enum Job {
    /// Covered-set computation.
    Coverage(CoverageJob),
    /// Fused positive/negative scoring.
    Score(ScoreJob),
    /// A learner run.
    Learn(Box<LearnJob>),
    /// A mutation batch against the live database (serialized with the
    /// database's other jobs, so a session's own jobs see its mutations in
    /// submission order).
    Mutate(MutationBatch),
}

impl Job {
    /// The job's deadline, if one was attached. Mutations carry none:
    /// shedding an already-sent mutation would make its application
    /// ambiguous, which is exactly what deadlines exist to avoid.
    pub fn deadline(&self) -> Option<Deadline> {
        match self {
            Job::Coverage(j) => j.deadline,
            Job::Score(j) => j.deadline,
            Job::Learn(j) => j.deadline,
            Job::Mutate(_) => None,
        }
    }
}

/// The value a completed job produced.
#[derive(Debug, Clone)]
pub enum JobResult {
    /// Per-clause covered subsets, in the submitted clause order.
    Covered(Vec<HashSet<Tuple>>),
    /// Per-clause positive/negative counts, in the submitted clause order.
    Scores(Vec<ClauseCounts>),
    /// The learned definition.
    Learned(Definition),
    /// What the mutation batch changed.
    Mutated(MutationSummary),
}

impl JobResult {
    /// The covered sets, if this was a coverage job.
    pub fn into_covered(self) -> Option<Vec<HashSet<Tuple>>> {
        match self {
            JobResult::Covered(sets) => Some(sets),
            _ => None,
        }
    }

    /// The scores, if this was a score job.
    pub fn into_scores(self) -> Option<Vec<ClauseCounts>> {
        match self {
            JobResult::Scores(counts) => Some(counts),
            _ => None,
        }
    }

    /// The definition, if this was a learn job.
    pub fn into_definition(self) -> Option<Definition> {
        match self {
            JobResult::Learned(def) => Some(def),
            _ => None,
        }
    }

    /// The mutation summary, if this was a mutation job.
    pub fn into_summary(self) -> Option<MutationSummary> {
        match self {
            JobResult::Mutated(summary) => Some(summary),
            _ => None,
        }
    }
}

/// Why a job did not produce a result.
#[derive(Debug, Clone, PartialEq)]
pub enum JobError {
    /// The session's cancellation token was set before or during the job.
    Cancelled,
    /// The database's in-flight job cap was reached; the job was never
    /// queued (admission control — see
    /// [`crate::ServerConfig::max_inflight_per_database`]).
    Rejected {
        /// The configured per-database in-flight cap.
        limit: usize,
        /// Load-aware backoff hint: how long the submitter should wait
        /// before retrying, derived from the queue depth at rejection
        /// time. Retrying clients sleep at least this long, so an
        /// overloaded server sheds load instead of feeding a thundering
        /// herd.
        retry_after_ms: u64,
    },
    /// The job's deadline expired — either while it was still queued (shed
    /// without running) or mid-run (aborted through the cancel-token path
    /// within one candidate tuple).
    DeadlineExceeded,
    /// A mutation op failed (unknown relation, arity mismatch). Ops before
    /// the failing one remain applied; affected caches were invalidated.
    Mutation(RelationalError),
    /// The job panicked on the runner thread (the runner survives).
    Panicked(String),
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Cancelled => write!(f, "job cancelled by its session"),
            JobError::Rejected {
                limit,
                retry_after_ms,
            } => {
                write!(
                    f,
                    "database job queue at capacity ({limit} in flight); retry after {retry_after_ms}ms"
                )
            }
            JobError::DeadlineExceeded => write!(f, "job deadline exceeded"),
            JobError::Mutation(e) => write!(f, "mutation failed: {e}"),
            JobError::Panicked(msg) => write!(f, "job panicked: {msg}"),
        }
    }
}

impl std::error::Error for JobError {}

/// A completion callback armed on a handle: runs exactly once, on the
/// thread that completes the job (or inline on the arming thread if the
/// job already finished). Must never block — runner threads call it.
type CompletionHook = Box<dyn FnOnce() + Send>;

/// The slot a runner thread fills and waiters block on.
#[derive(Default)]
struct SharedState {
    result: Option<Result<JobResult, JobError>>,
    hook: Option<CompletionHook>,
}

/// The slot a runner thread fills and waiters block on, plus an optional
/// completion hook (see [`JobHandle::on_complete`]).
#[derive(Default)]
pub(crate) struct JobShared {
    state: Mutex<SharedState>,
    done: Condvar,
}

impl fmt::Debug for JobShared {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        f.debug_struct("JobShared")
            .field("done", &state.result.is_some())
            .field("hooked", &state.hook.is_some())
            .finish()
    }
}

impl JobShared {
    pub(crate) fn complete(&self, result: Result<JobResult, JobError>) {
        let hook = {
            let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
            state.result = Some(result);
            self.done.notify_all();
            state.hook.take()
        };
        // The hook runs outside the lock: it may fan out into arbitrary
        // notification machinery (an event loop's waker), and a waiter
        // woken by the notify above must not contend with it.
        if let Some(hook) = hook {
            hook();
        }
    }
}

/// A handle on a submitted job. Cloneable; every clone waits on the same
/// result slot.
#[derive(Debug, Clone)]
pub struct JobHandle {
    pub(crate) shared: Arc<JobShared>,
    pub(crate) trace: u64,
}

impl JobHandle {
    pub(crate) fn new(trace: u64) -> (JobHandle, Arc<JobShared>) {
        let shared = Arc::new(JobShared::default());
        (
            JobHandle {
                shared: Arc::clone(&shared),
                trace,
            },
            shared,
        )
    }

    /// The trace id this job's spans are recorded under: the RPC request
    /// id for wire-submitted jobs, a locally minted id (high bit set) for
    /// in-process submissions. Grep the server's trace dump for it to see
    /// the job's queue wait and engine time.
    pub fn trace_id(&self) -> u64 {
        self.trace
    }

    /// Blocks until the job finishes and returns its result.
    pub fn join(&self) -> Result<JobResult, JobError> {
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(result) = state.result.as_ref() {
                return result.clone();
            }
            state = self
                .shared
                .done
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// The job's result if it already finished, `None` while it is still
    /// queued or running.
    pub fn try_poll(&self) -> Option<Result<JobResult, JobError>> {
        self.shared
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .result
            .clone()
    }

    /// Arms a completion notification: `hook` runs exactly once when the
    /// job completes — on the completing runner thread, or inline right
    /// here if the result is already in. One hook per job (arming again
    /// replaces an unfired hook); the hook must not block, since it runs
    /// on the database's runner. This is how a non-blocking front end
    /// (the RPC event loop) learns a handle became joinable without
    /// parking a thread in [`JobHandle::join`].
    pub fn on_complete(&self, hook: impl FnOnce() + Send + 'static) {
        {
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            if state.result.is_none() {
                state.hook = Some(Box::new(hook));
                return;
            }
        }
        // Already complete: fire inline, outside the lock.
        hook();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handle_polls_none_then_joins_the_completed_result() {
        let (handle, shared) = JobHandle::new(7);
        assert_eq!(handle.trace_id(), 7);
        assert!(handle.try_poll().is_none());
        let waiter = handle.clone();
        let thread = std::thread::spawn(move || waiter.join());
        shared.complete(Ok(JobResult::Covered(Vec::new())));
        let joined = thread.join().unwrap().unwrap();
        assert!(matches!(joined, JobResult::Covered(sets) if sets.is_empty()));
        assert!(handle.try_poll().is_some());
    }

    #[test]
    fn result_downcasts_select_the_right_variant() {
        let covered = JobResult::Covered(vec![HashSet::new()]);
        assert!(covered.clone().into_covered().is_some());
        assert!(covered.into_scores().is_none());
        let learned = JobResult::Learned(Definition::empty("t"));
        assert_eq!(learned.into_definition().unwrap().len(), 0);
    }

    #[test]
    fn completion_hook_fires_once_on_complete_or_inline_when_late() {
        use std::sync::atomic::{AtomicUsize, Ordering};

        // Armed before completion: fires on the completing thread.
        let (handle, shared) = JobHandle::new(1);
        let fired = Arc::new(AtomicUsize::new(0));
        let hook_fired = Arc::clone(&fired);
        handle.on_complete(move || {
            hook_fired.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(fired.load(Ordering::SeqCst), 0, "not before completion");
        shared.complete(Ok(JobResult::Covered(Vec::new())));
        assert_eq!(fired.load(Ordering::SeqCst), 1);

        // Armed after completion: fires inline, exactly once.
        let late = Arc::new(AtomicUsize::new(0));
        let hook_late = Arc::clone(&late);
        handle.on_complete(move || {
            hook_late.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(late.load(Ordering::SeqCst), 1);
        assert_eq!(fired.load(Ordering::SeqCst), 1, "first hook not re-run");
    }

    #[test]
    fn errors_render_their_cause() {
        assert!(JobError::Cancelled.to_string().contains("cancelled"));
        assert!(JobError::Panicked("boom".into())
            .to_string()
            .contains("boom"));
    }
}
