//! Server-level counters: session admission and queue traffic.
//!
//! The engine counters ([`castor_engine::EngineReport`]) describe *what the
//! engines did*; these counters describe *what the serving layer did around
//! them* — sessions admitted and turned away, jobs accepted onto the
//! per-database queues, jobs rejected by the in-flight cap, and how many
//! queue items each runner drained. The RPC front end surfaces them so an
//! operator can watch admission pressure without attaching a debugger.

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Monotonic serving-layer counters, updated atomically (`sessions_active`
/// is a gauge: it decrements when a session handle is dropped).
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Sessions opened successfully.
    pub sessions_accepted: AtomicUsize,
    /// Session requests refused by the server-wide session cap.
    pub sessions_rejected: AtomicUsize,
    /// Sessions currently open (accepted minus dropped).
    pub sessions_active: AtomicUsize,
    /// Jobs accepted onto a database queue.
    pub jobs_submitted: AtomicUsize,
    /// Jobs refused by a database's in-flight cap.
    pub jobs_rejected: AtomicUsize,
}

impl ServerStats {
    /// A consistent-enough snapshot of every counter.
    pub fn snapshot(&self) -> ServerReport {
        ServerReport {
            sessions_accepted: self.sessions_accepted.load(Ordering::Relaxed),
            sessions_rejected: self.sessions_rejected.load(Ordering::Relaxed),
            sessions_active: self.sessions_active.load(Ordering::Relaxed),
            jobs_submitted: self.jobs_submitted.load(Ordering::Relaxed),
            jobs_rejected: self.jobs_rejected.load(Ordering::Relaxed),
            // Owned by the per-database queues ([`QueueReport::drains`]);
            // `Server::server_report` sums the live numbers in.
            queue_drains: 0,
        }
    }
}

/// A plain-data snapshot of [`ServerStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerReport {
    /// Sessions opened successfully.
    pub sessions_accepted: usize,
    /// Session requests refused by the server-wide session cap.
    pub sessions_rejected: usize,
    /// Sessions currently open.
    pub sessions_active: usize,
    /// Jobs accepted onto a database queue.
    pub jobs_submitted: usize,
    /// Jobs refused by a database's in-flight cap.
    pub jobs_rejected: usize,
    /// Queue items drained by runner threads (the sum of every database's
    /// [`QueueReport::drains`]).
    pub queue_drains: usize,
}

impl fmt::Display for ServerReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sessions={} active ({} accepted, {} rejected) \
             jobs={} submitted ({} rejected) drains={}",
            self.sessions_active,
            self.sessions_accepted,
            self.sessions_rejected,
            self.jobs_submitted,
            self.jobs_rejected,
            self.queue_drains,
        )
    }
}

/// A snapshot of one database's queue: how many items its runner drained,
/// how many jobs are queued or running right now, and how many session
/// handles are bound to it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueReport {
    /// Queue items this database's runner drained so far.
    pub drains: usize,
    /// Jobs currently queued or running.
    pub inflight: usize,
    /// Live session handles bound to this database.
    pub open_sessions: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reads_and_renders_every_counter() {
        let stats = ServerStats::default();
        stats.sessions_accepted.fetch_add(3, Ordering::Relaxed);
        stats.sessions_rejected.fetch_add(1, Ordering::Relaxed);
        stats.sessions_active.fetch_add(2, Ordering::Relaxed);
        stats.jobs_submitted.fetch_add(10, Ordering::Relaxed);
        stats.jobs_rejected.fetch_add(4, Ordering::Relaxed);
        let report = ServerReport {
            queue_drains: 9,
            ..stats.snapshot()
        };
        assert_eq!(report.sessions_accepted, 3);
        assert_eq!(report.jobs_rejected, 4);
        let text = report.to_string();
        assert!(text.contains("2 active"), "{text}");
        assert!(text.contains("10 submitted (4 rejected)"), "{text}");
        assert!(text.contains("drains=9"), "{text}");
    }
}
