//! # castor-service
//!
//! The multi-session serving facade of the Castor workspace: long-lived
//! engines over *mutating* databases, behind a `Server → Session → Job`
//! API.
//!
//! The paper (Picado et al., SIGMOD 2017) pitches schema-independent
//! learning over real relational databases — and real databases mutate
//! while learners run. The one-shot snapshot front end (`Engine::new` per
//! run) cannot serve that: statistics freeze at construction, inserts are
//! invisible to the planner, and every caller wires pool/cache/config by
//! hand. This crate replaces that with:
//!
//! * [`Server`] — owns one **versioned** [`castor_engine::Engine`] per
//!   registered database (shared worker pool, shared plan/coverage caches)
//!   plus a FIFO job queue and runner thread per database;
//! * [`Session`] — a cheap per-client handle carrying config overrides
//!   (per-test node budget), an isolated counter view (engine-report
//!   deltas), and a cancellation token checked by the executor budget loop;
//! * [`Job`]s — [`CoverageJob`] / [`ScoreJob`] / [`LearnJob`] plus mutation
//!   batches, submitted with [`Session::submit`] for a [`JobHandle`] with
//!   blocking `join` and non-blocking `try_poll`.
//!
//! Mutations ([`Session::apply`]) maintain per-relation indexes and
//! statistics incrementally and bump per-relation epochs; compiled plans
//! re-validate their epoch stamps on every fetch (stale-plan reuse is
//! impossible by construction) and the coverage cache drops exactly the
//! clauses referencing a mutated relation. A session created before a
//! mutation therefore returns, after it, exactly what a fresh snapshot
//! engine over the mutated database would.
//!
//! ```
//! use castor_relational::{DatabaseInstance, MutationBatch, RelationSymbol, Schema, Tuple};
//! use castor_service::{Server, ServerConfig};
//! use castor_logic::{Atom, Clause};
//! use std::sync::Arc;
//!
//! let mut schema = Schema::new("demo");
//! schema.add_relation(RelationSymbol::new("publication", &["title", "person"]));
//! let mut db = DatabaseInstance::empty(&schema);
//! db.insert("publication", Tuple::from_strs(&["p1", "ann"])).unwrap();
//!
//! let server = Server::new(ServerConfig::default());
//! server.register("demo", Arc::new(db)).unwrap();
//! let session = server.session("demo").unwrap();
//!
//! let clause = Clause::new(
//!     Atom::vars("collaborated", &["x", "y"]),
//!     vec![
//!         Atom::vars("publication", &["p", "x"]),
//!         Atom::vars("publication", &["p", "y"]),
//!     ],
//! );
//! let example = Tuple::from_strs(&["ann", "bob"]);
//!
//! // Not covered yet: bob has no shared publication...
//! let sets = session.covered_sets(vec![clause.clone()], vec![example.clone()]).unwrap();
//! assert!(sets[0].is_empty());
//!
//! // ...until a mutation lands — the live engine sees it immediately.
//! let batch = MutationBatch::new().insert("publication", Tuple::from_strs(&["p1", "bob"]));
//! session.apply(batch).unwrap();
//! let sets = session.covered_sets(vec![clause], vec![example]).unwrap();
//! assert_eq!(sets[0].len(), 1);
//! ```

pub mod deadline;
pub mod job;
pub mod server;
pub mod session;
pub mod stats;

pub use deadline::Deadline;
pub use job::{
    CoverageJob, Job, JobError, JobHandle, JobResult, LearnAlgorithm, LearnJob, ScoreJob,
};
pub use server::{Server, ServerConfig, ServerError};
pub use session::Session;
pub use stats::{QueueReport, ServerReport, ServerStats};

pub(crate) use server::QueuedJob;

#[cfg(test)]
mod tests {
    use super::*;
    use castor_engine::Prior;
    use castor_learners::{LearnerParams, LearningTask};
    use castor_logic::{Atom, Clause};
    use castor_relational::{DatabaseInstance, MutationBatch, RelationSymbol, Schema, Tuple};
    use std::sync::Arc;

    fn demo_db() -> DatabaseInstance {
        let mut schema = Schema::new("demo");
        schema.add_relation(RelationSymbol::new("publication", &["title", "person"]));
        let mut db = DatabaseInstance::empty(&schema);
        for (t, p) in [
            ("p1", "ann"),
            ("p1", "bob"),
            ("p2", "carol"),
            ("p2", "dan"),
            ("p3", "eve"),
        ] {
            db.insert("publication", Tuple::from_strs(&[t, p])).unwrap();
        }
        db
    }

    fn collaborated() -> Clause {
        Clause::new(
            Atom::vars("collaborated", &["x", "y"]),
            vec![
                Atom::vars("publication", &["p", "x"]),
                Atom::vars("publication", &["p", "y"]),
            ],
        )
    }

    fn server_with_demo() -> Server {
        let server = Server::new(ServerConfig::default());
        server.register("demo", Arc::new(demo_db())).unwrap();
        server
    }

    #[test]
    fn registration_is_unique_and_listed() {
        let server = server_with_demo();
        assert_eq!(server.databases(), vec!["demo".to_string()]);
        assert_eq!(
            server.register("demo", Arc::new(demo_db())),
            Err(ServerError::DuplicateDatabase("demo".to_string()))
        );
        assert!(matches!(
            server.session("missing"),
            Err(ServerError::UnknownDatabase(_))
        ));
    }

    #[test]
    fn coverage_job_matches_direct_engine_results() {
        let server = server_with_demo();
        let session = server.session("demo").unwrap();
        let examples = vec![
            Tuple::from_strs(&["ann", "bob"]),
            Tuple::from_strs(&["ann", "carol"]),
        ];
        let sets = session
            .covered_sets(vec![collaborated()], examples.clone())
            .unwrap();
        let reference =
            castor_engine::Engine::new(&demo_db(), castor_engine::EngineConfig::default());
        assert_eq!(
            sets[0],
            reference.covered_set(&collaborated(), &examples, Prior::None)
        );
    }

    #[test]
    fn score_job_counts_both_classes_in_one_fused_pass() {
        let server = server_with_demo();
        let session = server.session("demo").unwrap();
        let counts = session
            .score(
                vec![collaborated()],
                vec![
                    Tuple::from_strs(&["ann", "bob"]),
                    Tuple::from_strs(&["carol", "dan"]),
                ],
                vec![Tuple::from_strs(&["ann", "carol"])],
            )
            .unwrap();
        assert_eq!((counts[0].positive, counts[0].negative), (2, 0));
    }

    #[test]
    fn handles_poll_and_join_from_other_threads() {
        let server = server_with_demo();
        let session = server.session("demo").unwrap();
        let handle = session.submit(Job::Coverage(CoverageJob::new(
            vec![collaborated()],
            vec![Tuple::from_strs(&["ann", "bob"])],
        )));
        let result = handle.join().unwrap();
        assert_eq!(result.into_covered().unwrap()[0].len(), 1);
        assert!(handle.try_poll().is_some());
    }

    #[test]
    fn mutations_are_visible_to_later_jobs_of_the_session() {
        let server = server_with_demo();
        let session = server.session("demo").unwrap();
        let example = Tuple::from_strs(&["ann", "eve"]);
        let before = session
            .covered_sets(vec![collaborated()], vec![example.clone()])
            .unwrap();
        assert!(before[0].is_empty());
        let summary = session
            .apply(MutationBatch::new().insert("publication", Tuple::from_strs(&["p3", "ann"])))
            .unwrap();
        assert_eq!(summary.inserted, 1);
        let after = session
            .covered_sets(vec![collaborated()], vec![example])
            .unwrap();
        assert_eq!(after[0].len(), 1);
        // The invalidation traffic is observable in the server report.
        let report = server.report("demo").unwrap();
        assert_eq!(report.mutation_batches, 1);
        assert!(report.cache_clauses_invalidated >= 1);
    }

    #[test]
    fn cancelled_sessions_fail_fast_and_other_sessions_continue() {
        let server = server_with_demo();
        let cancelled = server.session("demo").unwrap();
        let healthy = server.session("demo").unwrap();
        cancelled.cancel();
        assert!(cancelled.is_cancelled());
        let err = cancelled
            .covered_sets(
                vec![collaborated()],
                vec![Tuple::from_strs(&["ann", "bob"])],
            )
            .unwrap_err();
        assert_eq!(err, JobError::Cancelled);
        let ok = healthy
            .covered_sets(
                vec![collaborated()],
                vec![Tuple::from_strs(&["ann", "bob"])],
            )
            .unwrap();
        assert_eq!(ok[0].len(), 1);
        cancelled.reset_cancel();
        assert!(cancelled
            .covered_sets(
                vec![collaborated()],
                vec![Tuple::from_strs(&["ann", "bob"])]
            )
            .is_ok());
    }

    #[test]
    fn session_reports_isolate_and_sum_to_the_server_total() {
        let server = server_with_demo();
        let a = server.session("demo").unwrap();
        let b = server.session("demo").unwrap();
        a.covered_sets(
            vec![collaborated()],
            vec![Tuple::from_strs(&["ann", "bob"])],
        )
        .unwrap();
        b.covered_sets(
            vec![collaborated()],
            vec![
                Tuple::from_strs(&["carol", "dan"]),
                Tuple::from_strs(&["eve", "eve"]),
            ],
        )
        .unwrap();
        let (ra, rb) = (a.report(), b.report());
        assert!(ra.coverage_tests >= 1);
        assert!(rb.coverage_tests >= 2);
        let total = server.report("demo").unwrap();
        assert_eq!(
            ra.combined(&rb).coverage_tests,
            total.coverage_tests,
            "per-session deltas must sum to the server total"
        );
    }

    #[test]
    fn per_session_budget_override_does_not_leak() {
        let server = server_with_demo();
        let starved = server.session("demo").unwrap().with_eval_budget(0);
        let normal = server.session("demo").unwrap();
        let starved_sets = starved
            .covered_sets(
                vec![collaborated()],
                vec![Tuple::from_strs(&["ann", "bob"])],
            )
            .unwrap();
        assert!(starved_sets[0].is_empty(), "zero budget must exhaust");
        assert!(starved.report().budget_exhausted >= 1);
        // Another session on the same engine keeps the default budget...
        let normal_sets = normal
            .covered_sets(
                vec![collaborated()],
                vec![Tuple::from_strs(&["ann", "bob"])],
            )
            .unwrap();
        assert_eq!(normal_sets[0].len(), 1);
        assert_eq!(normal.report().budget_exhausted, 0);
    }

    #[test]
    fn session_budget_override_reaches_castor_subsumption_tests() {
        let server = server_with_demo();
        let starved = server.session("demo").unwrap().with_eval_budget(0);
        let task = LearningTask::new(
            "collaborated",
            2,
            vec![
                Tuple::from_strs(&["ann", "bob"]),
                Tuple::from_strs(&["carol", "dan"]),
            ],
            vec![Tuple::from_strs(&["ann", "carol"])],
        );
        let definition = starved
            .learn(LearnJob::new(task, LearnAlgorithm::Castor(Box::default())))
            .unwrap();
        // Zero budget exhausts every θ-subsumption coverage test, so the
        // override provably reached Castor's coverage engine and nothing
        // could be learned.
        assert!(definition.is_empty());
        assert!(starved.report().budget_exhausted > 0);
    }

    #[test]
    fn session_cap_rejects_and_releases_on_drop() {
        let server = Server::new(ServerConfig::default().with_max_sessions(2));
        server.register("demo", Arc::new(demo_db())).unwrap();
        let a = server.session("demo").unwrap();
        let _b = server.session("demo").unwrap();
        assert_eq!(
            server.session("demo").unwrap_err(),
            ServerError::SessionLimit { limit: 2 }
        );
        let report = server.server_report();
        assert_eq!(report.sessions_active, 2);
        assert_eq!(report.sessions_accepted, 2);
        assert_eq!(report.sessions_rejected, 1);
        // Dropping a session releases its slot.
        drop(a);
        let _c = server.session("demo").unwrap();
        let report = server.server_report();
        assert_eq!(report.sessions_active, 2);
        assert_eq!(report.sessions_accepted, 3);
        assert_eq!(server.queue_report("demo").unwrap().open_sessions, 2);
    }

    /// A coverage job that holds the runner for tens of milliseconds
    /// *deterministically*: the triangle query over the bipartite `pair`
    /// graph below can never succeed (bipartite graphs have no odd
    /// cycles), so the search runs until its node budget is gone — no
    /// lucky early match can make it fast.
    fn slow_job() -> Job {
        let clause = Clause::new(
            Atom::vars("t", &["x"]),
            vec![
                Atom::vars("pair", &["a", "b"]),
                Atom::vars("pair", &["b", "c"]),
                Atom::vars("pair", &["c", "a"]),
            ],
        );
        Job::Coverage(CoverageJob::new(
            vec![clause],
            vec![Tuple::from_strs(&["x"])],
        ))
    }

    /// A complete bipartite graph, both edge directions stored: ~20k
    /// tuples, ~2M search nodes for the triangle query of [`slow_job`].
    fn bulk_db() -> DatabaseInstance {
        let mut schema = Schema::new("bulk");
        schema.add_relation(RelationSymbol::new("pair", &["a", "b"]));
        let mut db = DatabaseInstance::empty(&schema);
        for i in 0..100 {
            for j in 0..100 {
                let (l, r) = (format!("l{i}"), format!("r{j}"));
                db.insert("pair", Tuple::from_strs(&[&l, &r])).unwrap();
                db.insert("pair", Tuple::from_strs(&[&r, &l])).unwrap();
            }
        }
        db
    }

    #[test]
    fn inflight_cap_rejects_with_typed_error() {
        let server = Server::new(ServerConfig::default().with_max_inflight(2));
        server.register("bulk", Arc::new(bulk_db())).unwrap();
        // The budget override makes the blocker genuinely slow (millions of
        // nodes), so the submissions below land while it still runs.
        let session = server.session("bulk").unwrap().with_eval_budget(2_000_000);
        let blocker = session.submit(slow_job());
        let queued = session.submit(slow_job());
        // Two jobs in flight (one running, one queued): the third submission
        // is rejected with the typed error, not silently dropped.
        let rejected = session.submit(slow_job());
        assert!(matches!(
            rejected.join().unwrap_err(),
            JobError::Rejected {
                limit: 2,
                retry_after_ms,
            } if retry_after_ms >= 10
        ));
        assert!(server.server_report().jobs_rejected >= 1);
        // The accepted jobs still complete.
        assert!(blocker.join().is_ok());
        assert!(queued.join().is_ok());
        // With the queue drained, submissions are accepted again.
        assert!(session.submit(slow_job()).join().is_ok());
        let report = server.server_report();
        assert_eq!(report.jobs_submitted, 3);
        assert_eq!(server.queue_report("bulk").unwrap().drains, 3);
    }

    #[test]
    fn learn_job_learns_over_the_live_database() {
        let mut schema = Schema::new("demo");
        schema.add_relation(RelationSymbol::new("p", &["x"]));
        let mut db = DatabaseInstance::empty(&schema);
        for v in ["a", "b", "c"] {
            db.insert("p", Tuple::from_strs(&[v])).unwrap();
        }
        let server = Server::new(ServerConfig::default());
        server.register("tiny", Arc::new(db)).unwrap();
        let session = server.session("tiny").unwrap();
        let task = LearningTask::new(
            "t",
            1,
            vec![
                Tuple::from_strs(&["a"]),
                Tuple::from_strs(&["b"]),
                Tuple::from_strs(&["c"]),
            ],
            vec![Tuple::from_strs(&["z"])],
        );
        let definition = session
            .learn(LearnJob::new(
                task,
                LearnAlgorithm::Foil(LearnerParams {
                    allow_constants: false,
                    ..LearnerParams::default()
                }),
            ))
            .unwrap();
        assert!(!definition.is_empty());
    }
}
