//! Per-job deadlines and the watchdog that enforces them mid-run.
//!
//! A [`Deadline`] is an absolute point in time attached to an evaluation
//! job ([`crate::CoverageJob`], [`crate::ScoreJob`], [`crate::LearnJob`]).
//! The serving layer enforces it at two points:
//!
//! * **queue shed** — a job whose deadline has already passed when the
//!   runner pops it completes with [`crate::JobError::DeadlineExceeded`]
//!   without ever touching the engine;
//! * **mid-run abort** — before executing a deadlined job the runner
//!   registers an abort token with the server's deadline watchdog; if
//!   the deadline passes while the job runs, the watchdog sets the token
//!   and every in-flight coverage test unwinds through the normal
//!   budget-exhaustion path within one candidate tuple, exactly like a
//!   session cancel. Abort-tainted verdicts never enter the shared caches
//!   (same guarantee as cancellation).
//!
//! The watchdog is one thread per server, sleeping until the earliest
//! registered deadline — jobs pay one `Vec` push/remove per deadlined job,
//! never a per-tuple clock read.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// An absolute deadline for one job. Over the wire it travels as a
/// relative timeout (milliseconds remaining) and is re-anchored to the
/// server's clock on arrival, gRPC-style, so clock skew between client and
/// server never shifts it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Deadline {
    at: Instant,
}

impl Deadline {
    /// A deadline `timeout` from now.
    pub fn within(timeout: Duration) -> Self {
        Deadline {
            at: Instant::now() + timeout,
        }
    }

    /// A deadline at an explicit instant.
    pub fn at(at: Instant) -> Self {
        Deadline { at }
    }

    /// Whether the deadline has passed.
    pub fn expired(&self) -> bool {
        Instant::now() >= self.at
    }

    /// Time left before the deadline (zero once expired).
    pub fn remaining(&self) -> Duration {
        self.at.saturating_duration_since(Instant::now())
    }

    /// The absolute instant of the deadline.
    pub fn instant(&self) -> Instant {
        self.at
    }
}

#[derive(Debug)]
struct WatchEntry {
    id: u64,
    at: Instant,
    token: Arc<AtomicBool>,
}

#[derive(Debug, Default)]
struct WatchState {
    /// Outstanding deadlines, unordered — at most one per runner thread,
    /// so a linear scan beats heap bookkeeping.
    entries: Vec<WatchEntry>,
    next_id: u64,
    shutdown: bool,
}

/// One thread per server that fires deadline tokens. Runners register the
/// running job's deadline before executing and unregister after; the
/// watchdog sleeps until the earliest outstanding deadline and sets the
/// token of every entry that expired.
#[derive(Debug, Default)]
pub(crate) struct DeadlineWatchdog {
    state: Mutex<WatchState>,
    wake: Condvar,
}

impl DeadlineWatchdog {
    /// Creates the watchdog and spawns its timer thread. The thread holds
    /// its own `Arc` and exits on [`DeadlineWatchdog::shutdown`].
    pub(crate) fn spawn() -> Arc<DeadlineWatchdog> {
        let dog = Arc::new(DeadlineWatchdog::default());
        let handle = Arc::clone(&dog);
        std::thread::Builder::new()
            .name("castor-service-deadline".to_string())
            .spawn(move || handle.run())
            .expect("failed to spawn deadline watchdog thread");
        dog
    }

    /// Registers `token` to be set once `deadline` passes; returns the id
    /// to unregister with when the job finishes first.
    pub(crate) fn register(&self, deadline: Deadline, token: Arc<AtomicBool>) -> u64 {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let id = state.next_id;
        state.next_id += 1;
        state.entries.push(WatchEntry {
            id,
            at: deadline.instant(),
            token,
        });
        self.wake.notify_all();
        id
    }

    /// Drops a registration (the job finished before its deadline; a fired
    /// entry is already gone, so this is a no-op then).
    pub(crate) fn unregister(&self, id: u64) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.entries.retain(|e| e.id != id);
    }

    /// Stops the timer thread. Outstanding tokens are fired so no running
    /// job waits on a deadline that can no longer be delivered.
    pub(crate) fn shutdown(&self) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.shutdown = true;
        for entry in state.entries.drain(..) {
            entry.token.store(true, Ordering::Relaxed);
        }
        self.wake.notify_all();
    }

    fn run(&self) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if state.shutdown {
                return;
            }
            let now = Instant::now();
            state.entries.retain(|entry| {
                if entry.at <= now {
                    entry.token.store(true, Ordering::Relaxed);
                    false
                } else {
                    true
                }
            });
            state = match state.entries.iter().map(|e| e.at).min() {
                Some(earliest) => {
                    let wait = earliest.saturating_duration_since(now);
                    self.wake
                        .wait_timeout(state, wait)
                        .unwrap_or_else(|e| e.into_inner())
                        .0
                }
                None => self.wake.wait(state).unwrap_or_else(|e| e.into_inner()),
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadlines_expire_and_report_remaining_time() {
        let gone = Deadline::within(Duration::ZERO);
        assert!(gone.expired());
        assert_eq!(gone.remaining(), Duration::ZERO);
        let future = Deadline::within(Duration::from_secs(60));
        assert!(!future.expired());
        assert!(future.remaining() > Duration::from_secs(59));
    }

    #[test]
    fn watchdog_fires_expired_tokens_and_spares_unregistered_ones() {
        let dog = DeadlineWatchdog::spawn();
        let fired = Arc::new(AtomicBool::new(false));
        let spared = Arc::new(AtomicBool::new(false));
        dog.register(
            Deadline::within(Duration::from_millis(5)),
            Arc::clone(&fired),
        );
        let id = dog.register(
            Deadline::within(Duration::from_millis(5)),
            Arc::clone(&spared),
        );
        dog.unregister(id);
        let waited = Instant::now();
        while !fired.load(Ordering::Relaxed) {
            assert!(
                waited.elapsed() < Duration::from_secs(5),
                "watchdog never fired the expired token"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(!spared.load(Ordering::Relaxed), "unregistered token fired");
        dog.shutdown();
    }

    #[test]
    fn shutdown_fires_outstanding_tokens() {
        let dog = DeadlineWatchdog::spawn();
        let token = Arc::new(AtomicBool::new(false));
        dog.register(
            Deadline::within(Duration::from_secs(3600)),
            Arc::clone(&token),
        );
        dog.shutdown();
        assert!(token.load(Ordering::Relaxed));
    }
}
